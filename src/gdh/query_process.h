#ifndef PRISMA_GDH_QUERY_PROCESS_H_
#define PRISMA_GDH_QUERY_PROCESS_H_

#include <any>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/transitive_closure.h"
#include "gdh/data_dictionary.h"
#include "gdh/distributed_plan.h"
#include "gdh/messages.h"
#include "gdh/optimizer.h"
#include "gdh/pe_registry.h"
#include "gdh/plan_cache.h"
#include "gdh/stage.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "pool/owned.h"
#include "pool/runtime.h"
#include "storage/relation.h"

namespace prisma::gdh {

/// Per-query coordinator: the paper's "for each query a new instance is
/// created, possibly running at its own processor" (§2.2). Spawned by the
/// GDH on a round-robin PE; it parses, optimizes and schedules one SELECT
/// (or PRISMAlog program), scatters fragment plans to the OFMs, merges
/// the gathered results, answers the client, and reports back to the GDH
/// so its statement locks can be released and the process reaped.
///
/// The data dictionary is read through shared memory: conceptually the
/// GDH hands the coordinator the catalog slice it needs at spawn time
/// (catalog traffic is not modelled; see DESIGN.md).
class QueryProcess : public pool::Process {
 public:
  struct Config {
    const DataDictionary* dictionary = nullptr;
    OptimizerRules rules;
    pool::CostModel costs;
    exec::ExprMode expr_mode = exec::ExprMode::kCompiled;
    /// Resolved execution mode of this statement (machine default or the
    /// statement's override), threaded to every fragment plan, shuffle
    /// producer, exchange consumer and fixpoint partition it spawns.
    exec::ExecMode exec_mode = exec::ExecMode::kRow;
    pool::ProcessId gdh = pool::kNoProcess;
    pool::ProcessId client = pool::kNoProcess;
    std::shared_ptr<ClientStatement> statement;
    /// Transaction whose locks cover this statement (the session txn, or
    /// a GDH-assigned statement txn released at stmt_done).
    exec::TxnId lock_txn = exec::kAutoCommit;
    sim::SimTime timeout_ns = 30 * sim::kNanosPerSecond;
    /// Retransmission knobs mirroring GdhProcess::Config: first resend
    /// delay, backoff cap and total attempts before a request degrades to
    /// kUnavailable.
    sim::SimTime rpc_timeout_ns = 10 * sim::kNanosPerSecond;
    sim::SimTime rpc_backoff_cap_ns = 10 * sim::kNanosPerSecond;
    int rpc_attempts = 6;
    /// Retransmit stmt_done to the GDH at this period until this process
    /// is reaped (0 disables — the fault-free configuration).
    sim::SimTime stmt_done_resend_ns = 0;
    /// Directory of co-located fragments (may be null): exchange consumers
    /// resolve their stationary-side scans through it.
    const PeLocalRegistry* registry = nullptr;
    /// Machine-wide shared plan cache (may be null: every statement is
    /// planned from scratch). Probed/filled by StartSql (DESIGN.md §15.4).
    PlanCache* plan_cache = nullptr;
    /// Streaming exchange framing: max tuples per batch and batches in
    /// flight per channel (DESIGN.md §10).
    uint64_t exchange_batch_rows = 64;
    uint64_t exchange_credit_window = 4;
    /// Route PRISMAlog linear-recursion programs over a fragmented edge
    /// relation to the distributed fixpoint (DESIGN.md §11) instead of
    /// gathering the base table to the coordinator.
    bool distributed_fixpoint = true;
    /// Join strategy for the distributed fixpoint partitions.
    exec::TcAlgorithm tc_algorithm = exec::TcAlgorithm::kSeminaive;
    /// Observability sinks (may be null). Per-query scoped metrics are
    /// recorded under the {query=<request_id>} label.
    obs::MetricsRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
  };

  explicit QueryProcess(Config config);

  void OnStart() override;
  void OnMail(const pool::Mail& mail) override;

  std::string debug_name() const override { return "coordinator"; }

  /// Filled as the query runs; read by benches after completion.
  struct QueryStats {
    OptimizerReport optimizer;
    size_t fragments_contacted = 0;
    uint64_t tuples_gathered = 0;
    bool pushed_aggregate = false;
  };

 private:
  void StartSql();
  /// Collects the shared fragment locks of every part of `split_` (with
  /// fragmentation-key pruning) and sends the lock batch to the GDH.
  void AcquireSelectLocks();
  void ReplyExplain();
  /// EXPLAIN ANALYZE: renders the measured per-operator profiles (global
  /// plan + merged fragment profiles per part) as the result rows.
  void ReplyAnalyze(const obs::OperatorProfile& global);
  void StartPrismalog();
  void RequestLocks(std::vector<std::string> resources);
  void Scatter();
  void SendNextFragmentPlan();
  void HandlePlanReply(const pool::Mail& mail);

  /// Registers an outgoing request for retransmission. `work_index` names
  /// the work_ entry whose OFM is the target, or SIZE_MAX for the GDH
  /// (lock batches).
  void SendRpc(uint64_t request_id, const char* kind, std::any body,
               int64_t size_bits, size_t work_index);
  /// Cancels retransmission of an answered request; false if it was
  /// already settled (duplicate reply).
  bool SettleRpc(uint64_t request_id);
  pool::ProcessId ResolveTarget(size_t work_index) const;
  void HandleRpcTimeout(const pool::Mail& mail);
  void FinishGather();
  void RunGlobalPhase();
  void RunPrismalogPhase();
  // Distributed fixpoint (DESIGN.md §11).
  void ScatterFixpoint();
  void HandleFixpointVote(const pool::Mail& mail);
  void BroadcastFixpointCtrl();
  void RunFixpointPhase();
  void ReplyFixpointExplain();
  void Reply(Status status, Schema schema,
             std::shared_ptr<std::vector<Tuple>> tuples);

  Config config_;
  bool finished_ = false;
  sim::EventId timeout_event_ = 0;
  sim::SimTime start_time_ = 0;

  // SELECT state. The split plan is immutable once built and may be
  // shared with the plan cache and concurrent queries (read-only here).
  std::shared_ptr<const DistributedPlan> split_;
  OptimizerReport optimizer_report_;
  bool is_prismalog_phase_ = false;
  bool explain_ = false;
  bool analyze_ = false;

  // Scatter/gather bookkeeping.
  struct FragmentWork {
    pool::ProcessId ofm = pool::kNoProcess;
    std::shared_ptr<const algebra::Plan> plan;
    size_t part = 0;
    /// Names for pid re-resolution on retransmit (the OFM may respawn).
    /// `fragment` is the BASE fragment name; `replica` the replica the
    /// plan is currently aimed at (plan scans carry the replica name).
    std::string table;
    std::string fragment;
    int replica = 0;
    /// Co-located join partner (empty when none): needed to re-aim the
    /// partner's scan together with the anchor's on read failover.
    std::string second_table;
    std::string second_fragment;
    /// Set for exchange-join producers: the prebuilt shuffle plan (with a
    /// pre-assigned request_id) sent instead of a plain ExecPlanRequest.
    std::shared_ptr<ShufflePlanRequest> shuffle;
    /// Set for OLAP sort sampling requests (DESIGN.md §14.3): the OFM
    /// thins its (sorted) result to this many evenly spaced quantiles.
    uint64_t sample_rows = 0;
    /// Fragment index of this sample within its part (barrier voter id).
    size_t sample_slice = 0;
  };
  /// Read routing (DESIGN.md §13): the replica of `frag` a read should
  /// address — the primary while it is in-sync and alive, else the peer
  /// if IT is in-sync and alive, else the primary (the RPC layer then
  /// degrades to a typed Unavailable — never a wrong answer).
  int ChooseReadReplica(const FragmentInfo& frag) const;
  /// Re-aims an unanswered fragment read at the currently chosen replica
  /// (crash failover at retransmission time): rebuilds the request body
  /// with the plan's scans renamed, keeping the request id.
  struct PendingRpc;
  void MaybeFailover(size_t work_index, PendingRpc& rpc);
  /// Bumps the labeled query.unavailable{pe,table} counter (registered
  /// lazily so fault-free metric dumps are unchanged).
  void CountUnavailable(net::NodeId pe, const std::string& table);
  /// "fragment <replica-name> on PE <n>" for the replica `w` is aimed at;
  /// fills *pe with that replica's PE (degradation reporting).
  std::string DescribeWorkTarget(const FragmentWork& w, net::NodeId* pe) const;
  /// Builds the consumer processes and producer work entries of one
  /// exchange-lowered join part; returns the number of consumer replies
  /// the gather now additionally waits for.
  size_t ScatterExchangePart(size_t part_index);
  /// Starts one multi-stage OLAP part (DESIGN.md §14): group-by parts
  /// spawn their merge consumers and shuffle producers immediately; sort
  /// parts first scatter per-fragment sampling requests (stage 1) and
  /// cross into the shuffle only at the sample barrier. Returns the
  /// number of replies the gather waits for beyond the work entries
  /// appended right now.
  size_t ScatterOlapPart(size_t part_index);
  /// Folds one sampling reply into the part's stage barrier; on barrier
  /// completion computes the range boundaries and launches stage 2.
  void HandleOlapSample(size_t part_index, size_t slice,
                        const ExecPlanReply& reply);
  /// Spawns the merge consumers and appends the shuffle-producer work
  /// entries of an OLAP part (`boundaries` non-null for range sorts).
  /// `send_now` dispatches the new entries immediately (stage-2 launches
  /// after the initial scatter already ran).
  void LaunchOlapShuffle(
      size_t part_index,
      std::shared_ptr<const std::vector<Tuple>> boundaries, bool send_now);
  // Process-local state below is wrapped in the ownership checker: only
  // this process's handlers (or control-plane code between events) may
  // touch it; see pool/owned.h.
  pool::Owned<std::vector<FragmentWork>> work_;
  size_t next_work_ = 0;      // Sequential mode cursor.
  size_t outstanding_ = 0;
  size_t completed_ = 0;
  /// Replies the gather waits for: every work_ entry plus one per spawned
  /// exchange consumer.
  size_t expected_replies_ = 0;
  /// Exchange consumers spawned for this statement, killed in Reply().
  std::vector<pool::ProcessId> consumer_pids_;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, size_t> request_part_;  // request id -> part index.

  /// Unanswered requests, retransmitted with capped exponential backoff
  /// (mirrors GdhProcess::PendingRpc).
  struct PendingRpc {
    const char* kind = nullptr;
    std::any body;
    int64_t size_bits = kControlBits;
    size_t work_index = SIZE_MAX;  // SIZE_MAX targets the GDH.
    int attempts = 1;
    int max_attempts = 1;
    sim::SimTime delay = 0;
    sim::EventId timer = 0;
  };
  // Settlement contract (D6): replies settle via SettleRpc, retry-budget
  // exhaustion via HandleRpcTimeout, and Reply clears whatever is still
  // outstanding when the statement finishes (sheds the stragglers).
  // PRISMA_SETTLES(rpcs_: success=SettleRpc, exhaustion=HandleRpcTimeout,
  //                shed=Reply)
  pool::Owned<std::map<uint64_t, PendingRpc>> rpcs_;
  /// stmt_done retransmission (armed in Reply when configured).
  std::shared_ptr<StatementDone> done_msg_;
  pool::Owned<std::vector<std::vector<Tuple>>> gathered_;  // Per part.
  uint64_t tuples_gathered_ = 0;
  // EXPLAIN ANALYZE: per-part profile, fragment replies merged in.
  std::vector<std::optional<obs::OperatorProfile>> part_profiles_;
  // Pruned fragment indexes per SQL part (see PruneFragmentsForPart).
  std::vector<std::vector<int>> part_fragments_;
  // Common-subexpression elimination across parts: duplicate_of_[i] names
  // the earlier identical part whose gathered result part i reuses
  // (SIZE_MAX = unique part, scattered normally).
  std::vector<size_t> duplicate_of_;

  // Multi-stage OLAP state (DESIGN.md §14), keyed by part index.
  struct OlapPartWork {
    /// Sort stage 1: one vote per fragment's quantile sample.
    StageBarrier samples;
    /// Pooled sample *key* tuples (SortKeyOf-projected).
    std::vector<Tuple> sample_keys;
    /// Merge consumer replies by consumer index: a sort part's slices
    /// concatenate in index order into the global order; a group-by
    /// part's slices are disjoint group sets, sorted after the gather.
    std::vector<std::vector<Tuple>> slices;
  };
  std::map<size_t, OlapPartWork> olap_work_;
  /// Sample request id -> (part, fragment index).
  std::map<uint64_t, std::pair<size_t, size_t>> olap_sample_of_;
  /// Merge-consumer reply id -> (part, consumer index).
  std::map<uint64_t, std::pair<size_t, size_t>> olap_merge_of_;
  /// Shuffle-producer request ids of OLAP parts (wire-bit attribution).
  std::set<uint64_t> olap_producer_ids_;
  uint64_t olap_shuffle_bits_ = 0;  // First-transmission data-plane bits.
  uint64_t olap_gather_bits_ = 0;   // Merge reply bits (final rows only).
  uint64_t olap_sample_rows_ = 0;   // Quantile rows gathered (sorts).
  /// Bits of plain (non-OLAP) fragment replies gathered at the
  /// coordinator — the gather-baseline figure E14 compares against.
  uint64_t gather_bits_ = 0;

  // PRISMAlog state: gathered base tables by name.
  std::vector<std::string> plog_tables_;
  std::map<std::string, size_t> plog_part_of_table_;
  /// Program text with any leading EXPLAIN keyword stripped (what the
  /// parser actually sees, re-parsed at reply time).
  std::string plog_text_;

  // Distributed fixpoint state (the coordinator's termination barrier).
  bool is_fixpoint_ = false;
  std::string fx_edge_table_;
  uint64_t fixpoint_id_ = 0;
  size_t fx_num_pes_ = 0;
  std::vector<pool::ProcessId> fx_pids_;
  /// Round the barrier is collecting votes for (0 = seed round).
  uint64_t fx_round_ = 0;
  /// One admitted vote per (round, PE); dedups retransmits (the fixpoint
  /// round barrier is a StageBarrier whose stage id is the round).
  StageBarrier fx_barrier_;
  bool fx_any_new_ = false;  // Any vote this round absorbed new pairs.
  uint64_t fx_delta_total_ = 0;
  uint64_t fx_pairs_total_ = 0;
  uint64_t fx_wire_total_ = 0;
  /// Rebroadcast on the ctrl-resend timer when the interconnect can drop
  /// control mail (both handlers are idempotent at the PEs).
  std::shared_ptr<FixpointStartMsg> fx_start_msg_;
  std::shared_ptr<FixpointRoundMsg> fx_round_msg_;
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_QUERY_PROCESS_H_
