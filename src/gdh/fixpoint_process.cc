#include "gdh/fixpoint_process.h"

#include <algorithm>
#include <any>
#include <utility>

#include "common/column_batch.h"
#include "common/logging.h"
#include "common/serialize.h"

namespace prisma::gdh {

FixpointPeProcess::FixpointPeProcess(Config config)
    : config_(std::move(config)) {
  PRISMA_CHECK(config_.num_pes > 0);
  PRISMA_CHECK(config_.index < config_.num_pes);
}

void FixpointPeProcess::OnStart() {
  kernel_ = std::make_unique<exec::FixpointPartition>(
      config_.algorithm, config_.num_pes, config_.index);
  // The known set lives in a recovery-free intermediate-result OFM
  // (§2.5): no WAL, no checkpointing — a crashed fixpoint is re-run, not
  // recovered.
  exec::Ofm::Options ofm_options;
  ofm_options.type = exec::OfmType::kQueryOnly;
  ofm_options.exec.costs = config_.costs;
  ofm_options.exec.charge = [this](sim::SimTime ns) { ChargeCpu(ns); };
  known_ofm_ = std::make_unique<exec::Ofm>(
      "fixpoint#" + std::to_string(config_.index), config_.edge_schema,
      std::move(ofm_options));
  edge_channels_->resize(config_.edge_producers);
  if (config_.metrics != nullptr) {
    const obs::Labels labels = {{"pe", std::to_string(config_.index)}};
    m_batches_received_ =
        config_.metrics->GetCounter("fixpoint.batches_received", labels);
    m_batches_sent_ =
        config_.metrics->GetCounter("fixpoint.batches_sent", labels);
  }
}

// Handler contract (D5): a fixpoint PE consumes the recursive-query data
// plane plus the round-barrier control mail from the coordinator.
// PRISMA_HANDLES(kMailTupleBatch, kMailBatchAck, kMailFixpointStart)
// PRISMA_HANDLES(kMailFixpointRound, kMailFixpointBatchResend)
// PRISMA_HANDLES(kMailFixpointVoteResend, kMailExchangeReplyResend)
void FixpointPeProcess::OnMail(const pool::Mail& mail) {
  if (mail.kind == kMailTupleBatch) {
    HandleBatch(mail);
  } else if (mail.kind == kMailBatchAck) {
    HandleAck(mail);
  } else if (mail.kind == kMailFixpointStart) {
    HandleStart(mail);
  } else if (mail.kind == kMailFixpointRound) {
    HandleRound(mail);
  } else if (mail.kind == kMailFixpointBatchResend) {
    HandleBatchResend(mail);
  } else if (mail.kind == kMailFixpointVoteResend) {
    if (replied_ || failed_ || *last_vote_ == nullptr ||
        vote_resends_left_ <= 0) {
      vote_timer_armed_ = false;
      return;
    }
    --vote_resends_left_;
    SendMail(config_.coordinator, kMailFixpointVote, *last_vote_,
             kControlBits);
    SendSelfAfter(config_.vote_resend_ns, kMailFixpointVoteResend);
  } else if (mail.kind == kMailExchangeReplyResend) {
    if (!replied_ || reply_resends_left_ <= 0) return;
    --reply_resends_left_;
    SendMail(config_.coordinator, kMailExecPlanReply, *reply_,
             (*reply_)->WireBits());
    if (reply_resends_left_ > 0) {
      SendSelfAfter(config_.reply_resend_ns, kMailExchangeReplyResend);
    }
  }
  // Unknown kinds are ignored (forward compatibility).
}

void FixpointPeProcess::HandleStart(const pool::Mail& mail) {
  auto msg = std::any_cast<std::shared_ptr<FixpointStartMsg>>(mail.body);
  if (msg->fixpoint_id != config_.fixpoint_id) return;
  if (started_) return;  // Duplicated/rebroadcast start: idempotent.
  if (msg->peers.size() != config_.num_pes) return;
  *peers_ = msg->peers;
  started_ = true;
  Advance();
}

void FixpointPeProcess::HandleRound(const pool::Mail& mail) {
  auto msg = std::any_cast<std::shared_ptr<FixpointRoundMsg>>(mail.body);
  if (msg->fixpoint_id != config_.fixpoint_id) return;
  if (failed_ || replied_) return;
  if (msg->harvest) {
    HandleHarvest();
    return;
  }
  // The coordinator only issues round r+1 after this PE voted for round
  // r, so anything other than the successor round is a duplicated or
  // reordered directive (a dropped one is repaired by the coordinator's
  // control-plane rebroadcast).
  if (!seeded_ || msg->round != current_round_ + 1) return;
  current_round_ = msg->round;
  absorbed_new_current_ = 0;
  exec::RoutedPairs owner;
  exec::RoutedPairs index;
  round_products_ = kernel_->JoinRound(&owner, &index);
  // Same cost formula as the single-node TC shortcut: the join products
  // dominate.
  ChargeCpu(static_cast<sim::SimTime>(round_products_) *
            config_.costs.hash_ns);
  SendRoundStreams(current_round_, std::move(owner), std::move(index));
  Advance();
}

void FixpointPeProcess::HandleBatch(const pool::Mail& mail) {
  auto msg = std::any_cast<std::shared_ptr<TupleBatchMsg>>(mail.body);
  if (msg->exchange_id != config_.fixpoint_id) return;
  if (failed_) return;  // The coordinator is already aborting the query.
  exec::InboundChannel* channel = nullptr;
  if (msg->side == 0) {
    if (msg->producer >= edge_channels_->size()) return;
    channel = &(*edge_channels_)[msg->producer];
  } else {
    if (msg->producer >= config_.num_pes) return;
    std::vector<exec::InboundChannel>& round_channels =
        (*inbound_)[msg->side];
    if (round_channels.empty()) round_channels.resize(config_.num_pes);
    channel = &round_channels[msg->producer];
  }

  exec::TupleBatch batch;
  batch.seq = msg->seq;
  batch.eos = msg->eos;
  auto rows_or = TupleBatchRows(*msg);
  if (!rows_or.ok()) {
    // An undecodable frame can never become deliverable; degrade the
    // whole fixpoint instead of stalling the peer's retry budget.
    Fail(rows_or.status());
    return;
  }
  batch.tuples = std::move(rows_or).value();
  const size_t rows = batch.tuples.size();
  if (channel->Offer(std::move(batch))) {
    ChargeCpu(static_cast<sim::SimTime>(rows) * config_.costs.tuple_ns);
    if (m_batches_received_ != nullptr) m_batches_received_->Increment();
  } else if (config_.metrics != nullptr) {
    if (m_dup_batches_ == nullptr) {
      // Registered on first duplicate so fault-free dumps are unchanged.
      m_dup_batches_ = config_.metrics->GetCounter(
          "fixpoint.dup_batches", {{"pe", std::to_string(config_.index)}});
    }
    m_dup_batches_->Increment();
  }

  // Advance first: draining moves the channel's cumulative ack point, so
  // acking afterwards covers this very batch (DESIGN.md §10.2).
  Advance();
  if (failed_) return;  // Advancing may have degraded; stop acking.

  auto ack = std::make_shared<BatchAckMsg>();
  ack->shuffle_token = msg->shuffle_token;
  ack->consumer = config_.index;
  ack->ack = channel->ack();
  ack->credit = config_.credit_window;
  SendMail(mail.from, kMailBatchAck, std::move(ack), kControlBits);
}

void FixpointPeProcess::HandleAck(const pool::Mail& mail) {
  auto msg = std::any_cast<std::shared_ptr<BatchAckMsg>>(mail.body);
  auto it = outbound_->find(msg->shuffle_token);
  if (it == outbound_->end()) return;  // Finished stream; stale ack.
  OutStream& out = it->second;
  out.channel.set_window(msg->credit);
  if (out.channel.OnAck(msg->ack)) {
    // Window progress: the peer is alive, so the retransmission budget
    // and backoff start over.
    out.attempts = 0;
    out.retry_delay = config_.batch_retry_ns;
  }
  PumpOut(it->first, out);
  if (out.channel.done()) outbound_->erase(it);
  // Outbound progress may complete this round's first transmissions.
  MaybeVote();
}

void FixpointPeProcess::HandleBatchResend(const pool::Mail& mail) {
  const uint64_t token = *std::any_cast<std::shared_ptr<uint64_t>>(mail.body);
  auto it = outbound_->find(token);
  if (it == outbound_->end()) return;  // Stream finished; timer is moot.
  OutStream& out = it->second;
  if (++out.attempts > config_.batch_attempts) {
    Fail(UnavailableError(
        "fixpoint partition " + std::to_string(config_.index) +
        " round " + std::to_string(out.round) +
        " delta stream made no progress after " +
        std::to_string(config_.batch_attempts) + " retransmission windows"));
    return;
  }
  // Retransmit the lowest unacknowledged already-sent batch (repairs both
  // a lost batch and a lost ack), then pump in case credit is free.
  const uint64_t seq = out.channel.acked() + 1;
  if (out.channel.Sent(seq)) {
    if (const exec::TupleBatch* batch = out.channel.BatchAt(seq)) {
      SendBatchMsg(token, out, *batch, /*first=*/false);
    }
  }
  PumpOut(token, out);
  out.retry_delay =
      std::min(out.retry_delay * 2, config_.batch_backoff_cap_ns);
  SendSelfAfter(out.retry_delay, kMailFixpointBatchResend,
                std::make_shared<uint64_t>(token));
}

void FixpointPeProcess::Advance() {
  if (failed_ || replied_) return;
  DrainEdges();
  if (failed_) return;
  if (started_ && edges_done_ && !seeded_) Seed();
  DrainRounds();
  if (failed_) return;
  MaybeVote();
}

void FixpointPeProcess::DrainEdges() {
  if (edges_done_) return;
  bool all_done = true;
  for (exec::InboundChannel& channel : *edge_channels_) {
    for (exec::TupleBatch& batch : channel.TakeReady()) {
      for (const Tuple& tuple : batch.tuples) {
        const Status status = kernel_->AddEdge(tuple);
        if (!status.ok()) {
          Fail(status);
          return;
        }
      }
      // Adjacency insertion, as for build-side hash-table inserts.
      ChargeCpu(static_cast<sim::SimTime>(batch.tuples.size()) *
                config_.costs.hash_ns);
    }
    if (!channel.done()) all_done = false;
  }
  edges_done_ = all_done;
}

void FixpointPeProcess::Seed() {
  exec::RoutedPairs owner;
  exec::RoutedPairs index;
  kernel_->Seed(&owner, &index);
  seeded_ = true;
  current_round_ = 0;
  absorbed_new_current_ = 0;
  round_products_ = 0;  // Seeding routes edges; it derives nothing.
  SendRoundStreams(0, std::move(owner), std::move(index));
}

void FixpointPeProcess::SendRoundStreams(uint64_t round,
                                         exec::RoutedPairs owner,
                                         exec::RoutedPairs index) {
  const int copies =
      config_.algorithm == exec::TcAlgorithm::kSmart ? 2 : 1;
  for (int copy = 0; copy < copies; ++copy) {
    exec::RoutedPairs& parts = copy == 0 ? owner : index;
    for (size_t peer = 0; peer < config_.num_pes; ++peer) {
      const uint64_t token = next_token_++;
      auto [it, inserted] = outbound_->emplace(
          token,
          OutStream{exec::OutboundChannel(
                        std::vector<Tuple>(parts[peer].begin(),
                                           parts[peer].end()),
                        config_.batch_rows, config_.credit_window),
                    peers_->at(peer), SideFor(round, copy), round, 0,
                    config_.batch_retry_ns});
      PRISMA_CHECK(inserted);
      PumpOut(token, it->second);
      SendSelfAfter(config_.batch_retry_ns, kMailFixpointBatchResend,
                    std::make_shared<uint64_t>(token));
    }
  }
}

void FixpointPeProcess::PumpOut(uint64_t token, OutStream& out) {
  while (const exec::TupleBatch* batch = out.channel.TakeNextToSend()) {
    SendBatchMsg(token, out, *batch, /*first=*/true);
  }
}

void FixpointPeProcess::SendBatchMsg(uint64_t token, OutStream& out,
                                     const exec::TupleBatch& batch,
                                     bool first) {
  auto msg = std::make_shared<TupleBatchMsg>();
  msg->exchange_id = config_.fixpoint_id;
  msg->side = out.side;
  msg->producer = config_.index;
  msg->shuffle_token = token;
  msg->seq = batch.seq;
  msg->eos = batch.eos;
  if (config_.columnar) {
    msg->column_frame = std::make_shared<const std::string>(
        SerializeColumnBatch(ColumnBatch::FromTuples(batch.tuples)));
  } else {
    msg->tuples = std::make_shared<std::vector<Tuple>>(batch.tuples);
  }
  const int64_t bits = msg->WireBits();
  // Marshalling cost, mirroring the receiver's per-tuple unmarshal charge.
  ChargeCpu(static_cast<sim::SimTime>(batch.tuples.size()) *
            config_.costs.tuple_ns);
  if (first) {
    // First transmissions only: the per-round shipping-cost axis must not
    // vary with fault-plan luck beyond what the seed already fixes.
    (*wire_bits_by_round_)[out.round] += static_cast<uint64_t>(bits);
    if (m_batches_sent_ != nullptr) m_batches_sent_->Increment();
  } else if (config_.metrics != nullptr) {
    if (m_retransmits_ == nullptr) {
      m_retransmits_ = config_.metrics->GetCounter(
          "fixpoint.retransmits", {{"pe", std::to_string(config_.index)}});
    }
    m_retransmits_->Increment();
  }
  SendMail(out.peer, kMailTupleBatch, std::move(msg), bits);
}

void FixpointPeProcess::DrainRounds() {
  if (!seeded_) return;
  const int copies =
      config_.algorithm == exec::TcAlgorithm::kSmart ? 2 : 1;
  for (int copy = 0; copy < copies; ++copy) {
    auto it = inbound_->find(SideFor(current_round_, copy));
    if (it == inbound_->end()) continue;
    for (exec::InboundChannel& channel : it->second) {
      for (exec::TupleBatch& batch : channel.TakeReady()) {
        ChargeCpu(static_cast<sim::SimTime>(batch.tuples.size()) *
                  config_.costs.hash_ns);
        if (copy == 0) {
          std::vector<Tuple> fresh;
          absorbed_new_current_ +=
              kernel_->AbsorbOwned(batch.tuples, &fresh);
          for (Tuple& tuple : fresh) {
            auto row = known_ofm_->Insert(exec::kAutoCommit,
                                          std::move(tuple));
            if (!row.ok()) {
              Fail(row.status());
              return;
            }
          }
        } else {
          kernel_->AbsorbIndex(batch.tuples);
        }
      }
    }
  }
}

bool FixpointPeProcess::InboundComplete(uint64_t round) {
  const int copies =
      config_.algorithm == exec::TcAlgorithm::kSmart ? 2 : 1;
  for (int copy = 0; copy < copies; ++copy) {
    auto it = inbound_->find(SideFor(round, copy));
    // Every peer sends at least one (possibly empty) eos batch per round,
    // so a missing or incomplete channel set means the round is inflight.
    if (it == inbound_->end() || it->second.size() != config_.num_pes) {
      return false;
    }
    for (const exec::InboundChannel& channel : it->second) {
      if (!channel.done()) return false;
    }
  }
  return true;
}

bool FixpointPeProcess::OutboundSentComplete(uint64_t round) const {
  // Streams are erased once fully acked, so anything still present for
  // this round must at least have first-transmitted every batch (the
  // vote's wire_bits are complete and the receivers can finish).
  for (const auto& [token, out] : *outbound_) {
    (void)token;  // prisma-lint: unused-status - key only identifies the stream.
    if (out.round == round && out.channel.next_unsent() != 0) return false;
  }
  return true;
}

void FixpointPeProcess::MaybeVote() {
  if (failed_ || replied_ || !seeded_) return;
  if (voted_round_ >= static_cast<int64_t>(current_round_)) return;
  if (!InboundComplete(current_round_)) return;
  if (!OutboundSentComplete(current_round_)) return;

  auto vote = std::make_shared<FixpointVoteMsg>();
  vote->fixpoint_id = config_.fixpoint_id;
  vote->round = current_round_;
  vote->pe = config_.index;
  vote->delta_empty = kernel_->delta_empty();
  vote->absorbed_new = absorbed_new_current_;
  vote->pairs_derived = round_products_;
  auto bits = wire_bits_by_round_->find(current_round_);
  vote->wire_bits = bits == wire_bits_by_round_->end() ? 0 : bits->second;
  voted_round_ = static_cast<int64_t>(current_round_);
  *last_vote_ = vote;
  SendMail(config_.coordinator, kMailFixpointVote, vote, kControlBits);
  if (config_.vote_resend_ns > 0 && !vote_timer_armed_) {
    vote_timer_armed_ = true;
    vote_resends_left_ = config_.resend_attempts;
    SendSelfAfter(config_.vote_resend_ns, kMailFixpointVoteResend);
  }
}

void FixpointPeProcess::HandleHarvest() {
  if (replied_ || failed_) return;
  SendReply(Status::OK());
}

void FixpointPeProcess::SendReply(Status status) {
  if (replied_) return;
  replied_ = true;
  failed_ = !status.ok();
  auto reply = std::make_shared<ExecPlanReply>();
  reply->request_id = config_.reply_request_id;
  reply->status = std::move(status);
  reply->fragment = "fixpoint#" + std::to_string(config_.index);
  if (!failed_) {
    std::vector<Tuple> slice = kernel_->OwnedSorted();
    ChargeCpu(static_cast<sim::SimTime>(slice.size()) *
              config_.costs.tuple_ns);
    reply->tuples = std::make_shared<std::vector<Tuple>>(std::move(slice));
  }
  *reply_ = reply;
  SendMail(config_.coordinator, kMailExecPlanReply, reply,
           reply->WireBits());
  // Retransmit until the coordinator kills us at statement completion.
  if (config_.reply_resend_ns > 0 && config_.resend_attempts > 0) {
    reply_resends_left_ = config_.resend_attempts;
    SendSelfAfter(config_.reply_resend_ns, kMailExchangeReplyResend);
  }
}

void FixpointPeProcess::Fail(Status status) {
  if (failed_) return;
  if (!replied_) {
    SendReply(std::move(status));
  }
  failed_ = true;
}

}  // namespace prisma::gdh
