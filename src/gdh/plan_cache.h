#ifndef PRISMA_GDH_PLAN_CACHE_H_
#define PRISMA_GDH_PLAN_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "gdh/distributed_plan.h"
#include "gdh/optimizer.h"
#include "obs/metrics.h"

namespace prisma::gdh {

/// Machine-wide shared plan cache (DESIGN.md §15.4): repeated
/// parameterized statements skip the coordinator's parse/bind/optimize/
/// split work and reuse the immutable DistributedPlan.
///
/// Ownership: like the DataDictionary and PeLocalRegistry this is a
/// machine-level structure owned by core::PrismaDb and handed to the GDH
/// and every query coordinator as a plain pointer — conceptually shared
/// memory, deliberately outside the pool::Owned ownership checker (any
/// coordinator may probe or fill it; the discrete-event simulator
/// serializes every access, so same-seed runs see identical cache states).
///
/// Key: normalized statement fingerprint + literal values + resolved
/// execution mode. Literals are part of the key because constants are
/// embedded in the optimized plan (fragment pruning depends on them), so a
/// hit is only declared for a statement that optimizes to the very same
/// plan; the fingerprint still buys whitespace/case insensitivity.
///
/// Invalidation: epoch-based. DDL (table/index create — a fragment-count
/// change is a DDL), replica failover and resync cutover bump the epoch
/// and drop every entry; a per-statement exec-mode flip needs no epoch
/// (the mode is in the key). Entries are never served across epochs, so a
/// stale plan cannot outlive the schema/placement it was built for.
class PlanCache {
 public:
  struct Key {
    std::string fingerprint;
    std::vector<std::string> params;
    exec::ExecMode exec_mode = exec::ExecMode::kRow;

    bool operator<(const Key& other) const {
      if (fingerprint != other.fingerprint)
        return fingerprint < other.fingerprint;
      if (params != other.params) return params < other.params;
      return exec_mode < other.exec_mode;
    }
  };

  /// What a hit restores in the coordinator: the split plan (immutable,
  /// shared across concurrent queries) plus the optimizer report EXPLAIN
  /// ANALYZE and bench stats surface.
  struct Entry {
    std::shared_ptr<const DistributedPlan> split;
    OptimizerReport optimizer_report;
  };

  /// `capacity` bounds the entry count (FIFO eviction, deterministic);
  /// 0 disables the cache entirely (every Lookup misses, Insert drops).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Observability sink for query.plan_cache.{hit,miss,invalidate}
  /// (may stay null: no instrumentation).
  void AttachMetrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Returns the cached entry for `key`, or null (counted as hit/miss).
  std::shared_ptr<const Entry> Lookup(const Key& key);

  /// Publishes a freshly built plan under `key` at the current epoch.
  void Insert(const Key& key, std::shared_ptr<const Entry> entry);

  /// Drops every entry and bumps the epoch. `reason` labels the
  /// invalidate metric ("ddl", "failover", "resync", ...).
  void Invalidate(const char* reason);

  uint64_t epoch() const { return epoch_; }
  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  const size_t capacity_;
  uint64_t epoch_ = 0;
  std::map<Key, std::shared_ptr<const Entry>> entries_;
  /// Insertion order for FIFO eviction (seq -> key).
  std::map<uint64_t, Key> insert_order_;
  uint64_t next_seq_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_PLAN_CACHE_H_
