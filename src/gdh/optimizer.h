#ifndef PRISMA_GDH_OPTIMIZER_H_
#define PRISMA_GDH_OPTIMIZER_H_

#include <memory>
#include <string>

#include "algebra/plan.h"
#include "common/status.h"
#include "gdh/data_dictionary.h"

namespace prisma::gdh {

/// The rule groups of the GDH's knowledge-based optimizer (§2.4): "the
/// knowledge base contains rules concerning logical transformations,
/// estimating sizes of intermediate results, detection of common
/// subexpressions, and applying parallelism to minimize response time."
/// Each group can be disabled independently — experiment E6's ablation.
struct OptimizerRules {
  /// Logical transformations: sink selection conjuncts towards scans and
  /// into join predicates (enabling hash joins).
  bool push_selections = true;
  /// Size estimation drives greedy reordering of join chains.
  bool reorder_joins = true;
  /// Detect structurally identical subtrees; execution memoizes them.
  bool detect_common_subexpressions = true;
  /// Scatter fragment work across PEs in parallel (consumed by the query
  /// scheduler, not by the plan rewriter).
  bool parallel_fragments = true;
  /// Execute joins of co-partitioned, co-located tables inside the PEs
  /// that host both fragments, shipping only join results (consumed by
  /// the plan splitter).
  bool colocated_joins = true;
  /// Lower the remaining (non-colocated) equi-joins to streaming
  /// exchanges — pipelined, flow-controlled tuple-batch shuffles between
  /// the fragments (DESIGN.md §10) — instead of shipping whole inputs to
  /// the coordinator (consumed by the plan splitter).
  bool exchange_joins = true;
  /// Compute partial aggregates inside the fragments and combine them at
  /// the coordinator instead of gathering base tuples (consumed by the
  /// plan splitter). Off = the base-tuple gather baseline used by the
  /// OLAP wire-cost comparisons (EXPERIMENTS.md E14).
  bool aggregate_pushdown = true;
  /// Lower global group-by and ORDER BY onto the exchange layer as
  /// multi-stage plans (DESIGN.md §14): per-fragment pre-aggregation +
  /// shuffle-by-group-key into merge consumers, and sample-based range
  /// partitioning for distributed sort. Off = the gather baseline (the
  /// coordinator merges fragment results itself).
  bool distributed_olap = true;
  /// How a distributed group-by ships rows (consumed by the splitter's
  /// cost model): pre-aggregate per fragment before the shuffle, ship
  /// base rows directly to the merge consumers, or let the estimated
  /// group count decide (kAuto).
  enum class OlapAggStrategy : uint8_t { kAuto, kPreAggregate, kDirect };
  OlapAggStrategy olap_agg_strategy = OlapAggStrategy::kAuto;
  /// Per-fragment quantile sample size for range-partitioned sorts.
  uint64_t olap_sample_rows = 16;
};

struct OptimizerReport {
  int selections_pushed = 0;
  int joins_reordered = 0;
  int common_subtrees = 0;
  /// Estimated rows flowing through the plan (sum over edges) before and
  /// after rewriting — the optimizer's own cost metric.
  double estimated_flow_before = 0;
  double estimated_flow_after = 0;
  /// Whether the executor should memoize common subtrees.
  bool enable_subtree_cache = false;
};

/// Rule-based logical optimizer over the extended relational algebra.
class Optimizer {
 public:
  /// `dictionary` supplies base-table cardinalities (may be null: every
  /// scan is then estimated at kDefaultScanRows).
  explicit Optimizer(const DataDictionary* dictionary,
                     OptimizerRules rules = {});

  /// Rewrites the plan; fills `report` (optional).
  StatusOr<std::unique_ptr<algebra::Plan>> Optimize(
      std::unique_ptr<algebra::Plan> plan, OptimizerReport* report = nullptr);

  /// Cardinality estimate for a plan node (System-R style magic numbers).
  double EstimateRows(const algebra::Plan& plan) const;

  /// Sum of estimated rows produced by every node — the "flow" cost used
  /// to compare plans.
  double EstimateFlow(const algebra::Plan& plan) const;

  static constexpr double kDefaultScanRows = 1000;
  static constexpr double kEqSelectivity = 0.1;
  static constexpr double kRangeSelectivity = 1.0 / 3.0;

 private:
  std::unique_ptr<algebra::Plan> PushSelections(
      std::unique_ptr<algebra::Plan> plan, OptimizerReport* report);
  /// Sinks one positional conjunct as deep as possible into `plan`.
  std::unique_ptr<algebra::Plan> SinkConjunct(
      std::unique_ptr<algebra::Plan> plan,
      std::unique_ptr<algebra::Expr> conjunct, OptimizerReport* report);

  std::unique_ptr<algebra::Plan> ReorderJoins(
      std::unique_ptr<algebra::Plan> plan, OptimizerReport* report);

  void CountCommonSubtrees(const algebra::Plan& plan,
                           OptimizerReport* report) const;

  double SelectivityOf(const algebra::Expr& predicate) const;

  const DataDictionary* dictionary_;
  OptimizerRules rules_;
};

}  // namespace prisma::gdh

#endif  // PRISMA_GDH_OPTIMIZER_H_
