#include "gdh/data_dictionary.h"

namespace prisma::gdh {

const char* ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kInSync:
      return "in_sync";
    case ReplicaState::kStale:
      return "stale";
    case ReplicaState::kResyncing:
      return "resyncing";
  }
  return "unknown";
}

StatusOr<Schema> DataDictionary::GetTableSchema(
    const std::string& table) const {
  ASSIGN_OR_RETURN(const TableInfo* info, GetTable(table));
  return info->schema;
}

StatusOr<TableInfo*> DataDictionary::CreateTable(
    const std::string& table, Schema schema,
    FragmentationSpec fragmentation) {
  if (tables_.contains(table)) {
    return AlreadyExistsError("table " + table + " already exists");
  }
  if (schema.num_columns() == 0) {
    return InvalidArgumentError("table " + table + " has no columns");
  }
  auto info = std::make_unique<TableInfo>();
  info->name = table;
  info->schema = std::move(schema);
  info->fragmentation = fragmentation;
  info->fragmenter = std::make_unique<Fragmenter>(std::move(fragmentation));
  for (int i = 0; i < info->fragmentation.num_fragments; ++i) {
    FragmentInfo frag;
    frag.name = FragmentName(table, i);
    info->fragments.push_back(std::move(frag));
  }
  TableInfo* raw = info.get();
  tables_[table] = std::move(info);
  return raw;
}

Status DataDictionary::DropTable(const std::string& table) {
  if (tables_.erase(table) == 0) {
    return NotFoundError("no table named " + table);
  }
  return Status::OK();
}

StatusOr<TableInfo*> DataDictionary::GetTable(const std::string& table) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return NotFoundError("no table named " + table);
  return it->second.get();
}

StatusOr<const TableInfo*> DataDictionary::GetTable(
    const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return NotFoundError("no table named " + table);
  return it->second.get();
}

Status DataDictionary::AddIndex(const std::string& table, IndexInfo index) {
  ASSIGN_OR_RETURN(TableInfo * info, GetTable(table));
  for (const IndexInfo& existing : info->indexes) {
    if (existing.name == index.name) {
      return AlreadyExistsError("index " + index.name + " already exists");
    }
  }
  info->indexes.push_back(std::move(index));
  return Status::OK();
}

std::vector<std::string> DataDictionary::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace prisma::gdh
