#include "net/traffic.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace prisma::net {
namespace {

/// Per-run state shared by injection and delivery callbacks.
struct RunState {
  sim::SimTime window_begin = 0;
  sim::SimTime window_end = 0;
  uint64_t delivered_in_window = 0;
  sim::SimTime latency_sum_ns = 0;
  sim::SimTime latency_max_ns = 0;
};

NodeId PickDestination(TrafficPattern pattern, double hotspot_fraction,
                       const Topology& topology, NodeId src, Rng& rng) {
  const int n = topology.num_nodes();
  switch (pattern) {
    case TrafficPattern::kUniform: {
      NodeId dst = static_cast<NodeId>(rng.Uniform(n - 1));
      if (dst >= src) ++dst;  // Skip self.
      return dst;
    }
    case TrafficPattern::kTranspose:
      return (src + n / 2) % n;
    case TrafficPattern::kHotspot: {
      if (src != 0 && rng.NextDouble() < hotspot_fraction) return 0;
      NodeId dst = static_cast<NodeId>(rng.Uniform(n - 1));
      if (dst >= src) ++dst;
      return dst;
    }
    case TrafficPattern::kNeighbor: {
      const auto& nb = topology.neighbors(src);
      return nb[rng.Uniform(nb.size())];
    }
  }
  return 0;
}

}  // namespace

const char* TrafficPatternName(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::kUniform:
      return "uniform";
    case TrafficPattern::kTranspose:
      return "transpose";
    case TrafficPattern::kHotspot:
      return "hotspot";
    case TrafficPattern::kNeighbor:
      return "neighbor";
  }
  return "?";
}

TrafficResult RunSyntheticTraffic(const Topology& topology,
                                  const LinkParams& params,
                                  const TrafficConfig& config) {
  PRISMA_CHECK(config.offered_packets_per_sec_per_pe > 0);
  sim::Simulator sim;
  Network network(&sim, topology, params);
  if (config.metrics != nullptr) {
    network.AttachObservability(config.metrics, nullptr);
  }
  const int n = topology.num_nodes();

  RunState state;
  state.window_begin = config.warmup_ns;
  state.window_end = config.warmup_ns + config.measure_ns;

  for (NodeId node = 0; node < n; ++node) {
    network.SetReceiver(node, [&sim, &state](const Message& message) {
      const sim::SimTime now = sim.now();
      if (now < state.window_begin || now > state.window_end) return;
      ++state.delivered_in_window;
      const sim::SimTime latency = now - message.sent_at;
      state.latency_sum_ns += latency;
      state.latency_max_ns = std::max(state.latency_max_ns, latency);
    });
  }

  // One independent Poisson injection process per PE. Each event sends one
  // packet and schedules the next injection until the window closes.
  struct Injector {
    Rng rng;
    NodeId node;
  };
  std::vector<std::unique_ptr<Injector>> injectors;
  const double rate_per_ns =
      config.offered_packets_per_sec_per_pe / sim::kNanosPerSecond;

  // Recursive lambda via std::function kept alive in a holder.
  std::function<void(Injector*)> inject = [&](Injector* inj) {
    network.SendPacket(inj->node,
                       PickDestination(config.pattern, config.hotspot_fraction,
                                       topology, inj->node, inj->rng));
    const double u = std::max(1e-12, inj->rng.NextDouble());
    const sim::SimTime gap =
        static_cast<sim::SimTime>(std::ceil(-std::log(u) / rate_per_ns));
    if (sim.now() + gap < state.window_end) {
      sim.Schedule(gap, [&inject, inj]() { inject(inj); });
    }
  };

  for (NodeId node = 0; node < n; ++node) {
    auto inj = std::make_unique<Injector>(
        Injector{Rng(config.seed * 1000003 + node), node});
    Injector* raw = inj.get();
    const double u = std::max(1e-12, raw->rng.NextDouble());
    const sim::SimTime start =
        static_cast<sim::SimTime>(std::ceil(-std::log(u) / rate_per_ns));
    sim.ScheduleAt(start, [&inject, raw]() { inject(raw); });
    injectors.push_back(std::move(inj));
  }

  sim.Run();

  TrafficResult result;
  result.offered_packets_per_sec_per_pe = config.offered_packets_per_sec_per_pe;
  result.packets_delivered = state.delivered_in_window;
  result.delivered_packets_per_sec_per_pe =
      static_cast<double>(state.delivered_in_window) * sim::kNanosPerSecond /
      static_cast<double>(config.measure_ns) / n;
  if (state.delivered_in_window > 0) {
    result.average_latency_us = static_cast<double>(state.latency_sum_ns) /
                                state.delivered_in_window / 1000.0;
  }
  result.max_latency_us = static_cast<double>(state.latency_max_ns) / 1000.0;
  result.peak_link_utilization = network.PeakLinkUtilization();
  return result;
}

}  // namespace prisma::net
