#include "net/topology.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "common/str_util.h"

namespace prisma::net {
namespace {

std::vector<std::vector<NodeId>> GridAdjacency(int rows, int cols, bool wrap) {
  const int n = rows * cols;
  std::vector<std::vector<NodeId>> adj(n);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      std::vector<NodeId>& out = adj[id(r, c)];
      // Order: up, down, left, right — deterministic tie-breaking relies on
      // the sorted pass below.
      if (r > 0) out.push_back(id(r - 1, c));
      else if (wrap && rows > 2) out.push_back(id(rows - 1, c));
      if (r + 1 < rows) out.push_back(id(r + 1, c));
      else if (wrap && rows > 2) out.push_back(id(0, c));
      if (c > 0) out.push_back(id(r, c - 1));
      else if (wrap && cols > 2) out.push_back(id(r, cols - 1));
      if (c + 1 < cols) out.push_back(id(r, c + 1));
      else if (wrap && cols > 2) out.push_back(id(r, 0));
    }
  }
  return adj;
}

}  // namespace

Topology Topology::Mesh(int rows, int cols) {
  PRISMA_CHECK(rows >= 1 && cols >= 1);
  return Topology(StrFormat("mesh_%dx%d", rows, cols),
                  GridAdjacency(rows, cols, /*wrap=*/false));
}

Topology Topology::Torus(int rows, int cols) {
  PRISMA_CHECK(rows >= 1 && cols >= 1);
  return Topology(StrFormat("torus_%dx%d", rows, cols),
                  GridAdjacency(rows, cols, /*wrap=*/true));
}

Topology Topology::Ring(int nodes) {
  PRISMA_CHECK(nodes >= 2);
  std::vector<std::vector<NodeId>> adj(nodes);
  for (int i = 0; i < nodes; ++i) {
    adj[i].push_back((i + 1) % nodes);
    adj[i].push_back((i + nodes - 1) % nodes);
  }
  return Topology(StrFormat("ring_%d", nodes), std::move(adj));
}

Topology Topology::ChordalRing(int nodes, int chord) {
  PRISMA_CHECK(nodes >= 4);
  PRISMA_CHECK(chord >= 2 && chord < nodes);
  std::vector<std::vector<NodeId>> adj(nodes);
  for (int i = 0; i < nodes; ++i) {
    adj[i].push_back((i + 1) % nodes);
    adj[i].push_back((i + nodes - 1) % nodes);
    adj[i].push_back((i + chord) % nodes);
    adj[i].push_back((i + nodes - chord) % nodes);
  }
  // Remove duplicate edges (possible when chord == nodes/2).
  for (auto& v : adj) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return Topology(StrFormat("chordal_ring_%d_c%d", nodes, chord),
                  std::move(adj));
}

Topology Topology::FullyConnected(int nodes) {
  PRISMA_CHECK(nodes >= 2);
  std::vector<std::vector<NodeId>> adj(nodes);
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      if (i != j) adj[i].push_back(j);
    }
  }
  return Topology(StrFormat("full_%d", nodes), std::move(adj));
}

Topology::Topology(std::string name, std::vector<std::vector<NodeId>> adjacency)
    : name_(std::move(name)), adjacency_(std::move(adjacency)) {
  for (auto& v : adjacency_) std::sort(v.begin(), v.end());
  BuildRoutes();
}

void Topology::BuildRoutes() {
  const int n = num_nodes();
  dist_.assign(n, std::vector<int>(n, -1));
  next_hop_.assign(n, std::vector<NodeId>(n, -1));
  for (int src = 0; src < n; ++src) {
    std::deque<NodeId> frontier;
    dist_[src][src] = 0;
    next_hop_[src][src] = src;
    frontier.push_back(src);
    // BFS; parent chain reconstructed into first-hop table.
    std::vector<NodeId> parent(n, -1);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const NodeId v : adjacency_[u]) {
        if (dist_[src][v] != -1) continue;
        dist_[src][v] = dist_[src][u] + 1;
        parent[v] = u;
        frontier.push_back(v);
      }
    }
    for (int dst = 0; dst < n; ++dst) {
      if (dst == src || dist_[src][dst] < 0) continue;
      NodeId hop = dst;
      while (parent[hop] != src) hop = parent[hop];
      next_hop_[src][dst] = hop;
    }
  }
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      PRISMA_CHECK(dist_[a][b] >= 0) << "topology " << name_
                                     << " is disconnected";
    }
  }
}

int Topology::num_directed_links() const {
  int total = 0;
  for (const auto& v : adjacency_) total += static_cast<int>(v.size());
  return total;
}

int Topology::max_degree() const {
  size_t d = 0;
  for (const auto& v : adjacency_) d = std::max(d, v.size());
  return static_cast<int>(d);
}

NodeId Topology::NextHop(NodeId from, NodeId to) const {
  return next_hop_[from][to];
}

int Topology::Distance(NodeId from, NodeId to) const {
  return dist_[from][to];
}

int Topology::Diameter() const {
  int d = 0;
  for (const auto& row : dist_) {
    for (const int v : row) d = std::max(d, v);
  }
  return d;
}

double Topology::AverageDistance() const {
  const int n = num_nodes();
  if (n < 2) return 0;
  int64_t sum = 0;
  for (const auto& row : dist_) {
    for (const int v : row) sum += v;
  }
  return static_cast<double>(sum) / (static_cast<int64_t>(n) * (n - 1));
}

}  // namespace prisma::net
