#include "net/network.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace prisma::net {

Network::Network(sim::Simulator* sim, Topology topology, LinkParams params)
    : sim_(sim),
      topology_(std::move(topology)),
      params_(params),
      links_(static_cast<size_t>(topology_.num_nodes()) *
             topology_.num_nodes()),
      receivers_(topology_.num_nodes()),
      delivery_times_(topology_.num_nodes()) {}

void Network::SetReceiver(NodeId node, Receiver receiver) {
  receivers_[node] = std::move(receiver);
}

void Network::SetFaultPlan(FaultPlan plan) {
  fault_plan_ = std::move(plan);
  faults_active_ = fault_plan_.active();
  fault_rng_ = Rng(fault_plan_.seed);
}

const LinkFault& Network::FaultFor(NodeId from, NodeId to) const {
  auto it = fault_plan_.per_link.find({from, to});
  return it != fault_plan_.per_link.end() ? it->second : fault_plan_.link;
}

bool Network::LinkDown(NodeId from, NodeId to, sim::SimTime now) const {
  for (const LinkDownWindow& w : fault_plan_.down_windows) {
    const bool on_link = (w.a == from && w.b == to) ||
                         (w.a == to && w.b == from);
    if (on_link && now >= w.from_ns && now < w.until_ns) return true;
  }
  return false;
}

obs::Counter* Network::LazyCounter(obs::Counter** slot, const char* name) {
  if (*slot == nullptr && metrics_ != nullptr) {
    *slot = metrics_->GetCounter(name);
  }
  return *slot;
}

void Network::AttachObservability(obs::MetricsRegistry* metrics,
                                  obs::Tracer* tracer) {
  metrics_ = metrics;
  if (metrics != nullptr) {
    m_sent_ = metrics->GetCounter("net.messages_sent");
    m_delivered_ = metrics->GetCounter("net.messages_delivered");
    m_link_bits_ = metrics->GetCounter("net.link_bits");
    m_packets_ = metrics->GetCounter("net.packets_sent");
    m_latency_ = metrics->GetHistogram("net.latency_ns");
  }
  tracer_ = tracer;
}

void Network::Send(NodeId src, NodeId dst, int64_t size_bits,
                   std::any payload) {
  PRISMA_CHECK(src >= 0 && src < topology_.num_nodes());
  PRISMA_CHECK(dst >= 0 && dst < topology_.num_nodes());
  PRISMA_CHECK(size_bits > 0);
  ++stats_.messages_sent;
  if (m_sent_ != nullptr) {
    m_sent_->Increment();
    // The hardware moves 256-bit packets; a larger message is a burst.
    m_packets_->Increment(
        static_cast<uint64_t>((size_bits + kPacketBits - 1) / kPacketBits));
  }
  Message message;
  message.src = src;
  message.dst = dst;
  message.size_bits = size_bits;
  message.sent_at = sim_->now();
  message.payload = std::move(payload);
  if (src == dst) {
    sim_->Schedule(params_.local_delivery_ns,
                   [this, message = std::move(message)]() mutable {
                     Deliver(message.dst, std::move(message));
                   });
    return;
  }
  Arrive(src, std::move(message));
}

void Network::Arrive(NodeId node, Message message) {
  if (node == message.dst) {
    Deliver(node, std::move(message));
    return;
  }
  const NodeId hop = topology_.NextHop(node, message.dst);
  LinkState& l = link(node, hop);
  const sim::SimTime now = sim_->now();

  // Backpressure watermark: the DBMS layers retry on loss, so a saturated
  // link may shed load instead of queueing without bound.
  if (params_.max_link_backlog > 0 && l.backlog >= params_.max_link_backlog) {
    ++stats_.backpressure;
    if (obs::Counter* c = LazyCounter(&m_backpressure_, "net.backpressure")) {
      c->Increment();
    }
    if (params_.drop_on_backlog) {
      ++stats_.dropped;
      if (obs::Counter* c = LazyCounter(&m_dropped_, "net.dropped")) {
        c->Increment();
      }
      return;
    }
  }

  // Fault injection happens at link entry: a dropped message never
  // occupies the link; a duplicate re-enters this hop as a fresh arrival
  // (and redraws its own fate); jitter stretches the hop's latency.
  sim::SimTime jitter = 0;
  if (faults_active_ && !(fault_exempt_ && fault_exempt_(message))) {
    const LinkFault& fault = FaultFor(node, hop);
    if (LinkDown(node, hop, now) ||
        (fault.drop_probability > 0 &&
         fault_rng_.NextBool(fault.drop_probability))) {
      ++stats_.dropped;
      if (obs::Counter* c = LazyCounter(&m_dropped_, "net.dropped")) {
        c->Increment();
      }
      return;
    }
    if (fault.duplicate_probability > 0 &&
        fault_rng_.NextBool(fault.duplicate_probability)) {
      ++stats_.duplicated;
      if (obs::Counter* c = LazyCounter(&m_duplicated_, "net.duplicated")) {
        c->Increment();
      }
      Message copy = message;
      sim_->Schedule(0, [this, node, copy = std::move(copy)]() mutable {
        Arrive(node, std::move(copy));
      });
    }
    if (fault.max_extra_delay_ns > 0) {
      jitter = static_cast<sim::SimTime>(fault_rng_.Uniform(
          static_cast<uint64_t>(fault.max_extra_delay_ns) + 1));
      stats_.delayed_ns += jitter;
      if (obs::Counter* c = LazyCounter(&m_delayed_ns_, "net.delayed_ns")) {
        c->Increment(static_cast<uint64_t>(jitter));
      }
    }
  }

  const sim::SimTime serialization =
      message.size_bits * sim::kNanosPerSecond / params_.bandwidth_bps;
  const sim::SimTime depart = std::max(now, l.free_at);
  const sim::SimTime arrival =
      depart + serialization + params_.propagation_ns + jitter;
  l.free_at = depart + serialization;
  l.busy_ns += serialization;
  ++l.backlog;
  stats_.max_link_backlog = std::max(stats_.max_link_backlog, l.backlog);
  stats_.link_bits += message.size_bits;
  if (m_link_bits_ != nullptr) {
    m_link_bits_->Increment(static_cast<uint64_t>(message.size_bits));
  }
  sim_->ScheduleAt(arrival,
                   [this, node, hop, message = std::move(message)]() mutable {
                     --link(node, hop).backlog;
                     Arrive(hop, std::move(message));
                   });
}

void Network::Deliver(NodeId node, Message message) {
  if (!receivers_[node]) {
    // The addressee has no endpoint (crashed or never installed): account
    // for it instead of silently discarding.
    ++stats_.no_receiver;
    if (obs::Counter* c = LazyCounter(&m_no_receiver_, "net.no_receiver")) {
      c->Increment();
    }
    return;
  }
  ++stats_.messages_delivered;
  const sim::SimTime latency = sim_->now() - message.sent_at;
  stats_.total_latency_ns += latency;
  stats_.max_latency_ns = std::max(stats_.max_latency_ns, latency);
  if (m_delivered_ != nullptr) {
    m_delivered_->Increment();
    m_latency_->Record(latency);
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    // pid = destination PE, tid -1 = the network lane of that PE.
    tracer_->Span("net", "msg", message.sent_at, sim_->now(), node, -1, "src",
                  std::to_string(message.src));
  }
  if (record_deliveries_) delivery_times_[node].push_back(sim_->now());
  receivers_[node](message);
}

double Network::PeakLinkUtilization() const {
  const sim::SimTime now = sim_->now();
  if (now <= 0) return 0;
  sim::SimTime peak = 0;
  for (const LinkState& l : links_) peak = std::max(peak, l.busy_ns);
  return static_cast<double>(peak) / static_cast<double>(now);
}

int Network::TotalBacklog() const {
  int total = 0;
  for (const LinkState& l : links_) total += l.backlog;
  return total;
}

}  // namespace prisma::net
