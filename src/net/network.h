#ifndef PRISMA_NET_NETWORK_H_
#define PRISMA_NET_NETWORK_H_

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace prisma::net {

/// Physical parameters of one communication link, defaulted to the paper's
/// prototype: 10 Mbit/s links, 256-bit packets (§3.2).
struct LinkParams {
  /// Serialization bandwidth of each link, bits per second.
  int64_t bandwidth_bps = 10'000'000;
  /// Fixed per-hop latency (wire propagation + switching), nanoseconds.
  sim::SimTime propagation_ns = 1'000;
  /// Latency of a loop-back (same-PE) delivery, nanoseconds.
  sim::SimTime local_delivery_ns = 500;
  /// Backlog watermark of one directed link: a message entering a link
  /// whose queue already holds this many increments net.backpressure (and
  /// is dropped when drop_on_backlog is set). 0 = unbounded, no watermark.
  int max_link_backlog = 0;
  /// Drop (instead of only counting) messages past the watermark.
  bool drop_on_backlog = false;
};

/// Failure behaviour of one directed link under a FaultPlan.
struct LinkFault {
  /// Per-hop probability the message vanishes on the wire.
  double drop_probability = 0;
  /// Per-hop probability an extra copy of the message is injected.
  double duplicate_probability = 0;
  /// Extra per-hop delay, uniform in [0, max_extra_delay_ns].
  sim::SimTime max_extra_delay_ns = 0;

  bool active() const {
    return drop_probability > 0 || duplicate_probability > 0 ||
           max_extra_delay_ns > 0;
  }
};

/// A scheduled bidirectional outage of the link between `a` and `b`:
/// every message entering either direction in [from_ns, until_ns) is lost.
struct LinkDownWindow {
  NodeId a = 0;
  NodeId b = 0;
  sim::SimTime from_ns = 0;
  sim::SimTime until_ns = 0;
};

/// A scheduled crash (and optional restart) of one PE. The network layer
/// carries these for the machine facade (core::PrismaDb), which kills the
/// PE's processes and later respawns its fragment managers; they are part
/// of the FaultPlan so one seed describes the whole failure schedule.
struct PeCrashEvent {
  NodeId pe = 0;
  sim::SimTime at_ns = 0;
  /// Restart instant; < 0 means the PE never comes back.
  sim::SimTime restart_at_ns = -1;
};

/// Deterministic seeded fault-injection plan. All randomness (drops,
/// duplicates, jitter) comes from one Rng(seed), so two runs of the same
/// workload under the same plan are byte-identical. An all-default plan
/// is inert: the network makes zero random draws and behaves exactly as
/// without a plan.
struct FaultPlan {
  uint64_t seed = 1;
  /// Fault behaviour applied to every directed link...
  LinkFault link;
  /// ...unless overridden for a specific directed (from, to) pair.
  std::map<std::pair<NodeId, NodeId>, LinkFault> per_link;
  std::vector<LinkDownWindow> down_windows;
  std::vector<PeCrashEvent> pe_crashes;

  bool active() const {
    if (link.active() || !down_windows.empty()) return true;
    for (const auto& [_, fault] : per_link) {
      if (fault.active()) return true;
    }
    return false;
  }
};

/// Hardware packet size used by the paper's network simulations.
constexpr int64_t kPacketBits = 256;

/// A message in flight or delivered. For machine-level traffic experiments
/// a message is a single 256-bit packet; the DBMS layers send larger
/// messages whose serialization time scales with size.
struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  int64_t size_bits = kPacketBits;
  sim::SimTime sent_at = 0;
  std::any payload;
};

/// Store-and-forward message-passing network over a Topology, running on
/// the discrete-event simulator.
///
/// Every directed link is a FIFO resource: a message occupies the link for
/// its serialization time (size / bandwidth) and experiences the fixed
/// propagation delay; contention appears as queueing before busy links.
/// Queues are unbounded (the DBMS applies its own flow control), and the
/// maximum backlog is reported in the statistics.
class Network {
 public:
  using Receiver = std::function<void(const Message&)>;

  Network(sim::Simulator* sim, Topology topology, LinkParams params = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const { return topology_; }
  const LinkParams& params() const { return params_; }
  sim::Simulator* simulator() const { return sim_; }

  /// Installs the upcall invoked when a message reaches `node`.
  void SetReceiver(NodeId node, Receiver receiver);

  /// Injects a message at `src` addressed to `dst`; it is forwarded hop by
  /// hop and handed to dst's receiver (if any) on arrival.
  void Send(NodeId src, NodeId dst, int64_t size_bits, std::any payload);

  /// Installs a seeded fault plan; per-hop drops, duplicates and jitter
  /// apply to every subsequent non-loopback message (loopback deliveries
  /// model a PE's internal bus and never fail). Call before any traffic
  /// for reproducibility.
  void SetFaultPlan(FaultPlan plan);
  const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Exempts messages matched by `predicate` from fault injection (e.g.
  /// the client's connection, which models the host interface rather than
  /// the interconnect). Null clears the exemption.
  using FaultExempt = std::function<bool(const Message&)>;
  void SetFaultExempt(FaultExempt predicate) {
    fault_exempt_ = std::move(predicate);
  }

  /// Convenience for single-packet sends (machine-level experiments).
  void SendPacket(NodeId src, NodeId dst) {
    Send(src, dst, kPacketBits, std::any());
  }

  /// Aggregate transport statistics since construction (or last Reset).
  struct Stats {
    uint64_t messages_sent = 0;
    uint64_t messages_delivered = 0;
    /// Bits that crossed links, counted once per hop (loopback excluded).
    int64_t link_bits = 0;
    /// Sum over delivered messages of (delivery - send) time.
    sim::SimTime total_latency_ns = 0;
    sim::SimTime max_latency_ns = 0;
    /// Largest number of messages simultaneously queued on one link.
    int max_link_backlog = 0;
    /// Fault-injection outcomes (zero without an active FaultPlan).
    uint64_t dropped = 0;      // Lost to drop draws or down windows.
    uint64_t duplicated = 0;   // Extra copies injected.
    sim::SimTime delayed_ns = 0;  // Total jitter added across hops.
    /// Messages that hit the max_link_backlog watermark.
    uint64_t backpressure = 0;
    /// Messages reaching a node with no installed receiver.
    uint64_t no_receiver = 0;

    double AverageLatencyUs() const {
      if (messages_delivered == 0) return 0;
      return static_cast<double>(total_latency_ns) /
             static_cast<double>(messages_delivered) / 1000.0;
    }
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Delivery timestamps per destination node (for throughput windows).
  const std::vector<std::vector<sim::SimTime>>& delivery_times() const {
    return delivery_times_;
  }
  /// Stop recording per-delivery timestamps (they are only needed by the
  /// network experiments, not by the DBMS).
  void set_record_deliveries(bool record) { record_deliveries_ = record; }

  /// Busy-time fraction of the most loaded directed link over [0, now].
  double PeakLinkUtilization() const;

  /// Messages currently queued or in transmission, summed over every
  /// directed link. This is the live backpressure level the serving
  /// dispatcher keys its admission watermarks off (DESIGN.md §15.2) —
  /// unlike Stats::max_link_backlog it falls back to zero when queues
  /// drain, so hysteresis can re-open admission.
  int TotalBacklog() const;

  /// Mirrors transport statistics into the machine-wide registry
  /// (net.messages_sent, net.messages_delivered, net.link_bits,
  /// net.latency_ns histogram) and, when the tracer is enabled, records a
  /// send->deliver span per message. Either pointer may be null.
  void AttachObservability(obs::MetricsRegistry* metrics,
                           obs::Tracer* tracer);

 private:
  struct LinkState {
    sim::SimTime free_at = 0;   // Earliest instant the link can start sending.
    sim::SimTime busy_ns = 0;   // Accumulated serialization time.
    int backlog = 0;            // Messages waiting or in transmission.
  };

  LinkState& link(NodeId from, NodeId to) {
    return links_[static_cast<size_t>(from) * topology_.num_nodes() + to];
  }
  const LinkState& link(NodeId from, NodeId to) const {
    return links_[static_cast<size_t>(from) * topology_.num_nodes() + to];
  }

  /// Message is at `node` at the current sim time; forward or deliver.
  void Arrive(NodeId node, Message message);
  void Deliver(NodeId node, Message message);

  const LinkFault& FaultFor(NodeId from, NodeId to) const;
  bool LinkDown(NodeId from, NodeId to, sim::SimTime now) const;

  /// Registers the named fault counter on first use so inert runs keep
  /// their metric dumps unchanged.
  obs::Counter* LazyCounter(obs::Counter** slot, const char* name);

  sim::Simulator* sim_;
  Topology topology_;
  LinkParams params_;
  std::vector<LinkState> links_;
  std::vector<Receiver> receivers_;
  std::vector<std::vector<sim::SimTime>> delivery_times_;
  bool record_deliveries_ = false;
  Stats stats_;

  FaultPlan fault_plan_;
  bool faults_active_ = false;
  Rng fault_rng_{1};
  FaultExempt fault_exempt_;

  // Cached registry entries (null until AttachObservability).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_sent_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_link_bits_ = nullptr;
  obs::Counter* m_packets_ = nullptr;
  obs::Histogram* m_latency_ = nullptr;
  // Fault/backpressure counters, registered lazily on first event.
  obs::Counter* m_dropped_ = nullptr;
  obs::Counter* m_duplicated_ = nullptr;
  obs::Counter* m_delayed_ns_ = nullptr;
  obs::Counter* m_backpressure_ = nullptr;
  obs::Counter* m_no_receiver_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace prisma::net

#endif  // PRISMA_NET_NETWORK_H_
