#ifndef PRISMA_NET_NETWORK_H_
#define PRISMA_NET_NETWORK_H_

#include <any>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace prisma::net {

/// Physical parameters of one communication link, defaulted to the paper's
/// prototype: 10 Mbit/s links, 256-bit packets (§3.2).
struct LinkParams {
  /// Serialization bandwidth of each link, bits per second.
  int64_t bandwidth_bps = 10'000'000;
  /// Fixed per-hop latency (wire propagation + switching), nanoseconds.
  sim::SimTime propagation_ns = 1'000;
  /// Latency of a loop-back (same-PE) delivery, nanoseconds.
  sim::SimTime local_delivery_ns = 500;
};

/// Hardware packet size used by the paper's network simulations.
constexpr int64_t kPacketBits = 256;

/// A message in flight or delivered. For machine-level traffic experiments
/// a message is a single 256-bit packet; the DBMS layers send larger
/// messages whose serialization time scales with size.
struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  int64_t size_bits = kPacketBits;
  sim::SimTime sent_at = 0;
  std::any payload;
};

/// Store-and-forward message-passing network over a Topology, running on
/// the discrete-event simulator.
///
/// Every directed link is a FIFO resource: a message occupies the link for
/// its serialization time (size / bandwidth) and experiences the fixed
/// propagation delay; contention appears as queueing before busy links.
/// Queues are unbounded (the DBMS applies its own flow control), and the
/// maximum backlog is reported in the statistics.
class Network {
 public:
  using Receiver = std::function<void(const Message&)>;

  Network(sim::Simulator* sim, Topology topology, LinkParams params = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const { return topology_; }
  const LinkParams& params() const { return params_; }
  sim::Simulator* simulator() const { return sim_; }

  /// Installs the upcall invoked when a message reaches `node`.
  void SetReceiver(NodeId node, Receiver receiver);

  /// Injects a message at `src` addressed to `dst`; it is forwarded hop by
  /// hop and handed to dst's receiver (if any) on arrival.
  void Send(NodeId src, NodeId dst, int64_t size_bits, std::any payload);

  /// Convenience for single-packet sends (machine-level experiments).
  void SendPacket(NodeId src, NodeId dst) {
    Send(src, dst, kPacketBits, std::any());
  }

  /// Aggregate transport statistics since construction (or last Reset).
  struct Stats {
    uint64_t messages_sent = 0;
    uint64_t messages_delivered = 0;
    /// Bits that crossed links, counted once per hop (loopback excluded).
    int64_t link_bits = 0;
    /// Sum over delivered messages of (delivery - send) time.
    sim::SimTime total_latency_ns = 0;
    sim::SimTime max_latency_ns = 0;
    /// Largest number of messages simultaneously queued on one link.
    int max_link_backlog = 0;

    double AverageLatencyUs() const {
      if (messages_delivered == 0) return 0;
      return static_cast<double>(total_latency_ns) /
             static_cast<double>(messages_delivered) / 1000.0;
    }
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Delivery timestamps per destination node (for throughput windows).
  const std::vector<std::vector<sim::SimTime>>& delivery_times() const {
    return delivery_times_;
  }
  /// Stop recording per-delivery timestamps (they are only needed by the
  /// network experiments, not by the DBMS).
  void set_record_deliveries(bool record) { record_deliveries_ = record; }

  /// Busy-time fraction of the most loaded directed link over [0, now].
  double PeakLinkUtilization() const;

  /// Mirrors transport statistics into the machine-wide registry
  /// (net.messages_sent, net.messages_delivered, net.link_bits,
  /// net.latency_ns histogram) and, when the tracer is enabled, records a
  /// send->deliver span per message. Either pointer may be null.
  void AttachObservability(obs::MetricsRegistry* metrics,
                           obs::Tracer* tracer);

 private:
  struct LinkState {
    sim::SimTime free_at = 0;   // Earliest instant the link can start sending.
    sim::SimTime busy_ns = 0;   // Accumulated serialization time.
    int backlog = 0;            // Messages waiting or in transmission.
  };

  LinkState& link(NodeId from, NodeId to) {
    return links_[static_cast<size_t>(from) * topology_.num_nodes() + to];
  }
  const LinkState& link(NodeId from, NodeId to) const {
    return links_[static_cast<size_t>(from) * topology_.num_nodes() + to];
  }

  /// Message is at `node` at the current sim time; forward or deliver.
  void Arrive(NodeId node, Message message);
  void Deliver(NodeId node, Message message);

  sim::Simulator* sim_;
  Topology topology_;
  LinkParams params_;
  std::vector<LinkState> links_;
  std::vector<Receiver> receivers_;
  std::vector<std::vector<sim::SimTime>> delivery_times_;
  bool record_deliveries_ = false;
  Stats stats_;

  // Cached registry entries (null until AttachObservability).
  obs::Counter* m_sent_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_link_bits_ = nullptr;
  obs::Counter* m_packets_ = nullptr;
  obs::Histogram* m_latency_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace prisma::net

#endif  // PRISMA_NET_NETWORK_H_
