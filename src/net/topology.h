#ifndef PRISMA_NET_TOPOLOGY_H_
#define PRISMA_NET_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace prisma::net {

/// Identifier of a processing element (PE) in the multi-computer, 0-based.
using NodeId = int;

/// Static interconnection graph of the multi-computer with precomputed
/// shortest-path routing tables.
///
/// The paper (§3.2) prescribes 4 communication links per PE and a
/// "mesh-like" topology or "a variant of a chordal ring"; both are
/// provided, along with a plain ring and a torus for comparison. Routing is
/// deterministic shortest-path (ties broken by lowest neighbour id), so a
/// given (src, dst) pair always uses the same path.
class Topology {
 public:
  /// 2-D mesh without wraparound; interior nodes have 4 links.
  static Topology Mesh(int rows, int cols);

  /// 2-D torus (mesh with wraparound); every node has exactly 4 links.
  static Topology Torus(int rows, int cols);

  /// Bidirectional ring; every node has 2 links.
  static Topology Ring(int nodes);

  /// Chordal ring: ring plus chords i <-> (i + chord) mod n, giving every
  /// node exactly 4 links (the paper's "variant of a chordal ring").
  static Topology ChordalRing(int nodes, int chord);

  /// Every node connected to every other (idealized baseline).
  static Topology FullyConnected(int nodes);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  const std::vector<NodeId>& neighbors(NodeId node) const {
    return adjacency_[node];
  }

  /// Number of directed links (sum of node degrees).
  int num_directed_links() const;

  /// Maximum node degree (the paper's machine caps this at 4).
  int max_degree() const;

  /// First hop on the shortest path from `from` towards `to`.
  /// Returns `to` itself when they are equal.
  NodeId NextHop(NodeId from, NodeId to) const;

  /// Shortest-path hop count between two nodes.
  int Distance(NodeId from, NodeId to) const;

  /// Largest shortest-path distance over all pairs.
  int Diameter() const;

  /// Mean shortest-path distance over ordered distinct pairs.
  double AverageDistance() const;

  const std::string& name() const { return name_; }

 private:
  Topology(std::string name, std::vector<std::vector<NodeId>> adjacency);

  /// BFS from every node filling distance and next-hop tables.
  void BuildRoutes();

  std::string name_;
  std::vector<std::vector<NodeId>> adjacency_;
  // dist_[a][b]: hop count; next_hop_[a][b]: neighbour of a on the path to b.
  std::vector<std::vector<int>> dist_;
  std::vector<std::vector<NodeId>> next_hop_;
};

}  // namespace prisma::net

#endif  // PRISMA_NET_TOPOLOGY_H_
