#ifndef PRISMA_NET_TRAFFIC_H_
#define PRISMA_NET_TRAFFIC_H_

#include <cstdint>
#include <string>

#include "net/network.h"
#include "net/topology.h"
#include "obs/metrics.h"

namespace prisma::net {

/// Destination patterns for synthetic network load, standard in
/// interconnect evaluation. All experiments use 256-bit packets as in the
/// paper's own network simulations (§3.2).
enum class TrafficPattern {
  kUniform,    // Each packet targets a uniformly random other PE.
  kTranspose,  // PE i sends to PE (i + n/2) mod n — long paths.
  kHotspot,    // A fraction of packets targets PE 0, rest uniform.
  kNeighbor,   // PE i sends to a random direct neighbour — short paths.
};

const char* TrafficPatternName(TrafficPattern pattern);

/// Parameters of one synthetic-traffic run.
struct TrafficConfig {
  TrafficPattern pattern = TrafficPattern::kUniform;
  /// Offered load: packets injected per second per PE (Poisson process).
  double offered_packets_per_sec_per_pe = 10'000;
  /// Fraction of hotspot traffic aimed at PE 0 (kHotspot only).
  double hotspot_fraction = 0.10;
  /// Measurement window; injections stop at its end and in-flight packets
  /// are drained, but only deliveries inside the window count.
  sim::SimTime warmup_ns = 20 * sim::kNanosPerMilli;
  sim::SimTime measure_ns = 100 * sim::kNanosPerMilli;
  uint64_t seed = 17;
  /// Optional: attach the run's Network to this registry so callers can
  /// read the measured series (net.packets_sent, net.latency_ns, ...).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Results of one synthetic-traffic run.
struct TrafficResult {
  double offered_packets_per_sec_per_pe = 0;
  /// Delivered packets per second per PE inside the measurement window —
  /// the metric the paper quotes as "average network throughput".
  double delivered_packets_per_sec_per_pe = 0;
  double average_latency_us = 0;
  double max_latency_us = 0;
  double peak_link_utilization = 0;
  uint64_t packets_delivered = 0;
};

/// Drives a Poisson packet workload over a fresh Network built on
/// `topology` and returns throughput/latency statistics. Deterministic for
/// a fixed seed.
TrafficResult RunSyntheticTraffic(const Topology& topology,
                                  const LinkParams& params,
                                  const TrafficConfig& config);

}  // namespace prisma::net

#endif  // PRISMA_NET_TRAFFIC_H_
