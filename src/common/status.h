#ifndef PRISMA_COMMON_STATUS_H_
#define PRISMA_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace prisma {

/// Canonical error space for all fallible PRISMA operations.
///
/// The library does not use exceptions; every operation that can fail
/// returns a Status (or a StatusOr<T> when it also produces a value).
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kAborted,        // Transaction aborted (deadlock victim, conflict, ...).
  kUnavailable,    // Processing element or fragment is down.
  kInternal,
  kUnimplemented,
  kOverloaded,     // Shed at admission by the dispatcher (DESIGN.md §15).
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation: a code plus, for errors, a human-readable message.
///
/// An OK status carries no message and is cheap to copy. Statuses are
/// value types; they are copyable and movable.
///
/// [[nodiscard]]: a dropped Status is a swallowed failure. Call sites must
/// propagate, check, or discard explicitly with a reasoned
/// `(void)Op();  // why` (prisma_lint rule D4 checks the reason).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Factory helpers, mirroring absl::...Error().
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status AbortedError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status OverloadedError(std::string message);

/// A Status or a value of type T: exactly one of the two is present.
///
/// Accessing value() on an error StatusOr aborts the process (there are no
/// exceptions to throw); callers must check ok() first or use the
/// ASSIGN_OR_RETURN macro.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Intentionally implicit so `return value;` and `return status;` both
  /// work in functions returning StatusOr<T>.
  StatusOr(const T& value) : value_(value) {}
  StatusOr(T&& value) : value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    AbortIfOkStatus();
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const {
    if (!value_.has_value()) AbortBadAccess(status_);
  }
  void AbortIfOkStatus() const {
    if (status_.ok()) AbortOkConstructed();
  }
  static void AbortBadAccess(const Status& status);
  static void AbortOkConstructed();

  Status status_;          // kOk iff value_ holds a value.
  std::optional<T> value_;
};

namespace internal_status {
[[noreturn]] void DieStatus(const char* what, const Status& status);
}  // namespace internal_status

template <typename T>
void StatusOr<T>::AbortBadAccess(const Status& status) {
  internal_status::DieStatus("StatusOr::value() on error status", status);
}

template <typename T>
void StatusOr<T>::AbortOkConstructed() {
  internal_status::DieStatus("StatusOr constructed from OK status", Status());
}

}  // namespace prisma

/// Propagates an error Status from an expression, e.g.
///   RETURN_IF_ERROR(DoThing());
#define RETURN_IF_ERROR(expr)                   \
  do {                                          \
    ::prisma::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define PRISMA_CONCAT_INNER_(a, b) a##b
#define PRISMA_CONCAT_(a, b) PRISMA_CONCAT_INNER_(a, b)

/// Evaluates an expression returning StatusOr<T>; on error propagates the
/// status, otherwise assigns the value:
///   ASSIGN_OR_RETURN(auto plan, Optimize(query));
#define ASSIGN_OR_RETURN(lhs, expr)                              \
  auto PRISMA_CONCAT_(_statusor_, __LINE__) = (expr);            \
  if (!PRISMA_CONCAT_(_statusor_, __LINE__).ok())                \
    return PRISMA_CONCAT_(_statusor_, __LINE__).status();        \
  lhs = std::move(PRISMA_CONCAT_(_statusor_, __LINE__)).value()

#endif  // PRISMA_COMMON_STATUS_H_
