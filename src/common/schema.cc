#include "common/schema.h"

namespace prisma {
namespace {

// Returns the part after the last '.' (or the whole name).
std::string_view UnqualifiedName(std::string_view name) {
  const size_t dot = name.rfind('.');
  if (dot == std::string_view::npos) return name;
  return name.substr(dot + 1);
}

}  // namespace

StatusOr<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  // Unqualified lookup: "salary" matches "emp.salary" when unambiguous.
  size_t found = columns_.size();
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (UnqualifiedName(columns_[i].name) == name) {
      if (found != columns_.size()) {
        return InvalidArgumentError("ambiguous column name: " + name);
      }
      found = i;
    }
  }
  if (found == columns_.size()) {
    return NotFoundError("no such column: " + name);
  }
  return found;
}

bool Schema::HasColumn(const std::string& name) const {
  return ColumnIndex(name).ok();
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> cols = columns_;
  cols.insert(cols.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::Qualified(const std::string& alias) const {
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const Column& c : columns_) {
    cols.push_back(
        Column{alias + "." + std::string(UnqualifiedName(c.name)), c.type});
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace prisma
