#ifndef PRISMA_COMMON_SCHEMA_H_
#define PRISMA_COMMON_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace prisma {

/// A named, typed column of a relation schema.
struct Column {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const Column& other) const = default;
};

/// An ordered list of columns describing the shape of tuples in a relation
/// or an intermediate operator result.
///
/// Column names are case-sensitive and may be qualified ("emp.salary") by
/// the binder; lookup matches either the full name or the unqualified
/// suffix when it is unambiguous.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(std::string name, DataType type) {
    columns_.push_back(Column{std::move(name), type});
  }

  /// Returns the index of the column named `name`, trying an exact match
  /// first and then an unambiguous unqualified match ("salary" matches
  /// "emp.salary" if no other column ends in ".salary").
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  /// True if a column with that (exact or unqualified) name exists.
  bool HasColumn(const std::string& name) const;

  /// Schema of `this` concatenated with `other` (used by joins).
  Schema Concat(const Schema& other) const;

  /// Returns a copy whose column names are prefixed with "alias.". Any
  /// existing qualifier is replaced.
  Schema Qualified(const std::string& alias) const;

  bool operator==(const Schema& other) const = default;

  /// Renders as "(a INT, b STRING)".
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace prisma

#endif  // PRISMA_COMMON_SCHEMA_H_
