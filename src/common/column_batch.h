#ifndef PRISMA_COMMON_COLUMN_BATCH_H_
#define PRISMA_COMMON_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/tuple.h"
#include "common/value.h"

namespace prisma {

/// A fixed-size run of tuples stored column-wise: per-column typed arrays
/// plus a row-aligned null vector (DESIGN.md §12). This is the unit of the
/// vectorized execution path: batch scans, per-batch compiled expression
/// kernels and the column-encoded `tuple_batch` exchange frame all move
/// ColumnBatches instead of boxed per-row Values.
///
/// Column typing is inferred from the data. A column whose non-null values
/// all share one DataType is *typed*: its values live in one contiguous
/// array (`bools`/`ints`/`doubles`/`strings`, row-aligned; null slots hold
/// zero/empty placeholders). A column that mixes types — legal in
/// intermediate results, e.g. SUM() yields INT or DOUBLE per group — falls
/// back to *boxed* storage (`values`, one Value per row), preserving exact
/// per-row types so row and vectorized modes stay byte-identical.
class ColumnBatch {
 public:
  /// Default number of rows per batch on the local execution path (the
  /// exchange layer uses its own configured batch_rows for wire frames).
  static constexpr size_t kDefaultBatchRows = 1024;

  /// One column of the batch. `type` is the shared type of all non-null
  /// values when `boxed` is false; kNull means the column is entirely NULL
  /// (or empty). Exactly one payload vector is populated per column.
  struct Column {
    DataType type = DataType::kNull;
    bool boxed = false;
    std::vector<uint8_t> nulls;  // Row-aligned; 1 = NULL. Empty when boxed.
    std::vector<uint8_t> bools;  // Row-aligned when type == kBool.
    std::vector<int64_t> ints;   // Row-aligned when type == kInt64.
    std::vector<double> doubles; // Row-aligned when type == kDouble.
    std::vector<std::string> strings;  // Row-aligned when type == kString.
    std::vector<Value> values;   // Row-aligned when boxed.

    bool IsNull(size_t row) const {
      return boxed ? values[row].is_null() : nulls[row] != 0;
    }
    /// Boxes the value at `row` (copies; use the typed arrays in kernels).
    Value ValueAt(size_t row) const;
  };

  ColumnBatch() = default;
  /// An empty batch with `num_columns` all-NULL typed columns.
  explicit ColumnBatch(size_t num_columns) : columns_(num_columns) {}

  /// Builds a batch from `count` tuples of equal arity starting at
  /// `tuples`; column types are inferred as described above.
  static ColumnBatch FromTuples(const Tuple* tuples, size_t count);
  static ColumnBatch FromTuples(const std::vector<Tuple>& tuples);

  /// Splits `tuples` into batches of at most `batch_rows` rows each.
  /// Empty input yields no batches.
  static std::vector<ColumnBatch> Chunk(const std::vector<Tuple>& tuples,
                                        size_t batch_rows);

  /// Assembles a batch from ready-made columns (wire decoding). Every
  /// column must already be row-aligned to `num_rows`.
  static ColumnBatch FromColumns(std::vector<Column> columns,
                                 size_t num_rows);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t c) const { return columns_[c]; }

  /// Appends one row; `tuple` arity must equal num_columns(). A typed
  /// column seeing a second non-null type degrades to boxed storage.
  void AppendTuple(const Tuple& tuple);

  /// A new batch holding the given rows of this batch, in the given order
  /// (vectorized filter/gather primitive).
  ColumnBatch TakeRows(const std::vector<uint32_t>& rows) const;

  Value GetValue(size_t row, size_t col) const {
    return columns_[col].ValueAt(row);
  }
  Tuple RowAt(size_t row) const;
  std::vector<Tuple> ToTuples() const;

  /// Approximate in-memory footprint, mirroring Tuple::ByteSize for the
  /// memory tracker and profile byte counts.
  size_t ByteSize() const;

 private:
  void AppendValue(Column& col, const Value& v);
  void BoxColumn(Column& col);

  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace prisma

#endif  // PRISMA_COMMON_COLUMN_BATCH_H_
