#include "common/tuple.h"

namespace prisma {

uint64_t CombineTupleHash(uint64_t seed, uint64_t h) {
  // boost::hash_combine layout with 64-bit golden ratio.
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

namespace {

uint64_t CombineHashes(uint64_t seed, uint64_t h) {
  return CombineTupleHash(seed, h);
}

}  // namespace

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> values = left.values_;
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(values));
}

int Tuple::Compare(const Tuple& other) const {
  const size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = values_[i].Compare(other.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() == other.values_.size()) return 0;
  return values_.size() < other.values_.size() ? -1 : 1;
}

uint64_t Tuple::Hash() const {
  uint64_t h = 0x505249534d41ULL;  // "PRISMA"
  for (const Value& v : values_) h = CombineHashes(h, v.Hash());
  return h;
}

size_t Tuple::ByteSize() const {
  size_t n = 16;
  for (const Value& v : values_) n += v.ByteSize();
  return n;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

uint64_t HashTupleColumns(const Tuple& tuple, const std::vector<size_t>& columns) {
  uint64_t h = 0x4f464dULL;  // "OFM"
  for (size_t c : columns) h = CombineHashes(h, tuple.at(c).Hash());
  return h;
}

}  // namespace prisma
