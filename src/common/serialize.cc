#include "common/serialize.h"

#include <cstring>

namespace prisma {
namespace {

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBool = 1;
constexpr uint8_t kTagInt = 2;
constexpr uint8_t kTagDouble = 3;
constexpr uint8_t kTagString = 4;

// Column encodings inside a serialized ColumnBatch.
constexpr uint8_t kColTyped = 0;
constexpr uint8_t kColBoxed = 1;

/// Minimal delta width (bytes) that represents every value in [0, range].
uint8_t IntDeltaWidth(uint64_t range) {
  if (range == 0) return 0;
  if (range <= 0xFFu) return 1;
  if (range <= 0xFFFFu) return 2;
  if (range <= 0xFFFFFFFFu) return 4;
  return 8;
}

}  // namespace

void BinaryWriter::PutU32(uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out_.append(buf, sizeof(buf));
}

void BinaryWriter::PutU64(uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out_.append(buf, sizeof(buf));
}

void BinaryWriter::PutDouble(double v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out_.append(buf, sizeof(buf));
}

void BinaryWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

void BinaryWriter::PutValue(const Value& value) {
  switch (value.type()) {
    case DataType::kNull:
      PutU8(kTagNull);
      return;
    case DataType::kBool:
      PutU8(kTagBool);
      PutU8(value.bool_value() ? 1 : 0);
      return;
    case DataType::kInt64:
      PutU8(kTagInt);
      PutI64(value.int_value());
      return;
    case DataType::kDouble:
      PutU8(kTagDouble);
      PutDouble(value.double_value());
      return;
    case DataType::kString:
      PutU8(kTagString);
      PutString(value.string_value());
      return;
  }
}

void BinaryWriter::PutTuple(const Tuple& tuple) {
  PutU32(static_cast<uint32_t>(tuple.size()));
  for (const Value& v : tuple.values()) PutValue(v);
}

void BinaryWriter::PutSchema(const Schema& schema) {
  PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const Column& c : schema.columns()) {
    PutString(c.name);
    PutU8(static_cast<uint8_t>(c.type));
  }
}

void BinaryWriter::PutColumnBatch(const ColumnBatch& batch) {
  const size_t rows = batch.num_rows();
  PutU32(static_cast<uint32_t>(rows));
  PutU32(static_cast<uint32_t>(batch.num_columns()));
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    const ColumnBatch::Column& col = batch.column(c);
    if (col.boxed) {
      PutU8(kColBoxed);
      for (size_t r = 0; r < rows; ++r) PutValue(col.values[r]);
      continue;
    }
    PutU8(kColTyped);
    PutU8(static_cast<uint8_t>(col.type));
    // Null bitmap, LSB-first; bit set = row is NULL.
    for (size_t at = 0; at < rows; at += 8) {
      uint8_t byte = 0;
      for (size_t b = 0; b < 8 && at + b < rows; ++b) {
        if (col.nulls[at + b] != 0) byte |= static_cast<uint8_t>(1u << b);
      }
      PutU8(byte);
    }
    // Packed payload over the non-null rows only, in row order.
    switch (col.type) {
      case DataType::kNull:
        break;  // All rows NULL: the bitmap is the whole column.
      case DataType::kBool: {
        uint8_t byte = 0;
        size_t bit = 0;
        for (size_t r = 0; r < rows; ++r) {
          if (col.nulls[r] != 0) continue;
          if (col.bools[r] != 0) byte |= static_cast<uint8_t>(1u << bit);
          if (++bit == 8) {
            PutU8(byte);
            byte = 0;
            bit = 0;
          }
        }
        if (bit > 0) PutU8(byte);
        break;
      }
      case DataType::kInt64: {
        // Frame of reference: base = min, then minimal-width deltas.
        bool any = false;
        int64_t lo = 0;
        int64_t hi = 0;
        for (size_t r = 0; r < rows; ++r) {
          if (col.nulls[r] != 0) continue;
          if (!any || col.ints[r] < lo) lo = col.ints[r];
          if (!any || col.ints[r] > hi) hi = col.ints[r];
          any = true;
        }
        if (!any) break;
        const uint64_t range =
            static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
        const uint8_t width = IntDeltaWidth(range);
        PutI64(lo);
        PutU8(width);
        for (size_t r = 0; r < rows; ++r) {
          if (col.nulls[r] != 0) continue;
          const uint64_t delta = static_cast<uint64_t>(col.ints[r]) -
                                 static_cast<uint64_t>(lo);
          for (uint8_t b = 0; b < width; ++b) {
            PutU8(static_cast<uint8_t>(delta >> (8 * b)));
          }
        }
        break;
      }
      case DataType::kDouble:
        for (size_t r = 0; r < rows; ++r) {
          if (col.nulls[r] == 0) PutDouble(col.doubles[r]);
        }
        break;
      case DataType::kString:
        for (size_t r = 0; r < rows; ++r) {
          if (col.nulls[r] == 0) PutString(col.strings[r]);
        }
        break;
    }
  }
}

Status BinaryReader::Need(size_t n) const {
  if (pos_ + n > data_.size()) {
    return OutOfRangeError("truncated serialized data");
  }
  return Status::OK();
}

StatusOr<uint8_t> BinaryReader::GetU8() {
  RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

StatusOr<uint32_t> BinaryReader::GetU32() {
  RETURN_IF_ERROR(Need(4));
  uint32_t v;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> BinaryReader::GetU64() {
  RETURN_IF_ERROR(Need(8));
  uint64_t v;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += 8;
  return v;
}

StatusOr<int64_t> BinaryReader::GetI64() {
  ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

StatusOr<double> BinaryReader::GetDouble() {
  RETURN_IF_ERROR(Need(8));
  double v;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += 8;
  return v;
}

StatusOr<std::string> BinaryReader::GetString() {
  ASSIGN_OR_RETURN(uint32_t n, GetU32());
  RETURN_IF_ERROR(Need(n));
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

StatusOr<Value> BinaryReader::GetValue() {
  ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagBool: {
      ASSIGN_OR_RETURN(uint8_t b, GetU8());
      return Value::Bool(b != 0);
    }
    case kTagInt: {
      ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::Int(v);
    }
    case kTagDouble: {
      ASSIGN_OR_RETURN(double v, GetDouble());
      return Value::Double(v);
    }
    case kTagString: {
      ASSIGN_OR_RETURN(std::string s, GetString());
      return Value::String(std::move(s));
    }
    default:
      return InvalidArgumentError("corrupt value tag " + std::to_string(tag));
  }
}

StatusOr<Tuple> BinaryReader::GetTuple() {
  ASSIGN_OR_RETURN(uint32_t n, GetU32());
  std::vector<Value> values;
  values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(Value v, GetValue());
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

StatusOr<Schema> BinaryReader::GetSchema() {
  ASSIGN_OR_RETURN(uint32_t n, GetU32());
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(std::string name, GetString());
    ASSIGN_OR_RETURN(uint8_t type, GetU8());
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return InvalidArgumentError("corrupt schema type tag");
    }
    cols.push_back(Column{std::move(name), static_cast<DataType>(type)});
  }
  return Schema(std::move(cols));
}

StatusOr<ColumnBatch> BinaryReader::GetColumnBatch() {
  ASSIGN_OR_RETURN(uint32_t rows, GetU32());
  ASSIGN_OR_RETURN(uint32_t cols, GetU32());
  // Every column costs at least one byte on the wire; reject frames whose
  // claimed shape cannot fit before allocating anything.
  RETURN_IF_ERROR(Need(cols));
  std::vector<ColumnBatch::Column> columns;
  columns.reserve(cols);
  for (uint32_t c = 0; c < cols; ++c) {
    ColumnBatch::Column col;
    ASSIGN_OR_RETURN(uint8_t enc, GetU8());
    if (enc == kColBoxed) {
      col.boxed = true;
      for (uint32_t r = 0; r < rows; ++r) {
        ASSIGN_OR_RETURN(Value v, GetValue());
        col.values.push_back(std::move(v));
      }
      columns.push_back(std::move(col));
      continue;
    }
    if (enc != kColTyped) {
      return InvalidArgumentError("corrupt column encoding tag " +
                                  std::to_string(enc));
    }
    ASSIGN_OR_RETURN(uint8_t type, GetU8());
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return InvalidArgumentError("corrupt column type tag " +
                                  std::to_string(type));
    }
    col.type = static_cast<DataType>(type);
    const size_t bitmap_bytes = (static_cast<size_t>(rows) + 7) / 8;
    RETURN_IF_ERROR(Need(bitmap_bytes));
    col.nulls.reserve(rows);
    size_t non_null = 0;
    for (uint32_t r = 0; r < rows; ++r) {
      const uint8_t byte = static_cast<uint8_t>(data_[pos_ + r / 8]);
      const uint8_t null = (byte >> (r % 8)) & 1u;
      col.nulls.push_back(null);
      if (null == 0) ++non_null;
    }
    pos_ += bitmap_bytes;
    if (col.type == DataType::kNull && non_null > 0) {
      return InvalidArgumentError(
          "corrupt column: non-null rows in NULL-typed column");
    }
    switch (col.type) {
      case DataType::kNull:
        break;
      case DataType::kBool: {
        const size_t packed = (non_null + 7) / 8;
        RETURN_IF_ERROR(Need(packed));
        col.bools.reserve(rows);
        size_t bit = 0;
        for (uint32_t r = 0; r < rows; ++r) {
          if (col.nulls[r] != 0) {
            col.bools.push_back(0);
            continue;
          }
          const uint8_t byte = static_cast<uint8_t>(data_[pos_ + bit / 8]);
          col.bools.push_back((byte >> (bit % 8)) & 1u);
          ++bit;
        }
        pos_ += packed;
        break;
      }
      case DataType::kInt64: {
        int64_t base = 0;
        uint8_t width = 0;
        if (non_null > 0) {
          ASSIGN_OR_RETURN(base, GetI64());
          ASSIGN_OR_RETURN(width, GetU8());
          if (width != 0 && width != 1 && width != 2 && width != 4 &&
              width != 8) {
            return InvalidArgumentError("corrupt int column width " +
                                        std::to_string(width));
          }
          RETURN_IF_ERROR(Need(non_null * width));
        }
        col.ints.reserve(rows);
        for (uint32_t r = 0; r < rows; ++r) {
          if (col.nulls[r] != 0) {
            col.ints.push_back(0);
            continue;
          }
          uint64_t delta = 0;
          for (uint8_t b = 0; b < width; ++b) {
            delta |= static_cast<uint64_t>(
                         static_cast<uint8_t>(data_[pos_ + b]))
                     << (8 * b);
          }
          pos_ += width;
          col.ints.push_back(
              static_cast<int64_t>(static_cast<uint64_t>(base) + delta));
        }
        break;
      }
      case DataType::kDouble:
        RETURN_IF_ERROR(Need(non_null * 8));
        col.doubles.reserve(rows);
        for (uint32_t r = 0; r < rows; ++r) {
          if (col.nulls[r] != 0) {
            col.doubles.push_back(0.0);
            continue;
          }
          ASSIGN_OR_RETURN(double v, GetDouble());
          col.doubles.push_back(v);
        }
        break;
      case DataType::kString:
        col.strings.reserve(rows);
        for (uint32_t r = 0; r < rows; ++r) {
          if (col.nulls[r] != 0) {
            col.strings.push_back(std::string());
            continue;
          }
          ASSIGN_OR_RETURN(std::string s, GetString());
          col.strings.push_back(std::move(s));
        }
        break;
    }
    columns.push_back(std::move(col));
  }
  return ColumnBatch::FromColumns(std::move(columns), rows);
}

std::string SerializeTuple(const Tuple& tuple) {
  BinaryWriter w;
  w.PutTuple(tuple);
  return w.Take();
}

StatusOr<Tuple> DeserializeTuple(std::string_view data) {
  BinaryReader r(data);
  return r.GetTuple();
}

std::string SerializeColumnBatch(const ColumnBatch& batch) {
  BinaryWriter w;
  w.PutColumnBatch(batch);
  return w.Take();
}

StatusOr<ColumnBatch> DeserializeColumnBatch(std::string_view data) {
  BinaryReader r(data);
  return r.GetColumnBatch();
}

}  // namespace prisma
