#include "common/serialize.h"

#include <cstring>

namespace prisma {
namespace {

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBool = 1;
constexpr uint8_t kTagInt = 2;
constexpr uint8_t kTagDouble = 3;
constexpr uint8_t kTagString = 4;

}  // namespace

void BinaryWriter::PutU32(uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out_.append(buf, sizeof(buf));
}

void BinaryWriter::PutU64(uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out_.append(buf, sizeof(buf));
}

void BinaryWriter::PutDouble(double v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out_.append(buf, sizeof(buf));
}

void BinaryWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

void BinaryWriter::PutValue(const Value& value) {
  switch (value.type()) {
    case DataType::kNull:
      PutU8(kTagNull);
      return;
    case DataType::kBool:
      PutU8(kTagBool);
      PutU8(value.bool_value() ? 1 : 0);
      return;
    case DataType::kInt64:
      PutU8(kTagInt);
      PutI64(value.int_value());
      return;
    case DataType::kDouble:
      PutU8(kTagDouble);
      PutDouble(value.double_value());
      return;
    case DataType::kString:
      PutU8(kTagString);
      PutString(value.string_value());
      return;
  }
}

void BinaryWriter::PutTuple(const Tuple& tuple) {
  PutU32(static_cast<uint32_t>(tuple.size()));
  for (const Value& v : tuple.values()) PutValue(v);
}

void BinaryWriter::PutSchema(const Schema& schema) {
  PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const Column& c : schema.columns()) {
    PutString(c.name);
    PutU8(static_cast<uint8_t>(c.type));
  }
}

Status BinaryReader::Need(size_t n) const {
  if (pos_ + n > data_.size()) {
    return OutOfRangeError("truncated serialized data");
  }
  return Status::OK();
}

StatusOr<uint8_t> BinaryReader::GetU8() {
  RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

StatusOr<uint32_t> BinaryReader::GetU32() {
  RETURN_IF_ERROR(Need(4));
  uint32_t v;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> BinaryReader::GetU64() {
  RETURN_IF_ERROR(Need(8));
  uint64_t v;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += 8;
  return v;
}

StatusOr<int64_t> BinaryReader::GetI64() {
  ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

StatusOr<double> BinaryReader::GetDouble() {
  RETURN_IF_ERROR(Need(8));
  double v;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += 8;
  return v;
}

StatusOr<std::string> BinaryReader::GetString() {
  ASSIGN_OR_RETURN(uint32_t n, GetU32());
  RETURN_IF_ERROR(Need(n));
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

StatusOr<Value> BinaryReader::GetValue() {
  ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagBool: {
      ASSIGN_OR_RETURN(uint8_t b, GetU8());
      return Value::Bool(b != 0);
    }
    case kTagInt: {
      ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::Int(v);
    }
    case kTagDouble: {
      ASSIGN_OR_RETURN(double v, GetDouble());
      return Value::Double(v);
    }
    case kTagString: {
      ASSIGN_OR_RETURN(std::string s, GetString());
      return Value::String(std::move(s));
    }
    default:
      return InvalidArgumentError("corrupt value tag " + std::to_string(tag));
  }
}

StatusOr<Tuple> BinaryReader::GetTuple() {
  ASSIGN_OR_RETURN(uint32_t n, GetU32());
  std::vector<Value> values;
  values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(Value v, GetValue());
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

StatusOr<Schema> BinaryReader::GetSchema() {
  ASSIGN_OR_RETURN(uint32_t n, GetU32());
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(std::string name, GetString());
    ASSIGN_OR_RETURN(uint8_t type, GetU8());
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return InvalidArgumentError("corrupt schema type tag");
    }
    cols.push_back(Column{std::move(name), static_cast<DataType>(type)});
  }
  return Schema(std::move(cols));
}

std::string SerializeTuple(const Tuple& tuple) {
  BinaryWriter w;
  w.PutTuple(tuple);
  return w.Take();
}

StatusOr<Tuple> DeserializeTuple(std::string_view data) {
  BinaryReader r(data);
  return r.GetTuple();
}

}  // namespace prisma
