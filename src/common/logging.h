#ifndef PRISMA_COMMON_LOGGING_H_
#define PRISMA_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

#include "common/status.h"

namespace prisma {
namespace internal_logging {

/// Process-wide context line printed by CheckFail (empty = none). Soak
/// harnesses install the failing seed + a one-line repro command here so
/// an abort deep inside the machine still tells the reader how to rerun
/// exactly the failing iteration.
inline std::string& FailureContext() {
  static std::string context;
  return context;
}

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* condition,
                                   const std::string& message) {
  std::fprintf(stderr, "PRISMA check failed at %s:%d: %s %s\n", file, line,
               condition, message.c_str());
  if (!FailureContext().empty()) {
    std::fprintf(stderr, "%s\n", FailureContext().c_str());
  }
  std::abort();
}

/// Collects streamed detail for PRISMA_CHECK failures.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFail(file_, line_, condition_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// RAII: while alive, any PRISMA_CHECK failure additionally prints
/// `context` (e.g. "failing seed: 7\nrepro: PRISMA_SEED=7 ctest -R ...").
/// Scopes nest by replacement; the previous context is restored on exit.
class ScopedFailureContext {
 public:
  explicit ScopedFailureContext(std::string context)
      : previous_(internal_logging::FailureContext()) {
    internal_logging::FailureContext() = std::move(context);
  }
  ~ScopedFailureContext() {
    internal_logging::FailureContext() = std::move(previous_);
  }
  ScopedFailureContext(const ScopedFailureContext&) = delete;
  ScopedFailureContext& operator=(const ScopedFailureContext&) = delete;

 private:
  std::string previous_;
};

}  // namespace prisma

/// Aborts with a diagnostic when `condition` is false. Used for internal
/// invariants only — user-facing failures must return Status instead.
#define PRISMA_CHECK(condition)                                        \
  if (condition) {                                                     \
  } else                                                               \
    ::prisma::internal_logging::CheckMessageBuilder(__FILE__, __LINE__, \
                                                    #condition)

#define PRISMA_CHECK_OK(expr)                                      \
  do {                                                             \
    ::prisma::Status _st = (expr);                                 \
    PRISMA_CHECK(_st.ok()) << _st.ToString();                      \
  } while (0)

#define PRISMA_DCHECK(condition) PRISMA_CHECK(condition)

#endif  // PRISMA_COMMON_LOGGING_H_
