#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace prisma {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status AbortedError(std::string message) {
  return Status(StatusCode::kAborted, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status OverloadedError(std::string message) {
  return Status(StatusCode::kOverloaded, std::move(message));
}

namespace internal_status {

void DieStatus(const char* what, const Status& status) {
  std::fprintf(stderr, "PRISMA fatal: %s (%s)\n", what,
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status

}  // namespace prisma
