#ifndef PRISMA_COMMON_VALUE_H_
#define PRISMA_COMMON_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/status.h"

namespace prisma {

/// Column data types supported by the PRISMA relational model.
enum class DataType : uint8_t {
  kNull = 0,  // Type of the NULL literal before coercion.
  kBool,
  kInt64,
  kDouble,
  kString,
};

/// Returns the SQL-ish name of a data type ("INT", "DOUBLE", ...).
const char* DataTypeName(DataType type);

/// A dynamically typed scalar value: NULL, BOOL, INT, DOUBLE or STRING.
///
/// Values are ordered within a type (NULL sorts before everything); mixed
/// INT/DOUBLE comparisons promote to double. Cross-type comparisons between
/// incomparable types (e.g. INT vs STRING) are rejected by the expression
/// type checker before evaluation, and fall back to type-tag order here.
class Value {
 public:
  /// Constructs the NULL value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  DataType type() const;

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }

  /// Typed accessors; the caller must check type() first. Accessing the
  /// wrong alternative aborts (internal invariant violation).
  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }

  /// Returns the value as a double, promoting INT; aborts on other types.
  double AsDouble() const;

  /// Total order used by sort/merge operators and ordered indexes.
  /// NULL < BOOL < numeric < STRING across incomparable types.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable 64-bit hash (equal values hash equal, including INT/DOUBLE
  /// values that compare equal).
  uint64_t Hash() const;

  /// Renders the value for result printing ("NULL", "42", "'abc'").
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes, used by the per-PE memory
  /// tracker and the optimizer's size estimator.
  size_t ByteSize() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

/// True if a value of type `from` may be used where `to` is expected
/// (identity, NULL-to-anything, INT-to-DOUBLE widening).
bool IsCoercible(DataType from, DataType to);

/// Coerces `value` to `type` (INT->DOUBLE widening, NULL passthrough).
/// Fails with kInvalidArgument for lossy or unrelated conversions.
StatusOr<Value> CoerceValue(const Value& value, DataType type);

}  // namespace prisma

#endif  // PRISMA_COMMON_VALUE_H_
