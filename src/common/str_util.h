#ifndef PRISMA_COMMON_STR_UTIL_H_
#define PRISMA_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace prisma {

/// Lower-cases ASCII characters (SQL keywords are case-insensitive).
std::string AsciiLower(std::string_view s);

/// True if `a` equals `b` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace prisma

#endif  // PRISMA_COMMON_STR_UTIL_H_
