#ifndef PRISMA_COMMON_RNG_H_
#define PRISMA_COMMON_RNG_H_

#include <cstdint>

namespace prisma {

/// Deterministic 64-bit PRNG (xoshiro256**) seeded explicitly.
///
/// Every experiment and property test owns its own Rng so results are
/// reproducible across hosts and runs; never use std::rand or
/// std::random_device in library code.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace prisma

#endif  // PRISMA_COMMON_RNG_H_
