#ifndef PRISMA_COMMON_SERIALIZE_H_
#define PRISMA_COMMON_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/column_batch.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/tuple.h"
#include "common/value.h"

namespace prisma {

/// Little binary writer used for WAL records, checkpoints and message size
/// accounting. The format is a private, versionless wire format: a type tag
/// byte per value, varint-free fixed-width integers (simplicity over
/// compactness, as in the 1988 prototype).
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(std::string_view s);
  void PutValue(const Value& value);
  void PutTuple(const Tuple& tuple);
  void PutSchema(const Schema& schema);
  /// Column-encoded tuple batch (DESIGN.md §12): per column a null bitmap
  /// plus a packed payload for the non-null rows only — bit-packed bools,
  /// frame-of-reference ints (minimal delta width), raw doubles,
  /// length-prefixed strings; mixed-type columns fall back to tagged
  /// per-row Values. Deterministic: encode -> decode -> encode is
  /// byte-stable.
  void PutColumnBatch(const ColumnBatch& batch);

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Cursor-style reader over a serialized buffer; all getters fail with
/// kOutOfRange on truncated input and kInvalidArgument on corrupt tags.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  StatusOr<int64_t> GetI64();
  StatusOr<double> GetDouble();
  StatusOr<std::string> GetString();
  StatusOr<Value> GetValue();
  StatusOr<Tuple> GetTuple();
  StatusOr<Schema> GetSchema();
  StatusOr<ColumnBatch> GetColumnBatch();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

/// One-shot helpers.
std::string SerializeTuple(const Tuple& tuple);
StatusOr<Tuple> DeserializeTuple(std::string_view data);
std::string SerializeColumnBatch(const ColumnBatch& batch);
StatusOr<ColumnBatch> DeserializeColumnBatch(std::string_view data);

}  // namespace prisma

#endif  // PRISMA_COMMON_SERIALIZE_H_
