#include "common/value.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace prisma {
namespace {

// 64-bit mix of SplitMix64; good avalanche for hash table use.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashBytes(const char* data, size_t n) {
  // FNV-1a, then a final mix.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

// Rank used to order values of incomparable types deterministically.
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 2;  // Numerics share a rank and compare by value.
    case DataType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

DataType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
  }
  PRISMA_CHECK(false) << "corrupt Value variant";
  return DataType::kNull;
}

double Value::AsDouble() const {
  if (auto* i = std::get_if<int64_t>(&rep_)) return static_cast<double>(*i);
  return std::get<double>(rep_);
}

int Value::Compare(const Value& other) const {
  const DataType a = type();
  const DataType b = other.type();
  const int ra = TypeRank(a);
  const int rb = TypeRank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return static_cast<int>(bool_value()) - static_cast<int>(other.bool_value());
    case DataType::kInt64:
      if (b == DataType::kInt64) {
        const int64_t x = int_value();
        const int64_t y = other.int_value();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      return CompareDoubles(AsDouble(), other.AsDouble());
    case DataType::kDouble:
      return CompareDoubles(AsDouble(), other.AsDouble());
    case DataType::kString:
      return string_value().compare(other.string_value());
  }
  return 0;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return Mix64(0x6e756c6cULL);
    case DataType::kBool:
      return Mix64(bool_value() ? 2 : 1);
    case DataType::kInt64:
      return Mix64(static_cast<uint64_t>(int_value()));
    case DataType::kDouble: {
      const double d = double_value();
      // Integral doubles must hash like the equal INT value.
      if (d >= -9.2e18 && d <= 9.2e18 && d == std::floor(d)) {
        return Mix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits);
    }
    case DataType::kString:
      return HashBytes(string_value().data(), string_value().size());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case DataType::kInt64:
      return std::to_string(int_value());
    case DataType::kDouble: {
      std::string s = std::to_string(double_value());
      return s;
    }
    case DataType::kString:
      return "'" + string_value() + "'";
  }
  return "?";
}

size_t Value::ByteSize() const {
  switch (type()) {
    case DataType::kNull:
      return 1;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 16 + string_value().size();
  }
  return 1;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

bool IsCoercible(DataType from, DataType to) {
  if (from == to) return true;
  if (from == DataType::kNull) return true;
  if (from == DataType::kInt64 && to == DataType::kDouble) return true;
  return false;
}

StatusOr<Value> CoerceValue(const Value& value, DataType type) {
  if (value.type() == type || value.is_null()) return value;
  if (value.type() == DataType::kInt64 && type == DataType::kDouble) {
    return Value::Double(static_cast<double>(value.int_value()));
  }
  return InvalidArgumentError(std::string("cannot coerce ") +
                              DataTypeName(value.type()) + " to " +
                              DataTypeName(type));
}

}  // namespace prisma
