#ifndef PRISMA_COMMON_TUPLE_H_
#define PRISMA_COMMON_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace prisma {

/// A row of scalar values. Tuples do not carry their schema; the producing
/// operator's Schema describes their shape.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value value) { values_.push_back(std::move(value)); }

  /// Concatenation of two tuples (join output).
  static Tuple Concat(const Tuple& left, const Tuple& right);

  /// Total order: lexicographic by Value::Compare.
  int Compare(const Tuple& other) const;
  bool operator==(const Tuple& other) const { return Compare(other) == 0; }
  bool operator<(const Tuple& other) const { return Compare(other) < 0; }

  /// Hash over all fields (combinable with per-column Value::Hash).
  uint64_t Hash() const;

  /// Approximate in-memory footprint in bytes.
  size_t ByteSize() const;

  /// Renders as "(1, 'abc', NULL)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// Hash of the projection of `tuple` onto `columns`, used for hash
/// fragmentation and hash joins.
uint64_t HashTupleColumns(const Tuple& tuple, const std::vector<size_t>& columns);

/// The hash combiner behind Tuple::Hash and HashTupleColumns, exposed so
/// columnar kernels can fold per-column Value hashes incrementally and
/// land on the same result as the tuple forms.
uint64_t CombineTupleHash(uint64_t seed, uint64_t h);

/// Seed of HashTupleColumns; start here when combining incrementally.
inline constexpr uint64_t kHashTupleColumnsSeed = 0x4f464dULL;  // "OFM"

}  // namespace prisma

#endif  // PRISMA_COMMON_TUPLE_H_
