#include "common/column_batch.h"

namespace prisma {

Value ColumnBatch::Column::ValueAt(size_t row) const {
  if (boxed) return values[row];
  if (nulls[row] != 0) return Value::Null();
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool:
      return Value::Bool(bools[row] != 0);
    case DataType::kInt64:
      return Value::Int(ints[row]);
    case DataType::kDouble:
      return Value::Double(doubles[row]);
    case DataType::kString:
      return Value::String(strings[row]);
  }
  return Value::Null();
}

ColumnBatch ColumnBatch::FromTuples(const Tuple* tuples, size_t count) {
  if (count == 0) return ColumnBatch();
  ColumnBatch batch(tuples[0].size());
  for (size_t i = 0; i < count; ++i) batch.AppendTuple(tuples[i]);
  return batch;
}

ColumnBatch ColumnBatch::FromTuples(const std::vector<Tuple>& tuples) {
  return FromTuples(tuples.data(), tuples.size());
}

std::vector<ColumnBatch> ColumnBatch::Chunk(const std::vector<Tuple>& tuples,
                                            size_t batch_rows) {
  std::vector<ColumnBatch> batches;
  if (batch_rows == 0) batch_rows = kDefaultBatchRows;
  for (size_t at = 0; at < tuples.size(); at += batch_rows) {
    const size_t n = std::min(batch_rows, tuples.size() - at);
    batches.push_back(FromTuples(tuples.data() + at, n));
  }
  return batches;
}

ColumnBatch ColumnBatch::FromColumns(std::vector<Column> columns,
                                     size_t num_rows) {
  ColumnBatch batch;
  batch.columns_ = std::move(columns);
  batch.num_rows_ = num_rows;
  return batch;
}

void ColumnBatch::BoxColumn(Column& col) {
  std::vector<Value> values;
  values.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) values.push_back(col.ValueAt(r));
  col = Column();
  col.boxed = true;
  col.values = std::move(values);
}

void ColumnBatch::AppendValue(Column& col, const Value& v) {
  if (!col.boxed && !v.is_null() && col.type != DataType::kNull &&
      col.type != v.type()) {
    BoxColumn(col);
  }
  if (col.boxed) {
    col.values.push_back(v);
    return;
  }
  if (!v.is_null() && col.type == DataType::kNull) {
    // First non-null value fixes the column type; backfill placeholders
    // for the NULL rows appended so far.
    col.type = v.type();
    switch (col.type) {
      case DataType::kNull:
        break;
      case DataType::kBool:
        col.bools.assign(num_rows_, 0);
        break;
      case DataType::kInt64:
        col.ints.assign(num_rows_, 0);
        break;
      case DataType::kDouble:
        col.doubles.assign(num_rows_, 0.0);
        break;
      case DataType::kString:
        col.strings.assign(num_rows_, std::string());
        break;
    }
  }
  col.nulls.push_back(v.is_null() ? 1 : 0);
  switch (col.type) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      col.bools.push_back(v.is_null() ? 0 : (v.bool_value() ? 1 : 0));
      break;
    case DataType::kInt64:
      col.ints.push_back(v.is_null() ? 0 : v.int_value());
      break;
    case DataType::kDouble:
      col.doubles.push_back(v.is_null() ? 0.0 : v.double_value());
      break;
    case DataType::kString:
      col.strings.push_back(v.is_null() ? std::string() : v.string_value());
      break;
  }
}

void ColumnBatch::AppendTuple(const Tuple& tuple) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    AppendValue(columns_[c], tuple.at(c));
  }
  ++num_rows_;
}

ColumnBatch ColumnBatch::TakeRows(const std::vector<uint32_t>& rows) const {
  ColumnBatch out(columns_.size());
  out.num_rows_ = rows.size();
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& in = columns_[c];
    Column& dst = out.columns_[c];
    if (in.boxed) {
      dst.boxed = true;
      dst.values.reserve(rows.size());
      for (const uint32_t r : rows) dst.values.push_back(in.values[r]);
      continue;
    }
    dst.type = in.type;
    dst.nulls.reserve(rows.size());
    for (const uint32_t r : rows) dst.nulls.push_back(in.nulls[r]);
    switch (in.type) {
      case DataType::kNull:
        break;
      case DataType::kBool:
        dst.bools.reserve(rows.size());
        for (const uint32_t r : rows) dst.bools.push_back(in.bools[r]);
        break;
      case DataType::kInt64:
        dst.ints.reserve(rows.size());
        for (const uint32_t r : rows) dst.ints.push_back(in.ints[r]);
        break;
      case DataType::kDouble:
        dst.doubles.reserve(rows.size());
        for (const uint32_t r : rows) dst.doubles.push_back(in.doubles[r]);
        break;
      case DataType::kString:
        dst.strings.reserve(rows.size());
        for (const uint32_t r : rows) dst.strings.push_back(in.strings[r]);
        break;
    }
  }
  return out;
}

Tuple ColumnBatch::RowAt(size_t row) const {
  std::vector<Value> values;
  values.reserve(columns_.size());
  for (const Column& col : columns_) values.push_back(col.ValueAt(row));
  return Tuple(std::move(values));
}

std::vector<Tuple> ColumnBatch::ToTuples() const {
  std::vector<Tuple> tuples;
  tuples.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) tuples.push_back(RowAt(r));
  return tuples;
}

size_t ColumnBatch::ByteSize() const {
  size_t bytes = 0;
  for (size_t r = 0; r < num_rows_; ++r) bytes += RowAt(r).ByteSize();
  return bytes;
}

}  // namespace prisma
