#ifndef PRISMA_PRISMALOG_ENGINE_H_
#define PRISMA_PRISMALOG_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/tuple.h"
#include "exec/executor.h"
#include "exec/transitive_closure.h"
#include "prismalog/ast.h"
#include "sql/binder.h"

namespace prisma::prismalog {

struct EngineOptions {
  /// Virtual-time cost model and charge hook (see exec::ExecOptions).
  pool::CostModel costs;
  std::function<void(sim::SimTime)> charge;
  /// Detect the linear transitive-closure pattern and evaluate it with the
  /// OFM's dedicated TC operator (§2.5) instead of generic seminaive rule
  /// iteration.
  bool use_tc_operator = true;
  exec::TcAlgorithm tc_algorithm = exec::TcAlgorithm::kSeminaive;
  /// Safety valve against non-terminating programs (cannot trigger for
  /// range-restricted Datalog, which always terminates).
  uint64_t max_iterations = 1'000'000;
};

struct EvalStats {
  int num_strata = 0;
  uint64_t iterations = 0;       // Seminaive rounds summed over strata.
  uint64_t facts_derived = 0;    // Distinct IDB facts.
  uint64_t rule_evaluations = 0; // Rule-body plan executions.
  bool used_tc_operator = false;
};

struct QueryResult {
  /// One column per distinct variable of the goal, in first-appearance
  /// order; a goal without variables yields schema ("sat") with one row
  /// (TRUE/FALSE).
  Schema schema;
  std::vector<Tuple> tuples;  // Distinct, sorted.
};

/// The classic linear-recursion pair: p is exactly the transitive closure
/// of the base relation e. Detected on the AST so callers that never run
/// the engine (the distributed fixpoint route in gdh::QueryProcess) apply
/// the same conservative match as Engine's internal TC shortcut.
struct LinearTcPattern {
  std::string closure_pred;  // p: the recursively defined predicate.
  std::string edge_pred;     // e: the base (EDB) relation.
};

/// Matches a program of exactly two rules — p(X,Y) :- e(X,Y) and a
/// left- or right-linear step rule — with no facts, negation or
/// comparisons, and a query. Returns nullopt for anything else.
std::optional<LinearTcPattern> DetectLinearTc(const Program& program);

/// Answers `goal` against the full extension of its predicate: filters by
/// constant and repeated-variable arguments, projects the distinct
/// variables in first-appearance order, deduplicates and sorts. Shared by
/// Engine::Run and the distributed fixpoint path so both produce
/// byte-identical results. Extension tuples must be at least as wide as
/// the goal.
QueryResult AnswerGoal(const Atom& goal, const std::vector<Tuple>& extension);

/// PRISMAlog evaluator (§2.3): set-oriented, bottom-up evaluation of
/// definite function-free Horn clauses with stratified negation and
/// comparison built-ins.
///
/// Rule bodies are translated to the extended relational algebra (scans,
/// equi-joins, selections, projections) and executed by exec::Executor;
/// recursion is evaluated seminaively, and the classic linear-recursion
/// pair of rules is detected and routed to the transitive-closure
/// operator. Negation is an anti-join applied per derivation.
///
/// Rule plans run with *interpreted* expressions: untyped Datalog columns
/// have no static type for the expression compiler to specialize on.
class Engine {
 public:
  // Implementation detail, public so the internal rule resolver can name
  // the map type; not part of the supported API.
  struct PredicateInfo;

  /// `edb` resolves base-relation scans, `catalog` provides their schemas
  /// (both borrowed, must outlive the engine).
  Engine(const exec::TableResolver* edb, const sql::CatalogReader* catalog,
         EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Evaluates the program and answers its query.
  StatusOr<QueryResult> Run(const Program& program);

  /// Evaluates the program and returns the full extension of `predicate`
  /// (IDB or EDB), for tests and the PRISMAlog REPL.
  StatusOr<std::vector<Tuple>> EvaluatePredicate(const Program& program,
                                                 const std::string& predicate);

  const EvalStats& stats() const { return stats_; }

 private:
  struct RuleInfo;

  Status Analyze(const Program& program);
  Status CheckRangeRestriction(const Rule& rule) const;
  Status Stratify();
  Status EvaluateStratum(const std::vector<std::string>& stratum);
  StatusOr<bool> TryTcShortcut(const std::vector<std::string>& stratum);
  /// Evaluates one rule with the given body occurrence reading the delta
  /// relation (-1 = all occurrences read full extensions); returns newly
  /// derived head tuples (not yet deduplicated).
  StatusOr<std::vector<Tuple>> EvaluateRule(const RuleInfo& rule,
                                            int delta_occurrence);
  /// Inserts derived tuples into `pred`'s extension; returns how many
  /// were new (those also go to the pending-delta buffer).
  StatusOr<size_t> Absorb(const std::string& pred, std::vector<Tuple> tuples);

  StatusOr<std::vector<Tuple>> ExtensionOf(const std::string& predicate);

  const exec::TableResolver* edb_;
  const sql::CatalogReader* catalog_;
  EngineOptions options_;
  EvalStats stats_;

  std::map<std::string, std::unique_ptr<PredicateInfo>> predicates_;
  std::vector<RuleInfo> rules_;
  std::vector<std::vector<std::string>> strata_;
};

}  // namespace prisma::prismalog

#endif  // PRISMA_PRISMALOG_ENGINE_H_
