#ifndef PRISMA_PRISMALOG_ENGINE_H_
#define PRISMA_PRISMALOG_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/tuple.h"
#include "exec/executor.h"
#include "exec/transitive_closure.h"
#include "prismalog/ast.h"
#include "sql/binder.h"

namespace prisma::prismalog {

struct EngineOptions {
  /// Virtual-time cost model and charge hook (see exec::ExecOptions).
  pool::CostModel costs;
  std::function<void(sim::SimTime)> charge;
  /// Detect the linear transitive-closure pattern and evaluate it with the
  /// OFM's dedicated TC operator (§2.5) instead of generic seminaive rule
  /// iteration.
  bool use_tc_operator = true;
  exec::TcAlgorithm tc_algorithm = exec::TcAlgorithm::kSeminaive;
  /// Safety valve against non-terminating programs (cannot trigger for
  /// range-restricted Datalog, which always terminates).
  uint64_t max_iterations = 1'000'000;
};

struct EvalStats {
  int num_strata = 0;
  uint64_t iterations = 0;       // Seminaive rounds summed over strata.
  uint64_t facts_derived = 0;    // Distinct IDB facts.
  uint64_t rule_evaluations = 0; // Rule-body plan executions.
  bool used_tc_operator = false;
};

struct QueryResult {
  /// One column per distinct variable of the goal, in first-appearance
  /// order; a goal without variables yields schema ("sat") with one row
  /// (TRUE/FALSE).
  Schema schema;
  std::vector<Tuple> tuples;  // Distinct, sorted.
};

/// PRISMAlog evaluator (§2.3): set-oriented, bottom-up evaluation of
/// definite function-free Horn clauses with stratified negation and
/// comparison built-ins.
///
/// Rule bodies are translated to the extended relational algebra (scans,
/// equi-joins, selections, projections) and executed by exec::Executor;
/// recursion is evaluated seminaively, and the classic linear-recursion
/// pair of rules is detected and routed to the transitive-closure
/// operator. Negation is an anti-join applied per derivation.
///
/// Rule plans run with *interpreted* expressions: untyped Datalog columns
/// have no static type for the expression compiler to specialize on.
class Engine {
 public:
  // Implementation detail, public so the internal rule resolver can name
  // the map type; not part of the supported API.
  struct PredicateInfo;

  /// `edb` resolves base-relation scans, `catalog` provides their schemas
  /// (both borrowed, must outlive the engine).
  Engine(const exec::TableResolver* edb, const sql::CatalogReader* catalog,
         EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Evaluates the program and answers its query.
  StatusOr<QueryResult> Run(const Program& program);

  /// Evaluates the program and returns the full extension of `predicate`
  /// (IDB or EDB), for tests and the PRISMAlog REPL.
  StatusOr<std::vector<Tuple>> EvaluatePredicate(const Program& program,
                                                 const std::string& predicate);

  const EvalStats& stats() const { return stats_; }

 private:
  struct RuleInfo;

  Status Analyze(const Program& program);
  Status CheckRangeRestriction(const Rule& rule) const;
  Status Stratify();
  Status EvaluateStratum(const std::vector<std::string>& stratum);
  StatusOr<bool> TryTcShortcut(const std::vector<std::string>& stratum);
  /// Evaluates one rule with the given body occurrence reading the delta
  /// relation (-1 = all occurrences read full extensions); returns newly
  /// derived head tuples (not yet deduplicated).
  StatusOr<std::vector<Tuple>> EvaluateRule(const RuleInfo& rule,
                                            int delta_occurrence);
  /// Inserts derived tuples into `pred`'s extension; returns how many
  /// were new (those also go to the pending-delta buffer).
  StatusOr<size_t> Absorb(const std::string& pred, std::vector<Tuple> tuples);

  StatusOr<std::vector<Tuple>> ExtensionOf(const std::string& predicate);

  const exec::TableResolver* edb_;
  const sql::CatalogReader* catalog_;
  EngineOptions options_;
  EvalStats stats_;

  std::map<std::string, std::unique_ptr<PredicateInfo>> predicates_;
  std::vector<RuleInfo> rules_;
  std::vector<std::vector<std::string>> strata_;
};

}  // namespace prisma::prismalog

#endif  // PRISMA_PRISMALOG_ENGINE_H_
