#include "prismalog/ast.h"

namespace prisma::prismalog {

Term Var(std::string name) {
  Term t;
  t.kind = Term::Kind::kVariable;
  t.variable = std::move(name);
  return t;
}

Term Const(Value v) {
  Term t;
  t.kind = Term::Kind::kConstant;
  t.constant = std::move(v);
  return t;
}

std::string Term::ToString() const {
  if (kind == Kind::kVariable) return variable;
  return constant.ToString();
}

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

std::string BodyElem::ToString() const {
  if (kind == Kind::kAtom) {
    return (negated ? "not " : "") + atom.ToString();
  }
  return cmp_lhs.ToString() + " " + algebra::BinaryOpName(cmp_op) + " " +
         cmp_rhs.ToString();
}

std::string Rule::ToString() const {
  std::string out = head.ToString();
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ", ";
      out += body[i].ToString();
    }
  }
  out += ".";
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& r : rules) {
    out += r.ToString();
    out += "\n";
  }
  if (query.has_value()) {
    out += "? " + query->ToString() + ".\n";
  }
  return out;
}

}  // namespace prisma::prismalog
