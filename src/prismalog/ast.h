#ifndef PRISMA_PRISMALOG_AST_H_
#define PRISMA_PRISMALOG_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/value.h"

namespace prisma::prismalog {

/// A term in an atom: a variable (upper-case initial identifier) or a
/// constant (number, 'string', or lower-case atom treated as a string).
struct Term {
  enum class Kind : uint8_t { kVariable, kConstant };
  Kind kind = Kind::kVariable;
  std::string variable;  // kVariable.
  Value constant;        // kConstant.

  bool is_variable() const { return kind == Kind::kVariable; }
  std::string ToString() const;
};

Term Var(std::string name);
Term Const(Value v);

/// predicate(t1, ..., tn).
struct Atom {
  std::string predicate;
  std::vector<Term> args;

  std::string ToString() const;
};

/// One element of a rule body: a (possibly negated) atom, or a comparison
/// between two terms (X > 5, X <> Y).
struct BodyElem {
  enum class Kind : uint8_t { kAtom, kComparison };
  Kind kind = Kind::kAtom;
  bool negated = false;          // kAtom: `not p(...)`.
  Atom atom;                     // kAtom.
  algebra::BinaryOp cmp_op{};    // kComparison.
  Term cmp_lhs;                  // kComparison.
  Term cmp_rhs;                  // kComparison.

  std::string ToString() const;
};

/// head :- body1, ..., bodyn.   A fact is a rule with an empty body and
/// all-constant head arguments.
struct Rule {
  Atom head;
  std::vector<BodyElem> body;

  bool IsFact() const { return body.empty(); }
  std::string ToString() const;
};

/// A PRISMAlog program: definite function-free Horn clauses with
/// stratified negation and comparison built-ins (§2.3), plus one query.
struct Program {
  std::vector<Rule> rules;
  /// `? p(args).` — the goal. Variables become output columns.
  std::optional<Atom> query;

  std::string ToString() const;
};

}  // namespace prisma::prismalog

#endif  // PRISMA_PRISMALOG_AST_H_
