#include "prismalog/parser.h"

#include <cctype>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace prisma::prismalog {
namespace {

using sql::Token;
using sql::TokenKind;

bool IsVariableName(const std::string& name) {
  return !name.empty() &&
         (std::isupper(static_cast<unsigned char>(name[0])) || name[0] == '_');
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Program> ParseProgram() {
    Program program;
    while (Peek().kind != TokenKind::kEnd) {
      if (TrySymbol("?")) {
        TrySymbol("-");  // Accept "?-" as well.
        if (program.query.has_value()) {
          return InvalidArgumentError("multiple queries in program");
        }
        ASSIGN_OR_RETURN(Atom goal, ParseAtom());
        RETURN_IF_ERROR(ExpectSymbol("."));
        program.query = std::move(goal);
        continue;
      }
      ASSIGN_OR_RETURN(Rule rule, ParseRule());
      program.rules.push_back(std::move(rule));
    }
    return program;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool TrySymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const char* s) {
    if (!TrySymbol(s)) {
      return InvalidArgumentError(StrFormat("expected '%s' near offset %zu",
                                            s, Peek().offset));
    }
    return Status::OK();
  }

  StatusOr<Rule> ParseRule() {
    Rule rule;
    ASSIGN_OR_RETURN(rule.head, ParseAtom());
    if (TrySymbol(":-")) {
      do {
        ASSIGN_OR_RETURN(BodyElem elem, ParseBodyElem());
        rule.body.push_back(std::move(elem));
      } while (TrySymbol(","));
    }
    RETURN_IF_ERROR(ExpectSymbol("."));
    if (rule.IsFact()) {
      for (const Term& t : rule.head.args) {
        if (t.is_variable()) {
          return InvalidArgumentError("fact with variable argument: " +
                                      rule.head.ToString());
        }
      }
    }
    return rule;
  }

  StatusOr<BodyElem> ParseBodyElem() {
    BodyElem elem;
    if (Peek().IsKeyword("not")) {
      Advance();
      elem.kind = BodyElem::Kind::kAtom;
      elem.negated = true;
      ASSIGN_OR_RETURN(elem.atom, ParseAtom());
      return elem;
    }
    // Lookahead: predicate '(' means an atom; otherwise a comparison.
    if (Peek().kind == TokenKind::kIdentifier && Peek(1).IsSymbol("(") &&
        !IsVariableName(Peek().text)) {
      elem.kind = BodyElem::Kind::kAtom;
      ASSIGN_OR_RETURN(elem.atom, ParseAtom());
      return elem;
    }
    elem.kind = BodyElem::Kind::kComparison;
    ASSIGN_OR_RETURN(elem.cmp_lhs, ParseTerm());
    struct Cmp {
      const char* sym;
      algebra::BinaryOp op;
    };
    static const Cmp kCmps[] = {
        {"=", algebra::BinaryOp::kEq},  {"<>", algebra::BinaryOp::kNe},
        {"!=", algebra::BinaryOp::kNe}, {"<=", algebra::BinaryOp::kLe},
        {">=", algebra::BinaryOp::kGe}, {"<", algebra::BinaryOp::kLt},
        {">", algebra::BinaryOp::kGt}};
    for (const Cmp& cmp : kCmps) {
      if (TrySymbol(cmp.sym)) {
        elem.cmp_op = cmp.op;
        ASSIGN_OR_RETURN(elem.cmp_rhs, ParseTerm());
        return elem;
      }
    }
    return InvalidArgumentError(StrFormat(
        "expected comparison operator near offset %zu", Peek().offset));
  }

  StatusOr<Atom> ParseAtom() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return InvalidArgumentError(StrFormat(
          "expected predicate name near offset %zu", Peek().offset));
    }
    Atom atom;
    atom.predicate = Advance().text;
    if (IsVariableName(atom.predicate)) {
      return InvalidArgumentError("predicate names must start lower-case: " +
                                  atom.predicate);
    }
    RETURN_IF_ERROR(ExpectSymbol("("));
    if (!TrySymbol(")")) {
      do {
        ASSIGN_OR_RETURN(Term t, ParseTerm());
        atom.args.push_back(std::move(t));
      } while (TrySymbol(","));
      RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    if (atom.args.empty()) {
      return InvalidArgumentError("nullary predicates are not supported: " +
                                  atom.predicate);
    }
    return atom;
  }

  StatusOr<Term> ParseTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIdentifier:
        Advance();
        if (IsVariableName(t.text)) return Var(t.text);
        return Const(Value::String(t.text));  // Prolog-style atom constant.
      case TokenKind::kIntLiteral:
        Advance();
        return Const(Value::Int(t.int_value));
      case TokenKind::kDoubleLiteral:
        Advance();
        return Const(Value::Double(t.double_value));
      case TokenKind::kStringLiteral:
        Advance();
        return Const(Value::String(t.text));
      case TokenKind::kSymbol:
        if (t.text == "-" && Peek(1).kind == TokenKind::kIntLiteral) {
          Advance();
          return Const(Value::Int(-Advance().int_value));
        }
        if (t.text == "-" && Peek(1).kind == TokenKind::kDoubleLiteral) {
          Advance();
          return Const(Value::Double(-Advance().double_value));
        }
        break;
      default:
        break;
    }
    return InvalidArgumentError(
        StrFormat("expected term near offset %zu", t.offset));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Program> ParsePrismalog(const std::string& text) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, sql::Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

}  // namespace prisma::prismalog
