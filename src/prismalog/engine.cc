#include "prismalog/engine.h"

#include <algorithm>
#include <set>
#include <utility>

#include "algebra/plan.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "storage/relation.h"

namespace prisma::prismalog {

using algebra::BinaryOp;
using algebra::Expr;
using algebra::JoinPlan;
using algebra::Plan;
using algebra::ProjectPlan;
using algebra::ScanPlan;
using algebra::SelectPlan;

namespace {

// The \x01 byte is spliced as its own literal: a hex escape greedily
// consumes following hex digits, so "\x01delta:" would parse as \x01de.
constexpr char kIdbPrefix[] = "\x01" "idb:";
constexpr char kDeltaPrefix[] = "\x01" "delta:";

Schema WildcardSchema(size_t arity, const std::string& tag) {
  Schema s;
  for (size_t i = 0; i < arity; ++i) {
    s.AddColumn(StrFormat("%s_c%zu", tag.c_str(), i), DataType::kNull);
  }
  return s;
}

}  // namespace

// ------------------------------------------------------------- Structures

struct Engine::PredicateInfo {
  std::string name;
  size_t arity = 0;
  bool is_edb = false;
  Schema edb_schema;  // EDB only.
  int scc = -1;       // SCC id for stratification (IDB only).

  // IDB evaluation state. `full` and `delta` are scanned by rule plans;
  // `known` deduplicates; `pending` buffers the next delta.
  std::unique_ptr<storage::Relation> full;
  std::unique_ptr<storage::Relation> delta;
  std::vector<Tuple> pending;
  std::set<Tuple> known;
  bool evaluated = false;

  // Lazily cached extension set for negation checks (EDB and IDB).
  bool neg_cache_ready = false;
  std::set<Tuple> neg_cache;
};

struct Engine::RuleInfo {
  const Rule* rule = nullptr;
  std::string head_pred;
  std::vector<int> positive;     // Body indexes of positive atoms.
  std::vector<int> negative;     // Body indexes of negated atoms.
  std::vector<int> comparisons;  // Body indexes of comparisons.
};

// ------------------------------------------------------------ Construction

Engine::Engine(const exec::TableResolver* edb, const sql::CatalogReader* catalog,
               EngineOptions options)
    : edb_(edb), catalog_(catalog), options_(std::move(options)) {}

Engine::~Engine() = default;

// ---------------------------------------------------------------- Analyze

Status Engine::CheckRangeRestriction(const Rule& rule) const {
  std::set<std::string> positive_vars;
  for (const BodyElem& elem : rule.body) {
    if (elem.kind == BodyElem::Kind::kAtom && !elem.negated) {
      for (const Term& t : elem.atom.args) {
        if (t.is_variable()) positive_vars.insert(t.variable);
      }
    }
  }
  auto check = [&](const Term& t, const char* where) -> Status {
    if (t.is_variable() && !positive_vars.contains(t.variable)) {
      return InvalidArgumentError(
          StrFormat("rule %s is not range-restricted: variable %s in %s "
                    "does not occur in a positive body atom",
                    rule.ToString().c_str(), t.variable.c_str(), where));
    }
    return Status::OK();
  };
  for (const Term& t : rule.head.args) RETURN_IF_ERROR(check(t, "the head"));
  for (const BodyElem& elem : rule.body) {
    if (elem.kind == BodyElem::Kind::kComparison) {
      RETURN_IF_ERROR(check(elem.cmp_lhs, "a comparison"));
      RETURN_IF_ERROR(check(elem.cmp_rhs, "a comparison"));
    } else if (elem.negated) {
      for (const Term& t : elem.atom.args) {
        RETURN_IF_ERROR(check(t, "a negated atom"));
      }
    }
  }
  return Status::OK();
}

Status Engine::Analyze(const Program& program) {
  predicates_.clear();
  rules_.clear();
  strata_.clear();
  stats_ = EvalStats();

  auto touch = [&](const Atom& atom) -> Status {
    auto it = predicates_.find(atom.predicate);
    if (it == predicates_.end()) {
      auto info = std::make_unique<PredicateInfo>();
      info->name = atom.predicate;
      info->arity = atom.args.size();
      predicates_[atom.predicate] = std::move(info);
      return Status::OK();
    }
    if (it->second->arity != atom.args.size()) {
      return InvalidArgumentError(
          StrFormat("predicate %s used with arities %zu and %zu",
                    atom.predicate.c_str(), it->second->arity,
                    atom.args.size()));
    }
    return Status::OK();
  };

  std::set<std::string> idb_names;
  for (const Rule& rule : program.rules) {
    RETURN_IF_ERROR(touch(rule.head));
    idb_names.insert(rule.head.predicate);
    for (const BodyElem& elem : rule.body) {
      if (elem.kind == BodyElem::Kind::kAtom) RETURN_IF_ERROR(touch(elem.atom));
    }
    RETURN_IF_ERROR(CheckRangeRestriction(rule));
  }
  if (program.query.has_value()) RETURN_IF_ERROR(touch(*program.query));

  // Classify predicates: rule heads are IDB; everything else must be a
  // base table in the catalog.
  for (auto& [name, info] : predicates_) {
    if (idb_names.contains(name)) {
      auto schema_or = catalog_->GetTableSchema(name);
      if (schema_or.ok()) {
        return InvalidArgumentError("predicate " + name +
                                    " is both a base table and a rule head");
      }
      info->is_edb = false;
      info->full = std::make_unique<storage::Relation>(
          kIdbPrefix + name, WildcardSchema(info->arity, name));
      info->delta = std::make_unique<storage::Relation>(
          kDeltaPrefix + name, WildcardSchema(info->arity, name));
    } else {
      ASSIGN_OR_RETURN(Schema schema, catalog_->GetTableSchema(name));
      if (schema.num_columns() != info->arity) {
        return InvalidArgumentError(
            StrFormat("predicate %s has arity %zu but table has %zu columns",
                      name.c_str(), info->arity, schema.num_columns()));
      }
      info->is_edb = true;
      info->edb_schema = std::move(schema);
    }
  }

  for (const Rule& rule : program.rules) {
    RuleInfo info;
    info.rule = &rule;
    info.head_pred = rule.head.predicate;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const BodyElem& elem = rule.body[i];
      if (elem.kind == BodyElem::Kind::kComparison) {
        info.comparisons.push_back(static_cast<int>(i));
      } else if (elem.negated) {
        info.negative.push_back(static_cast<int>(i));
      } else {
        info.positive.push_back(static_cast<int>(i));
      }
    }
    rules_.push_back(std::move(info));
  }
  return Stratify();
}

// ------------------------------------------------------------ Stratify

Status Engine::Stratify() {
  // Tarjan SCC over IDB predicates; edge head -> body predicate.
  std::vector<std::string> idb;
  for (const auto& [name, info] : predicates_) {
    if (!info->is_edb) idb.push_back(name);
  }
  std::map<std::string, int> index_of;
  for (size_t i = 0; i < idb.size(); ++i) index_of[idb[i]] = static_cast<int>(i);

  // adj[i] = (target, negated).
  std::vector<std::vector<std::pair<int, bool>>> adj(idb.size());
  for (const RuleInfo& rule : rules_) {
    const int from = index_of[rule.head_pred];
    for (const BodyElem& elem : rule.rule->body) {
      if (elem.kind != BodyElem::Kind::kAtom) continue;
      auto it = index_of.find(elem.atom.predicate);
      if (it == index_of.end()) continue;  // EDB.
      adj[from].push_back({it->second, elem.negated});
    }
  }

  const int n = static_cast<int>(idb.size());
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  std::vector<int> scc_of(n, -1);
  int timer = 0;
  int num_sccs = 0;
  std::vector<std::vector<int>> sccs;

  // Iterative Tarjan (explicit stack) to survive deep rule chains.
  struct Frame {
    int v;
    size_t edge = 0;
  };
  for (int root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    std::vector<Frame> frames{{root}};
    while (!frames.empty()) {
      Frame& f = frames.back();
      const int v = f.v;
      if (f.edge == 0) {
        disc[v] = low[v] = timer++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (f.edge < adj[v].size()) {
        const int w = adj[v][f.edge].first;
        ++f.edge;
        if (disc[w] == -1) {
          frames.push_back({w});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], disc[w]);
      }
      if (descended) continue;
      if (low[v] == disc[v]) {
        sccs.emplace_back();
        while (true) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc_of[w] = num_sccs;
          sccs.back().push_back(w);
          if (w == v) break;
        }
        ++num_sccs;
      }
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().v] = std::min(low[frames.back().v], low[v]);
      }
    }
  }

  // Negative edges inside one SCC are unstratifiable.
  for (int v = 0; v < n; ++v) {
    for (const auto& [w, negated] : adj[v]) {
      if (negated && scc_of[v] == scc_of[w]) {
        return InvalidArgumentError(
            "program is not stratifiable: " + idb[v] +
            " depends negatively on " + idb[w] + " within a recursion");
      }
    }
  }

  // Tarjan pops SCCs after everything they reach, i.e. dependencies first.
  strata_.clear();
  for (const auto& scc : sccs) {
    std::vector<std::string> names;
    for (const int v : scc) {
      names.push_back(idb[v]);
      predicates_[idb[v]]->scc = static_cast<int>(strata_.size());
    }
    std::sort(names.begin(), names.end());
    strata_.push_back(std::move(names));
  }
  stats_.num_strata = static_cast<int>(strata_.size());
  return Status::OK();
}

// ---------------------------------------------------------- Rule planning

namespace {

/// Resolver used while executing rule plans: IDB/delta names map to the
/// engine's materialized relations, everything else goes to the EDB.
class RuleResolver : public exec::TableResolver {
 public:
  RuleResolver(const exec::TableResolver* edb,
               const std::map<std::string,
                              std::unique_ptr<Engine::PredicateInfo>>* preds)
      : edb_(edb), preds_(preds) {}

  StatusOr<const storage::Relation*> Resolve(
      const std::string& table) const override;

 private:
  const exec::TableResolver* edb_;
  const std::map<std::string, std::unique_ptr<Engine::PredicateInfo>>* preds_;
};

}  // namespace

StatusOr<const storage::Relation*> RuleResolver::Resolve(
    const std::string& table) const {
  if (table.rfind(kIdbPrefix, 0) == 0) {
    auto it = preds_->find(table.substr(sizeof(kIdbPrefix) - 1));
    if (it == preds_->end()) return NotFoundError("no IDB " + table);
    return it->second->full.get();
  }
  if (table.rfind(kDeltaPrefix, 0) == 0) {
    auto it = preds_->find(table.substr(sizeof(kDeltaPrefix) - 1));
    if (it == preds_->end()) return NotFoundError("no delta " + table);
    return it->second->delta.get();
  }
  return edb_->Resolve(table);
}

StatusOr<std::vector<Tuple>> Engine::EvaluateRule(const RuleInfo& rule,
                                                  int delta_occurrence) {
  ++stats_.rule_evaluations;
  const Rule& r = *rule.rule;

  // Pure-constant rules (facts, possibly guarded by constant comparisons).
  if (rule.positive.empty()) {
    for (const int ci : rule.comparisons) {
      const BodyElem& cmp = r.body[ci];
      const int c = cmp.cmp_lhs.constant.Compare(cmp.cmp_rhs.constant);
      bool pass = false;
      switch (cmp.cmp_op) {
        case BinaryOp::kEq: pass = c == 0; break;
        case BinaryOp::kNe: pass = c != 0; break;
        case BinaryOp::kLt: pass = c < 0; break;
        case BinaryOp::kLe: pass = c <= 0; break;
        case BinaryOp::kGt: pass = c > 0; break;
        case BinaryOp::kGe: pass = c >= 0; break;
        default: return InternalError("bad comparison op");
      }
      if (!pass) return std::vector<Tuple>{};
    }
    std::vector<Value> values;
    for (const Term& t : r.head.args) values.push_back(t.constant);
    return std::vector<Tuple>{Tuple(std::move(values))};
  }

  // Build the body plan: join chain over the positive atoms.
  std::map<std::string, std::pair<size_t, DataType>> bindings;  // var -> col.
  std::unique_ptr<Plan> plan;
  size_t width = 0;

  for (size_t occ = 0; occ < rule.positive.size(); ++occ) {
    const Atom& atom = r.body[rule.positive[occ]].atom;
    const PredicateInfo& info = *predicates_.at(atom.predicate);

    std::string scan_name;
    Schema scan_schema;
    if (info.is_edb) {
      scan_name = atom.predicate;
      scan_schema = info.edb_schema.Qualified(StrFormat("b%zu", occ));
    } else {
      scan_name = (static_cast<int>(occ) == delta_occurrence ? kDeltaPrefix
                                                             : kIdbPrefix) +
                  atom.predicate;
      scan_schema = WildcardSchema(info.arity, StrFormat("b%zu", occ));
    }
    std::unique_ptr<Plan> scan = ScanPlan::Create(scan_name, scan_schema);

    // Per-atom restrictions: constant arguments and repeated variables.
    std::vector<std::unique_ptr<Expr>> local;
    std::map<std::string, size_t> local_vars;
    for (size_t k = 0; k < atom.args.size(); ++k) {
      const Term& t = atom.args[k];
      const DataType ct = scan_schema.column(k).type;
      if (!t.is_variable()) {
        local.push_back(Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(k, ct),
                                     Expr::Literal(t.constant)));
        continue;
      }
      auto [it, inserted] = local_vars.try_emplace(t.variable, k);
      if (!inserted) {
        local.push_back(Expr::Binary(BinaryOp::kEq,
                                     Expr::ColumnIndex(it->second, ct),
                                     Expr::ColumnIndex(k, ct)));
      }
    }
    if (!local.empty()) {
      ASSIGN_OR_RETURN(
          scan, SelectPlan::Create(std::move(scan),
                                   algebra::CombineConjuncts(std::move(local))));
    }

    if (plan == nullptr) {
      plan = std::move(scan);
    } else {
      // Equi-join on variables shared with the accumulated plan.
      std::vector<std::unique_ptr<Expr>> conds;
      for (const auto& [var, col] : local_vars) {
        auto bound = bindings.find(var);
        if (bound == bindings.end()) continue;
        conds.push_back(Expr::Binary(
            BinaryOp::kEq,
            Expr::ColumnIndex(bound->second.first, bound->second.second),
            Expr::ColumnIndex(width + col,
                              scan_schema.column(col).type)));
      }
      ASSIGN_OR_RETURN(
          plan, JoinPlan::Create(std::move(plan), std::move(scan),
                                 algebra::CombineConjuncts(std::move(conds))));
    }
    for (const auto& [var, col] : local_vars) {
      bindings.try_emplace(var,
                           std::make_pair(width + col,
                                          scan_schema.column(col).type));
    }
    width += scan_schema.num_columns();
  }

  // Comparison built-ins over the joined tuple.
  std::vector<std::unique_ptr<Expr>> cmps;
  auto term_expr = [&](const Term& t) -> std::unique_ptr<Expr> {
    if (t.is_variable()) {
      const auto& [col, type] = bindings.at(t.variable);
      return Expr::ColumnIndex(col, type);
    }
    return Expr::Literal(t.constant);
  };
  for (const int ci : rule.comparisons) {
    const BodyElem& cmp = r.body[ci];
    cmps.push_back(Expr::Binary(cmp.cmp_op, term_expr(cmp.cmp_lhs),
                                term_expr(cmp.cmp_rhs)));
  }
  if (!cmps.empty()) {
    ASSIGN_OR_RETURN(plan,
                     SelectPlan::Create(std::move(plan),
                                        algebra::CombineConjuncts(std::move(cmps))));
  }

  // Project the head values followed by each negated atom's key block.
  std::vector<std::unique_ptr<Expr>> proj;
  std::vector<std::string> names;
  for (size_t i = 0; i < r.head.args.size(); ++i) {
    proj.push_back(term_expr(r.head.args[i]));
    names.push_back(StrFormat("h%zu", i));
  }
  const size_t head_width = r.head.args.size();
  for (size_t ni = 0; ni < rule.negative.size(); ++ni) {
    const Atom& atom = r.body[rule.negative[ni]].atom;
    for (size_t k = 0; k < atom.args.size(); ++k) {
      proj.push_back(term_expr(atom.args[k]));
      names.push_back(StrFormat("n%zu_%zu", ni, k));
    }
  }
  ASSIGN_OR_RETURN(plan, ProjectPlan::Create(std::move(plan), std::move(proj),
                                             std::move(names)));

  // Execute. Datalog columns are dynamically typed, so force the
  // interpreter (the compiler specializes on static types).
  RuleResolver resolver(edb_, &predicates_);
  exec::ExecOptions exec_opts;
  exec_opts.expr_mode = exec::ExprMode::kInterpreted;
  exec_opts.costs = options_.costs;
  exec_opts.charge = options_.charge;
  exec::Executor executor(&resolver, exec_opts);
  ASSIGN_OR_RETURN(std::vector<Tuple> joined, executor.Execute(*plan));

  // Anti-join: drop derivations whose negated-atom keys are present.
  std::vector<Tuple> out;
  out.reserve(joined.size());
  for (Tuple& t : joined) {
    bool rejected = false;
    size_t offset = head_width;
    for (const int ni : rule.negative) {
      const Atom& atom = r.body[ni].atom;
      PredicateInfo& neg = *predicates_.at(atom.predicate);
      if (!neg.neg_cache_ready) {
        ASSIGN_OR_RETURN(std::vector<Tuple> ext, ExtensionOf(atom.predicate));
        neg.neg_cache = std::set<Tuple>(ext.begin(), ext.end());
        neg.neg_cache_ready = true;
      }
      std::vector<Value> key;
      for (size_t k = 0; k < atom.args.size(); ++k) {
        key.push_back(t.at(offset + k));
      }
      offset += atom.args.size();
      if (neg.neg_cache.contains(Tuple(std::move(key)))) {
        rejected = true;
        break;
      }
    }
    if (rejected) continue;
    std::vector<Value> head_vals(t.values().begin(),
                                 t.values().begin() + head_width);
    out.push_back(Tuple(std::move(head_vals)));
  }
  return out;
}

// ------------------------------------------------------------- Evaluation

StatusOr<size_t> Engine::Absorb(const std::string& pred,
                                std::vector<Tuple> tuples) {
  PredicateInfo& info = *predicates_.at(pred);
  size_t fresh = 0;
  for (Tuple& t : tuples) {
    if (!info.known.insert(t).second) continue;
    RETURN_IF_ERROR(info.full->Insert(t).status());
    info.pending.push_back(std::move(t));
    ++fresh;
    ++stats_.facts_derived;
  }
  return fresh;
}

StatusOr<bool> Engine::TryTcShortcut(const std::vector<std::string>& stratum) {
  if (!options_.use_tc_operator || stratum.size() != 1) return false;
  const std::string& p = stratum[0];
  if (predicates_.at(p)->arity != 2) return false;

  const RuleInfo* base = nullptr;
  const RuleInfo* step = nullptr;
  for (const RuleInfo& rule : rules_) {
    if (rule.head_pred != p) continue;
    if (!rule.negative.empty() || !rule.comparisons.empty()) return false;
    if (rule.positive.size() == 1 && base == nullptr) {
      base = &rule;
    } else if (rule.positive.size() == 2 && step == nullptr) {
      step = &rule;
    } else {
      return false;
    }
  }
  if (base == nullptr || step == nullptr) return false;

  auto vars_of = [](const Atom& a) -> std::optional<std::pair<std::string, std::string>> {
    if (a.args.size() != 2 || !a.args[0].is_variable() ||
        !a.args[1].is_variable() ||
        a.args[0].variable == a.args[1].variable) {
      return std::nullopt;
    }
    return std::make_pair(a.args[0].variable, a.args[1].variable);
  };

  // Base rule: p(X, Y) :- e(X, Y), e distinct from p.
  const Atom& base_body = base->rule->body[base->positive[0]].atom;
  if (base_body.predicate == p) return false;
  auto hb = vars_of(base->rule->head);
  auto bb = vars_of(base_body);
  if (!hb || !bb || *hb != *bb) return false;
  const std::string& e = base_body.predicate;
  if (predicates_.at(e)->arity != 2) return false;

  // Step rule: p(X, Z) :- e(X, Y), p(Y, Z)  or  p(X, Y), e(Y, Z).
  const Atom& s0 = step->rule->body[step->positive[0]].atom;
  const Atom& s1 = step->rule->body[step->positive[1]].atom;
  auto hs = vars_of(step->rule->head);
  auto v0 = vars_of(s0);
  auto v1 = vars_of(s1);
  if (!hs || !v0 || !v1) return false;
  const bool left_form = s0.predicate == e && s1.predicate == p &&
                         v0->second == v1->first && hs->first == v0->first &&
                         hs->second == v1->second;
  const bool right_form = s0.predicate == p && s1.predicate == e &&
                          v0->second == v1->first && hs->first == v0->first &&
                          hs->second == v1->second;
  if (!left_form && !right_form) return false;

  // p is exactly the transitive closure of e: use the TC operator.
  ASSIGN_OR_RETURN(std::vector<Tuple> edges, ExtensionOf(e));
  exec::TcStats tc_stats;
  ASSIGN_OR_RETURN(std::vector<Tuple> closure,
                   exec::TransitiveClosure(edges, options_.tc_algorithm,
                                           &tc_stats));
  if (options_.charge) {
    options_.charge(static_cast<sim::SimTime>(tc_stats.pairs_derived) *
                    options_.costs.hash_ns);
  }
  RETURN_IF_ERROR(Absorb(p, std::move(closure)).status());
  predicates_.at(p)->pending.clear();
  stats_.iterations += tc_stats.iterations;
  stats_.used_tc_operator = true;
  return true;
}

Status Engine::EvaluateStratum(const std::vector<std::string>& stratum) {
  std::set<std::string> in_stratum(stratum.begin(), stratum.end());

  ASSIGN_OR_RETURN(bool done, TryTcShortcut(stratum));
  if (done) {
    for (const std::string& p : stratum) predicates_.at(p)->evaluated = true;
    return Status::OK();
  }

  // Partition this stratum's rules into non-recursive and recursive.
  std::vector<const RuleInfo*> non_recursive;
  std::vector<const RuleInfo*> recursive;
  for (const RuleInfo& rule : rules_) {
    if (!in_stratum.contains(rule.head_pred)) continue;
    bool is_recursive = false;
    for (const int pi : rule.positive) {
      if (in_stratum.contains(rule.rule->body[pi].atom.predicate)) {
        is_recursive = true;
        break;
      }
    }
    (is_recursive ? recursive : non_recursive).push_back(&rule);
  }

  // Seed with the non-recursive rules.
  for (const RuleInfo* rule : non_recursive) {
    ASSIGN_OR_RETURN(std::vector<Tuple> derived, EvaluateRule(*rule, -1));
    RETURN_IF_ERROR(Absorb(rule->head_pred, std::move(derived)).status());
  }

  // Seminaive iteration: only new facts feed the next round.
  auto flush_deltas = [&]() -> StatusOr<bool> {
    bool any = false;
    for (const std::string& p : stratum) {
      PredicateInfo& info = *predicates_.at(p);
      info.delta->Clear();
      for (Tuple& t : info.pending) {
        RETURN_IF_ERROR(info.delta->Insert(std::move(t)).status());
        any = true;
      }
      info.pending.clear();
    }
    return any;
  };

  ASSIGN_OR_RETURN(bool have_delta, flush_deltas());
  while (have_delta) {
    ++stats_.iterations;
    if (stats_.iterations > options_.max_iterations) {
      return ResourceExhaustedError("PRISMAlog iteration limit exceeded");
    }
    for (const RuleInfo* rule : recursive) {
      for (size_t occ = 0; occ < rule->positive.size(); ++occ) {
        const std::string& body_pred =
            rule->rule->body[rule->positive[occ]].atom.predicate;
        if (!in_stratum.contains(body_pred)) continue;
        ASSIGN_OR_RETURN(std::vector<Tuple> derived,
                         EvaluateRule(*rule, static_cast<int>(occ)));
        RETURN_IF_ERROR(Absorb(rule->head_pred, std::move(derived)).status());
      }
    }
    ASSIGN_OR_RETURN(have_delta, flush_deltas());
  }

  for (const std::string& p : stratum) predicates_.at(p)->evaluated = true;
  return Status::OK();
}

StatusOr<std::vector<Tuple>> Engine::ExtensionOf(const std::string& predicate) {
  auto it = predicates_.find(predicate);
  if (it == predicates_.end()) {
    return NotFoundError("unknown predicate " + predicate);
  }
  if (it->second->is_edb) {
    ASSIGN_OR_RETURN(const storage::Relation* rel, edb_->Resolve(predicate));
    if (options_.charge) {
      options_.charge(static_cast<sim::SimTime>(rel->num_tuples()) *
                      options_.costs.tuple_ns);
    }
    return rel->AllTuples();
  }
  return it->second->full->AllTuples();
}

StatusOr<QueryResult> Engine::Run(const Program& program) {
  if (!program.query.has_value()) {
    return InvalidArgumentError("program has no query");
  }
  RETURN_IF_ERROR(Analyze(program));
  for (const auto& stratum : strata_) {
    RETURN_IF_ERROR(EvaluateStratum(stratum));
  }

  const Atom& goal = *program.query;
  ASSIGN_OR_RETURN(std::vector<Tuple> extension, ExtensionOf(goal.predicate));
  return AnswerGoal(goal, extension);
}

StatusOr<std::vector<Tuple>> Engine::EvaluatePredicate(
    const Program& program, const std::string& predicate) {
  RETURN_IF_ERROR(Analyze(program));
  for (const auto& stratum : strata_) {
    RETURN_IF_ERROR(EvaluateStratum(stratum));
  }
  return ExtensionOf(predicate);
}

// ------------------------------------------------------- Shared helpers

namespace {

/// The two distinct variables of a binary all-variable atom, or nullopt.
std::optional<std::pair<std::string, std::string>> VarsOf(const Atom& a) {
  if (a.args.size() != 2 || !a.args[0].is_variable() ||
      !a.args[1].is_variable() ||
      a.args[0].variable == a.args[1].variable) {
    return std::nullopt;
  }
  return std::make_pair(a.args[0].variable, a.args[1].variable);
}

/// `rule` as a plain positive-conjunction body, or nullopt if it uses
/// negation or comparisons (which disqualify the TC pattern).
std::optional<std::vector<const Atom*>> PositiveBody(const Rule& rule) {
  std::vector<const Atom*> atoms;
  for (const BodyElem& elem : rule.body) {
    if (elem.kind != BodyElem::Kind::kAtom || elem.negated) {
      return std::nullopt;
    }
    atoms.push_back(&elem.atom);
  }
  return atoms;
}

}  // namespace

std::optional<LinearTcPattern> DetectLinearTc(const Program& program) {
  // Exactly the two-rule shape: any extra rule or in-program fact could
  // change p's extension, so the conservative match refuses it.
  if (program.rules.size() != 2) return std::nullopt;

  const Rule* base = nullptr;
  const Rule* step = nullptr;
  for (const Rule& rule : program.rules) {
    if (rule.IsFact()) return std::nullopt;
    auto body = PositiveBody(rule);
    if (!body) return std::nullopt;
    if (body->size() == 1 && base == nullptr) {
      base = &rule;
    } else if (body->size() == 2 && step == nullptr) {
      step = &rule;
    } else {
      return std::nullopt;
    }
  }
  if (base == nullptr || step == nullptr) return std::nullopt;
  if (base->head.predicate != step->head.predicate) return std::nullopt;
  const std::string& p = base->head.predicate;

  // Base rule: p(X, Y) :- e(X, Y), e distinct from p.
  const Atom& base_body = base->body[0].atom;
  if (base_body.predicate == p) return std::nullopt;
  auto hb = VarsOf(base->head);
  auto bb = VarsOf(base_body);
  if (!hb || !bb || *hb != *bb) return std::nullopt;
  const std::string& e = base_body.predicate;

  // Step rule: p(X, Z) :- e(X, Y), p(Y, Z)  or  p(X, Y), e(Y, Z).
  const Atom& s0 = step->body[0].atom;
  const Atom& s1 = step->body[1].atom;
  auto hs = VarsOf(step->head);
  auto v0 = VarsOf(s0);
  auto v1 = VarsOf(s1);
  if (!hs || !v0 || !v1) return std::nullopt;
  const bool chained = v0->second == v1->first && hs->first == v0->first &&
                       hs->second == v1->second;
  const bool left_form = s0.predicate == e && s1.predicate == p && chained;
  const bool right_form = s0.predicate == p && s1.predicate == e && chained;
  if (!left_form && !right_form) return std::nullopt;

  return LinearTcPattern{p, e};
}

QueryResult AnswerGoal(const Atom& goal, const std::vector<Tuple>& extension) {
  // Filter by constant/repeated-variable arguments, project variables.
  std::vector<std::string> var_names;
  std::map<std::string, size_t> first_pos;
  for (size_t i = 0; i < goal.args.size(); ++i) {
    if (goal.args[i].is_variable() &&
        first_pos.try_emplace(goal.args[i].variable, i).second) {
      var_names.push_back(goal.args[i].variable);
    }
  }

  std::set<Tuple> distinct;
  for (const Tuple& t : extension) {
    bool match = true;
    for (size_t i = 0; i < goal.args.size(); ++i) {
      const Term& arg = goal.args[i];
      if (!arg.is_variable()) {
        if (t.at(i).Compare(arg.constant) != 0) {
          match = false;
          break;
        }
      } else if (first_pos[arg.variable] != i &&
                 t.at(i).Compare(t.at(first_pos[arg.variable])) != 0) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    std::vector<Value> row;
    for (const std::string& v : var_names) row.push_back(t.at(first_pos[v]));
    distinct.insert(Tuple(std::move(row)));
  }

  QueryResult result;
  if (var_names.empty()) {
    result.schema.AddColumn("sat", DataType::kBool);
    result.tuples.push_back(Tuple({Value::Bool(!distinct.empty())}));
    return result;
  }
  for (const std::string& v : var_names) {
    result.schema.AddColumn(v, DataType::kNull);
  }
  result.tuples.assign(distinct.begin(), distinct.end());
  return result;
}

}  // namespace prisma::prismalog
