#ifndef PRISMA_PRISMALOG_PARSER_H_
#define PRISMA_PRISMALOG_PARSER_H_

#include <string>

#include "common/status.h"
#include "prismalog/ast.h"

namespace prisma::prismalog {

/// Parses a PRISMAlog program. Syntax (Prolog-like, §2.3):
///
///   ancestor(X, Y) :- parent(X, Y).
///   ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
///   rich(N) :- account(N, B), B > 1000.
///   senior(X) :- person(X, A), not junior(X), A >= 65.
///   ? ancestor(X, mary).
///
/// Identifiers with an upper-case (or '_') initial are variables; others
/// are string constants ("atoms"), as are quoted strings; numbers are
/// INT/DOUBLE constants. Comparisons use =, <>, <, <=, >, >=. `not` in
/// front of a body atom negates it. The query line starts with `?` or
/// `?-`. At most one query per program.
StatusOr<Program> ParsePrismalog(const std::string& text);

}  // namespace prisma::prismalog

#endif  // PRISMA_PRISMALOG_PARSER_H_
