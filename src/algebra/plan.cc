#include "algebra/plan.h"

#include <utility>

#include "common/logging.h"
#include "common/str_util.h"

namespace prisma::algebra {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kValues:
      return "Values";
    case PlanKind::kSelect:
      return "Select";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kUnion:
      return "Union";
    case PlanKind::kDifference:
      return "Difference";
    case PlanKind::kDistinct:
      return "Distinct";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kTransitiveClosure:
      return "TransitiveClosure";
    case PlanKind::kExchange:
      return "Exchange";
    case PlanKind::kFixpoint:
      return "Fixpoint";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

namespace {

/// Checks column-type compatibility for set operators.
Status CheckSameShape(const Schema& a, const Schema& b, const char* op) {
  if (a.num_columns() != b.num_columns()) {
    return InvalidArgumentError(StrFormat("%s inputs have %zu vs %zu columns",
                                          op, a.num_columns(),
                                          b.num_columns()));
  }
  for (size_t i = 0; i < a.num_columns(); ++i) {
    const DataType lt = a.column(i).type;
    const DataType rt = b.column(i).type;
    if (lt != rt && lt != DataType::kNull && rt != DataType::kNull) {
      return InvalidArgumentError(
          StrFormat("%s column %zu types differ: %s vs %s", op, i,
                    DataTypeName(lt), DataTypeName(rt)));
    }
  }
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------------------- Plan

std::unique_ptr<Plan> Plan::TakeChild(size_t i) {
  PRISMA_CHECK(i < children_.size());
  return std::move(children_[i]);
}

void Plan::SetChild(size_t i, std::unique_ptr<Plan> child) {
  PRISMA_CHECK(i < children_.size());
  children_[i] = std::move(child);
}

std::string Plan::ToString() const {
  std::string out;
  AppendTo(&out, 0);
  return out;
}

void Plan::AppendTo(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(SelfString());
  out->append("\n");
  for (const auto& c : children_) c->AppendTo(out, indent + 1);
}

size_t Plan::TreeSize() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->TreeSize();
  return n;
}

// ------------------------------------------------------------------- Scan

std::unique_ptr<ScanPlan> ScanPlan::Create(std::string table, Schema schema) {
  return std::unique_ptr<ScanPlan>(
      new ScanPlan(std::move(table), std::move(schema)));
}

std::unique_ptr<Plan> ScanPlan::Clone() const {
  return Create(table_, schema_);
}

std::string ScanPlan::SelfString() const {
  return "Scan " + table_ + " " + schema_.ToString();
}

// ----------------------------------------------------------------- Values

StatusOr<std::unique_ptr<ValuesPlan>> ValuesPlan::Create(
    Schema schema, std::vector<Tuple> rows) {
  for (Tuple& row : rows) {
    if (row.size() != schema.num_columns()) {
      return InvalidArgumentError("VALUES row arity mismatch");
    }
    for (size_t i = 0; i < row.size(); ++i) {
      ASSIGN_OR_RETURN(Value v,
                       CoerceValue(row.at(i), schema.column(i).type));
      row.at(i) = std::move(v);
    }
  }
  return std::unique_ptr<ValuesPlan>(
      new ValuesPlan(std::move(schema), std::move(rows)));
}

std::unique_ptr<Plan> ValuesPlan::Clone() const {
  return std::unique_ptr<ValuesPlan>(new ValuesPlan(schema_, rows_));
}

std::string ValuesPlan::SelfString() const {
  return StrFormat("Values [%zu rows]", rows_.size());
}

// ----------------------------------------------------------------- Select

SelectPlan::SelectPlan(std::unique_ptr<Plan> child,
                       std::unique_ptr<Expr> predicate)
    : Plan(PlanKind::kSelect, child->schema()),
      predicate_(std::move(predicate)) {
  children_.push_back(std::move(child));
}

StatusOr<std::unique_ptr<SelectPlan>> SelectPlan::Create(
    std::unique_ptr<Plan> child, std::unique_ptr<Expr> predicate) {
  RETURN_IF_ERROR(predicate->Bind(child->schema()));
  if (predicate->result_type() != DataType::kBool &&
      predicate->result_type() != DataType::kNull) {
    return InvalidArgumentError("selection predicate must be BOOL, got " +
                                std::string(DataTypeName(predicate->result_type())));
  }
  return std::unique_ptr<SelectPlan>(
      new SelectPlan(std::move(child), std::move(predicate)));
}

std::unique_ptr<Plan> SelectPlan::Clone() const {
  return std::unique_ptr<SelectPlan>(
      new SelectPlan(children_[0]->Clone(), predicate_->Clone()));
}

std::string SelectPlan::SelfString() const {
  return "Select " + predicate_->ToString();
}

// ---------------------------------------------------------------- Project

ProjectPlan::ProjectPlan(std::unique_ptr<Plan> child,
                         std::vector<std::unique_ptr<Expr>> exprs,
                         Schema schema)
    : Plan(PlanKind::kProject, std::move(schema)), exprs_(std::move(exprs)) {
  children_.push_back(std::move(child));
}

StatusOr<std::unique_ptr<ProjectPlan>> ProjectPlan::Create(
    std::unique_ptr<Plan> child, std::vector<std::unique_ptr<Expr>> exprs,
    std::vector<std::string> names) {
  if (exprs.size() != names.size()) {
    return InvalidArgumentError("projection exprs/names size mismatch");
  }
  if (exprs.empty()) {
    return InvalidArgumentError("empty projection");
  }
  Schema schema;
  for (size_t i = 0; i < exprs.size(); ++i) {
    RETURN_IF_ERROR(exprs[i]->Bind(child->schema()));
    schema.AddColumn(names[i], exprs[i]->result_type());
  }
  return std::unique_ptr<ProjectPlan>(new ProjectPlan(
      std::move(child), std::move(exprs), std::move(schema)));
}

std::unique_ptr<Plan> ProjectPlan::Clone() const {
  std::vector<std::unique_ptr<Expr>> exprs;
  for (const auto& e : exprs_) exprs.push_back(e->Clone());
  return std::unique_ptr<ProjectPlan>(
      new ProjectPlan(children_[0]->Clone(), std::move(exprs), schema_));
}

std::string ProjectPlan::SelfString() const {
  std::vector<std::string> parts;
  for (size_t i = 0; i < exprs_.size(); ++i) {
    parts.push_back(exprs_[i]->ToString() + " AS " + schema_.column(i).name);
  }
  return "Project " + Join(parts, ", ");
}

// ------------------------------------------------------------------- Join

JoinPlan::JoinPlan(std::unique_ptr<Plan> left, std::unique_ptr<Plan> right,
                   std::unique_ptr<Expr> predicate)
    : Plan(PlanKind::kJoin, left->schema().Concat(right->schema())),
      predicate_(std::move(predicate)) {
  children_.push_back(std::move(left));
  children_.push_back(std::move(right));
}

StatusOr<std::unique_ptr<JoinPlan>> JoinPlan::Create(
    std::unique_ptr<Plan> left, std::unique_ptr<Plan> right,
    std::unique_ptr<Expr> predicate) {
  if (predicate != nullptr) {
    const Schema joined = left->schema().Concat(right->schema());
    RETURN_IF_ERROR(predicate->Bind(joined));
    if (predicate->result_type() != DataType::kBool &&
        predicate->result_type() != DataType::kNull) {
      return InvalidArgumentError("join predicate must be BOOL");
    }
  }
  return std::unique_ptr<JoinPlan>(
      new JoinPlan(std::move(left), std::move(right), std::move(predicate)));
}

std::unique_ptr<Plan> JoinPlan::Clone() const {
  return std::unique_ptr<JoinPlan>(
      new JoinPlan(children_[0]->Clone(), children_[1]->Clone(),
                   predicate_ ? predicate_->Clone() : nullptr));
}

std::vector<std::pair<size_t, size_t>> JoinPlan::EquiKeys() const {
  std::vector<std::pair<size_t, size_t>> keys;
  if (predicate_ == nullptr) return keys;
  const size_t left_width = children_[0]->schema().num_columns();
  for (const auto& conjunct : SplitConjuncts(*predicate_)) {
    if (conjunct->kind() != ExprKind::kBinary ||
        conjunct->binary_op() != BinaryOp::kEq) {
      continue;
    }
    const Expr* l = conjunct->left();
    const Expr* r = conjunct->right();
    if (l->kind() != ExprKind::kColumnRef || r->kind() != ExprKind::kColumnRef) {
      continue;
    }
    const size_t li = l->column_index();
    const size_t ri = r->column_index();
    if (li < left_width && ri >= left_width) {
      keys.push_back({li, ri - left_width});
    } else if (ri < left_width && li >= left_width) {
      keys.push_back({ri, li - left_width});
    }
  }
  return keys;
}

std::string JoinPlan::SelfString() const {
  return "Join " + (predicate_ ? predicate_->ToString() : std::string("TRUE"));
}

// ------------------------------------------------------------------ Union

UnionPlan::UnionPlan(std::unique_ptr<Plan> left, std::unique_ptr<Plan> right,
                     Schema schema)
    : Plan(PlanKind::kUnion, std::move(schema)) {
  children_.push_back(std::move(left));
  children_.push_back(std::move(right));
}

StatusOr<std::unique_ptr<UnionPlan>> UnionPlan::Create(
    std::unique_ptr<Plan> left, std::unique_ptr<Plan> right) {
  RETURN_IF_ERROR(CheckSameShape(left->schema(), right->schema(), "UNION"));
  Schema schema = left->schema();
  return std::unique_ptr<UnionPlan>(
      new UnionPlan(std::move(left), std::move(right), std::move(schema)));
}

std::unique_ptr<Plan> UnionPlan::Clone() const {
  return std::unique_ptr<UnionPlan>(
      new UnionPlan(children_[0]->Clone(), children_[1]->Clone(), schema_));
}

std::string UnionPlan::SelfString() const { return "Union"; }

// ------------------------------------------------------------- Difference

DifferencePlan::DifferencePlan(std::unique_ptr<Plan> left,
                               std::unique_ptr<Plan> right, Schema schema)
    : Plan(PlanKind::kDifference, std::move(schema)) {
  children_.push_back(std::move(left));
  children_.push_back(std::move(right));
}

StatusOr<std::unique_ptr<DifferencePlan>> DifferencePlan::Create(
    std::unique_ptr<Plan> left, std::unique_ptr<Plan> right) {
  RETURN_IF_ERROR(CheckSameShape(left->schema(), right->schema(), "EXCEPT"));
  Schema schema = left->schema();
  return std::unique_ptr<DifferencePlan>(new DifferencePlan(
      std::move(left), std::move(right), std::move(schema)));
}

std::unique_ptr<Plan> DifferencePlan::Clone() const {
  return std::unique_ptr<DifferencePlan>(new DifferencePlan(
      children_[0]->Clone(), children_[1]->Clone(), schema_));
}

std::string DifferencePlan::SelfString() const { return "Difference"; }

// --------------------------------------------------------------- Distinct

DistinctPlan::DistinctPlan(std::unique_ptr<Plan> child)
    : Plan(PlanKind::kDistinct, child->schema()) {
  children_.push_back(std::move(child));
}

std::unique_ptr<DistinctPlan> DistinctPlan::Create(
    std::unique_ptr<Plan> child) {
  return std::unique_ptr<DistinctPlan>(new DistinctPlan(std::move(child)));
}

std::unique_ptr<Plan> DistinctPlan::Clone() const {
  return std::unique_ptr<DistinctPlan>(
      new DistinctPlan(children_[0]->Clone()));
}

std::string DistinctPlan::SelfString() const { return "Distinct"; }

// -------------------------------------------------------------- Aggregate

AggregatePlan::AggregatePlan(std::unique_ptr<Plan> child,
                             std::vector<std::unique_ptr<Expr>> group_by,
                             std::vector<AggSpec> aggs, Schema schema)
    : Plan(PlanKind::kAggregate, std::move(schema)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  children_.push_back(std::move(child));
}

StatusOr<std::unique_ptr<AggregatePlan>> AggregatePlan::Create(
    std::unique_ptr<Plan> child, std::vector<std::unique_ptr<Expr>> group_by,
    std::vector<std::string> group_names, std::vector<AggSpec> aggs) {
  if (group_by.size() != group_names.size()) {
    return InvalidArgumentError("group-by exprs/names size mismatch");
  }
  Schema schema;
  for (size_t i = 0; i < group_by.size(); ++i) {
    RETURN_IF_ERROR(group_by[i]->Bind(child->schema()));
    schema.AddColumn(group_names[i], group_by[i]->result_type());
  }
  for (AggSpec& agg : aggs) {
    DataType out_type = DataType::kInt64;
    if (agg.arg != nullptr) {
      RETURN_IF_ERROR(agg.arg->Bind(child->schema()));
      const DataType at = agg.arg->result_type();
      switch (agg.func) {
        case AggFunc::kCount:
          out_type = DataType::kInt64;
          break;
        case AggFunc::kSum:
          if (at != DataType::kInt64 && at != DataType::kDouble &&
              at != DataType::kNull) {
            return InvalidArgumentError("SUM requires a numeric argument");
          }
          out_type = at;
          break;
        case AggFunc::kAvg:
          if (at != DataType::kInt64 && at != DataType::kDouble &&
              at != DataType::kNull) {
            return InvalidArgumentError("AVG requires a numeric argument");
          }
          out_type = DataType::kDouble;
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          out_type = at;
          break;
      }
    } else {
      if (agg.func != AggFunc::kCount) {
        return InvalidArgumentError(
            std::string(AggFuncName(agg.func)) + " requires an argument");
      }
      out_type = DataType::kInt64;
    }
    schema.AddColumn(agg.output_name, out_type);
  }
  if (schema.num_columns() == 0) {
    return InvalidArgumentError("aggregate with no outputs");
  }
  return std::unique_ptr<AggregatePlan>(
      new AggregatePlan(std::move(child), std::move(group_by),
                        std::move(aggs), std::move(schema)));
}

std::unique_ptr<Plan> AggregatePlan::Clone() const {
  std::vector<std::unique_ptr<Expr>> group_by;
  for (const auto& g : group_by_) group_by.push_back(g->Clone());
  std::vector<AggSpec> aggs;
  for (const auto& a : aggs_) aggs.push_back(a.Clone());
  return std::unique_ptr<AggregatePlan>(new AggregatePlan(
      children_[0]->Clone(), std::move(group_by), std::move(aggs), schema_));
}

std::string AggregatePlan::SelfString() const {
  std::vector<std::string> parts;
  for (const auto& g : group_by_) parts.push_back(g->ToString());
  for (const auto& a : aggs_) {
    parts.push_back(std::string(AggFuncName(a.func)) + "(" +
                    (a.arg ? a.arg->ToString() : "*") + ")");
  }
  return "Aggregate " + Join(parts, ", ");
}

// ------------------------------------------------------------------- Sort

SortPlan::SortPlan(std::unique_ptr<Plan> child, std::vector<SortKey> keys)
    : Plan(PlanKind::kSort, child->schema()), keys_(std::move(keys)) {
  children_.push_back(std::move(child));
}

StatusOr<std::unique_ptr<SortPlan>> SortPlan::Create(
    std::unique_ptr<Plan> child, std::vector<SortKey> keys) {
  if (keys.empty()) return InvalidArgumentError("sort with no keys");
  for (SortKey& k : keys) {
    RETURN_IF_ERROR(k.expr->Bind(child->schema()));
  }
  return std::unique_ptr<SortPlan>(
      new SortPlan(std::move(child), std::move(keys)));
}

std::unique_ptr<Plan> SortPlan::Clone() const {
  std::vector<SortKey> keys;
  for (const auto& k : keys_) keys.push_back(k.Clone());
  return std::unique_ptr<SortPlan>(
      new SortPlan(children_[0]->Clone(), std::move(keys)));
}

std::string SortPlan::SelfString() const {
  std::vector<std::string> parts;
  for (const auto& k : keys_) {
    parts.push_back(k.expr->ToString() + (k.descending ? " DESC" : " ASC"));
  }
  return "Sort " + Join(parts, ", ");
}

// ------------------------------------------------------------------ Limit

LimitPlan::LimitPlan(std::unique_ptr<Plan> child, uint64_t limit)
    : Plan(PlanKind::kLimit, child->schema()), limit_(limit) {
  children_.push_back(std::move(child));
}

std::unique_ptr<LimitPlan> LimitPlan::Create(std::unique_ptr<Plan> child,
                                             uint64_t limit) {
  return std::unique_ptr<LimitPlan>(new LimitPlan(std::move(child), limit));
}

std::unique_ptr<Plan> LimitPlan::Clone() const {
  return std::unique_ptr<LimitPlan>(
      new LimitPlan(children_[0]->Clone(), limit_));
}

std::string LimitPlan::SelfString() const {
  return StrFormat("Limit %llu", static_cast<unsigned long long>(limit_));
}

// ------------------------------------------------------- TransitiveClosure

TransitiveClosurePlan::TransitiveClosurePlan(std::unique_ptr<Plan> child)
    : Plan(PlanKind::kTransitiveClosure, child->schema()) {
  children_.push_back(std::move(child));
}

StatusOr<std::unique_ptr<TransitiveClosurePlan>> TransitiveClosurePlan::Create(
    std::unique_ptr<Plan> child) {
  const Schema& s = child->schema();
  if (s.num_columns() != 2) {
    return InvalidArgumentError(
        "transitive closure requires a binary relation, got " + s.ToString());
  }
  const DataType a = s.column(0).type;
  const DataType b = s.column(1).type;
  if (a != b && a != DataType::kNull && b != DataType::kNull) {
    return InvalidArgumentError(
        "transitive closure columns must have one type, got " + s.ToString());
  }
  return std::unique_ptr<TransitiveClosurePlan>(
      new TransitiveClosurePlan(std::move(child)));
}

std::unique_ptr<Plan> TransitiveClosurePlan::Clone() const {
  return std::unique_ptr<TransitiveClosurePlan>(
      new TransitiveClosurePlan(children_[0]->Clone()));
}

std::string TransitiveClosurePlan::SelfString() const {
  return "TransitiveClosure";
}

// --------------------------------------------------------------- Exchange

ExchangePlan::ExchangePlan(std::unique_ptr<Plan> child, Mode mode,
                           std::vector<size_t> keys)
    : Plan(PlanKind::kExchange, child->schema()),
      mode_(mode),
      keys_(std::move(keys)) {
  children_.push_back(std::move(child));
}

std::unique_ptr<ExchangePlan> ExchangePlan::Create(std::unique_ptr<Plan> child,
                                                   Mode mode,
                                                   std::vector<size_t> keys) {
  return std::unique_ptr<ExchangePlan>(
      new ExchangePlan(std::move(child), mode, std::move(keys)));
}

std::unique_ptr<Plan> ExchangePlan::Clone() const {
  return std::unique_ptr<ExchangePlan>(
      new ExchangePlan(children_[0]->Clone(), mode_, keys_));
}

std::string ExchangePlan::SelfString() const {
  if (mode_ == Mode::kBroadcast) return "Exchange broadcast";
  std::string out =
      mode_ == Mode::kRange ? "Exchange range(" : "Exchange hash(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema_.column(keys_[i]).name;
  }
  out += ")";
  return out;
}

// --------------------------------------------------------------- Fixpoint

FixpointPlan::FixpointPlan(std::unique_ptr<Plan> child, std::string strategy,
                           size_t partitions)
    : Plan(PlanKind::kFixpoint, child->schema()),
      strategy_(std::move(strategy)),
      partitions_(partitions) {
  children_.push_back(std::move(child));
}

StatusOr<std::unique_ptr<FixpointPlan>> FixpointPlan::Create(
    std::unique_ptr<Plan> child, std::string strategy, size_t partitions) {
  const Schema& s = child->schema();
  if (s.num_columns() != 2) {
    return InvalidArgumentError(
        "fixpoint requires a binary relation, got " + s.ToString());
  }
  if (partitions == 0) {
    return InvalidArgumentError("fixpoint requires at least one partition");
  }
  return std::unique_ptr<FixpointPlan>(
      new FixpointPlan(std::move(child), std::move(strategy), partitions));
}

std::unique_ptr<Plan> FixpointPlan::Clone() const {
  return std::unique_ptr<FixpointPlan>(
      new FixpointPlan(children_[0]->Clone(), strategy_, partitions_));
}

std::string FixpointPlan::SelfString() const {
  return StrFormat(
      "Fixpoint %s over %zu partition(s), rounds until all deltas empty",
      strategy_.c_str(), partitions_);
}

}  // namespace prisma::algebra
