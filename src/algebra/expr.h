#ifndef PRISMA_ALGEBRA_EXPR_H_
#define PRISMA_ALGEBRA_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace prisma::algebra {

enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
};

enum class UnaryOp : uint8_t {
  kNeg,     // -x (numeric)
  kNot,     // NOT b
  kIsNull,  // x IS NULL
};

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,  // Integers only.
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* UnaryOpName(UnaryOp op);
const char* BinaryOpName(BinaryOp op);

/// A scalar expression tree over the columns of one input schema.
///
/// Expressions are built unbound (column references hold only names), then
/// bound against a Schema, which resolves column indexes and computes
/// result types bottom-up. Only bound expressions can be evaluated,
/// compiled, or costed.
///
/// NULL semantics are SQL-ish three-valued logic folded to two-valued
/// results: any arithmetic or comparison with a NULL operand yields NULL,
/// AND/OR use Kleene logic, and predicates treat NULL as false.
class Expr {
 public:
  static std::unique_ptr<Expr> Literal(Value value);
  static std::unique_ptr<Expr> ColumnRef(std::string name);
  /// Column reference already resolved to `index` in the input schema.
  static std::unique_ptr<Expr> ColumnIndex(size_t index, DataType type);
  static std::unique_ptr<Expr> Unary(UnaryOp op, std::unique_ptr<Expr> operand);
  static std::unique_ptr<Expr> Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                      std::unique_ptr<Expr> rhs);

  ExprKind kind() const { return kind_; }
  /// Result type; meaningful only after binding (kNull before).
  DataType result_type() const { return result_type_; }
  bool bound() const { return bound_; }

  // Literal accessors.
  const Value& literal() const { return literal_; }

  // Column accessors.
  const std::string& column_name() const { return column_name_; }
  size_t column_index() const { return column_index_; }

  // Operator accessors.
  UnaryOp unary_op() const { return unary_op_; }
  BinaryOp binary_op() const { return binary_op_; }
  const Expr* left() const { return children_[0].get(); }
  const Expr* right() const { return children_[1].get(); }
  const Expr* operand() const { return children_[0].get(); }

  /// Resolves column names against `schema` and type-checks bottom-up.
  Status Bind(const Schema& schema);

  /// Deep copy (preserving binding state).
  std::unique_ptr<Expr> Clone() const;

  /// Structural equality (used for common-subexpression detection).
  bool Equals(const Expr& other) const;

  /// Renders as e.g. "(salary > 100) AND (dept = 'sales')".
  std::string ToString() const;

  /// Number of nodes in the tree (cost metric).
  size_t TreeSize() const;

  /// Appends the input-schema indexes of all referenced columns (bound
  /// expressions only); duplicates preserved.
  void CollectColumnIndexes(std::vector<size_t>* out) const;

  /// True if the tree contains no column references (constant foldable).
  bool IsConstant() const;

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  DataType result_type_ = DataType::kNull;
  bool bound_ = false;

  Value literal_;                 // kLiteral.
  std::string column_name_;       // kColumnRef.
  size_t column_index_ = SIZE_MAX;
  UnaryOp unary_op_ = UnaryOp::kNeg;
  BinaryOp binary_op_ = BinaryOp::kAdd;
  std::vector<std::unique_ptr<Expr>> children_;
};

/// Convenience builders for tests and examples.
std::unique_ptr<Expr> Col(std::string name);
std::unique_ptr<Expr> Lit(int64_t v);
std::unique_ptr<Expr> Lit(double v);
std::unique_ptr<Expr> Lit(std::string v);
std::unique_ptr<Expr> Eq(std::unique_ptr<Expr> l, std::unique_ptr<Expr> r);
std::unique_ptr<Expr> And(std::unique_ptr<Expr> l, std::unique_ptr<Expr> r);

/// Splits a predicate into its top-level AND conjuncts (cloned).
std::vector<std::unique_ptr<Expr>> SplitConjuncts(const Expr& predicate);

/// Rebuilds a single predicate from conjuncts (nullptr when empty).
std::unique_ptr<Expr> CombineConjuncts(
    std::vector<std::unique_ptr<Expr>> conjuncts);

/// Clones a *bound* expression with every column reference rewritten to a
/// positional ("$i") reference, so later rebinding is index-based and
/// immune to duplicate column names (used by the optimizer's rewrites).
std::unique_ptr<Expr> ToPositional(const Expr& expr);

/// Clones a bound positional expression remapping column i to mapping[i].
/// Aborts if a referenced column has no mapping (SIZE_MAX entry).
std::unique_ptr<Expr> RemapColumns(const Expr& expr,
                                   const std::vector<size_t>& mapping);

}  // namespace prisma::algebra

#endif  // PRISMA_ALGEBRA_EXPR_H_
