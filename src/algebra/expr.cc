#include "algebra/expr.h"

#include <utility>

#include "common/logging.h"

namespace prisma::algebra {
namespace {

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kNull;
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

/// Whether values of the two types may be compared at all.
bool Comparable(DataType a, DataType b) {
  if (a == DataType::kNull || b == DataType::kNull) return true;
  if (a == b) return true;
  return IsNumeric(a) && IsNumeric(b);
}

}  // namespace

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg:
      return "-";
    case UnaryOp::kNot:
      return "NOT";
    case UnaryOp::kIsNull:
      return "IS NULL";
  }
  return "?";
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Literal(Value value) {
  auto e = std::unique_ptr<Expr>(new Expr(ExprKind::kLiteral));
  e->literal_ = std::move(value);
  e->result_type_ = e->literal_.type();
  e->bound_ = true;  // Literals need no schema.
  return e;
}

std::unique_ptr<Expr> Expr::ColumnRef(std::string name) {
  auto e = std::unique_ptr<Expr>(new Expr(ExprKind::kColumnRef));
  e->column_name_ = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::ColumnIndex(size_t index, DataType type) {
  auto e = std::unique_ptr<Expr>(new Expr(ExprKind::kColumnRef));
  e->column_index_ = index;
  e->column_name_ = "$" + std::to_string(index);
  e->result_type_ = type;
  e->bound_ = true;
  return e;
}

std::unique_ptr<Expr> Expr::Unary(UnaryOp op, std::unique_ptr<Expr> operand) {
  auto e = std::unique_ptr<Expr>(new Expr(ExprKind::kUnary));
  e->unary_op_ = op;
  e->children_.push_back(std::move(operand));
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs) {
  auto e = std::unique_ptr<Expr>(new Expr(ExprKind::kBinary));
  e->binary_op_ = op;
  e->children_.push_back(std::move(lhs));
  e->children_.push_back(std::move(rhs));
  return e;
}

Status Expr::Bind(const Schema& schema) {
  switch (kind_) {
    case ExprKind::kLiteral:
      result_type_ = literal_.type();
      bound_ = true;
      return Status::OK();
    case ExprKind::kColumnRef: {
      // Pre-resolved positional references keep their index.
      if (!column_name_.empty() && column_name_[0] == '$' &&
          column_index_ != SIZE_MAX) {
        if (column_index_ >= schema.num_columns()) {
          return InvalidArgumentError("column index out of range: " +
                                      column_name_);
        }
        result_type_ = schema.column(column_index_).type;
        bound_ = true;
        return Status::OK();
      }
      ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(column_name_));
      column_index_ = idx;
      result_type_ = schema.column(idx).type;
      bound_ = true;
      return Status::OK();
    }
    case ExprKind::kUnary: {
      RETURN_IF_ERROR(children_[0]->Bind(schema));
      const DataType t = children_[0]->result_type();
      switch (unary_op_) {
        case UnaryOp::kNeg:
          if (!IsNumeric(t)) {
            return InvalidArgumentError("cannot negate " +
                                        std::string(DataTypeName(t)));
          }
          result_type_ = t;
          break;
        case UnaryOp::kNot:
          if (t != DataType::kBool && t != DataType::kNull) {
            return InvalidArgumentError("NOT requires BOOL, got " +
                                        std::string(DataTypeName(t)));
          }
          result_type_ = DataType::kBool;
          break;
        case UnaryOp::kIsNull:
          result_type_ = DataType::kBool;
          break;
      }
      bound_ = true;
      return Status::OK();
    }
    case ExprKind::kBinary: {
      RETURN_IF_ERROR(children_[0]->Bind(schema));
      RETURN_IF_ERROR(children_[1]->Bind(schema));
      const DataType lt = children_[0]->result_type();
      const DataType rt = children_[1]->result_type();
      if (IsArithmetic(binary_op_)) {
        if (binary_op_ == BinaryOp::kAdd && lt == DataType::kString &&
            rt == DataType::kString) {
          result_type_ = DataType::kString;  // String concatenation.
        } else if (binary_op_ == BinaryOp::kMod) {
          if ((lt != DataType::kInt64 && lt != DataType::kNull) ||
              (rt != DataType::kInt64 && rt != DataType::kNull)) {
            return InvalidArgumentError("% requires INT operands");
          }
          result_type_ = DataType::kInt64;
        } else {
          if (!IsNumeric(lt) || !IsNumeric(rt)) {
            return InvalidArgumentError(
                std::string("arithmetic on non-numeric types: ") +
                DataTypeName(lt) + " " + BinaryOpName(binary_op_) + " " +
                DataTypeName(rt));
          }
          result_type_ = (lt == DataType::kDouble || rt == DataType::kDouble)
                             ? DataType::kDouble
                             : DataType::kInt64;
          if (lt == DataType::kNull) result_type_ = rt;
          if (rt == DataType::kNull) result_type_ = lt;
        }
      } else if (IsComparison(binary_op_)) {
        if (!Comparable(lt, rt)) {
          return InvalidArgumentError(
              std::string("cannot compare ") + DataTypeName(lt) + " with " +
              DataTypeName(rt));
        }
        result_type_ = DataType::kBool;
      } else {  // AND / OR.
        if ((lt != DataType::kBool && lt != DataType::kNull) ||
            (rt != DataType::kBool && rt != DataType::kNull)) {
          return InvalidArgumentError(
              std::string(BinaryOpName(binary_op_)) + " requires BOOL operands");
        }
        result_type_ = DataType::kBool;
      }
      bound_ = true;
      return Status::OK();
    }
  }
  return InternalError("corrupt expression kind");
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::unique_ptr<Expr>(new Expr(kind_));
  e->result_type_ = result_type_;
  e->bound_ = bound_;
  e->literal_ = literal_;
  e->column_name_ = column_name_;
  e->column_index_ = column_index_;
  e->unary_op_ = unary_op_;
  e->binary_op_ = binary_op_;
  for (const auto& c : children_) e->children_.push_back(c->Clone());
  return e;
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_ == other.literal_ &&
             literal_.type() == other.literal_.type();
    case ExprKind::kColumnRef:
      if (bound_ && other.bound_) return column_index_ == other.column_index_;
      return column_name_ == other.column_name_;
    case ExprKind::kUnary:
      return unary_op_ == other.unary_op_ &&
             children_[0]->Equals(*other.children_[0]);
    case ExprKind::kBinary:
      return binary_op_ == other.binary_op_ &&
             children_[0]->Equals(*other.children_[0]) &&
             children_[1]->Equals(*other.children_[1]);
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kColumnRef:
      return column_name_;
    case ExprKind::kUnary:
      if (unary_op_ == UnaryOp::kIsNull) {
        return "(" + children_[0]->ToString() + " IS NULL)";
      }
      return std::string(UnaryOpName(unary_op_)) + "(" +
             children_[0]->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + children_[0]->ToString() + " " +
             BinaryOpName(binary_op_) + " " + children_[1]->ToString() + ")";
  }
  return "?";
}

size_t Expr::TreeSize() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->TreeSize();
  return n;
}

void Expr::CollectColumnIndexes(std::vector<size_t>* out) const {
  if (kind_ == ExprKind::kColumnRef) {
    PRISMA_CHECK(bound_) << "CollectColumnIndexes on unbound expr";
    out->push_back(column_index_);
    return;
  }
  for (const auto& c : children_) c->CollectColumnIndexes(out);
}

bool Expr::IsConstant() const {
  if (kind_ == ExprKind::kColumnRef) return false;
  for (const auto& c : children_) {
    if (!c->IsConstant()) return false;
  }
  return true;
}

std::unique_ptr<Expr> Col(std::string name) {
  return Expr::ColumnRef(std::move(name));
}
std::unique_ptr<Expr> Lit(int64_t v) { return Expr::Literal(Value::Int(v)); }
std::unique_ptr<Expr> Lit(double v) { return Expr::Literal(Value::Double(v)); }
std::unique_ptr<Expr> Lit(std::string v) {
  return Expr::Literal(Value::String(std::move(v)));
}
std::unique_ptr<Expr> Eq(std::unique_ptr<Expr> l, std::unique_ptr<Expr> r) {
  return Expr::Binary(BinaryOp::kEq, std::move(l), std::move(r));
}
std::unique_ptr<Expr> And(std::unique_ptr<Expr> l, std::unique_ptr<Expr> r) {
  return Expr::Binary(BinaryOp::kAnd, std::move(l), std::move(r));
}

std::vector<std::unique_ptr<Expr>> SplitConjuncts(const Expr& predicate) {
  std::vector<std::unique_ptr<Expr>> out;
  if (predicate.kind() == ExprKind::kBinary &&
      predicate.binary_op() == BinaryOp::kAnd) {
    auto l = SplitConjuncts(*predicate.left());
    auto r = SplitConjuncts(*predicate.right());
    for (auto& e : l) out.push_back(std::move(e));
    for (auto& e : r) out.push_back(std::move(e));
    return out;
  }
  out.push_back(predicate.Clone());
  return out;
}

std::unique_ptr<Expr> CombineConjuncts(
    std::vector<std::unique_ptr<Expr>> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  std::unique_ptr<Expr> result = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = Expr::Binary(BinaryOp::kAnd, std::move(result),
                          std::move(conjuncts[i]));
  }
  return result;
}

std::unique_ptr<Expr> ToPositional(const Expr& expr) {
  if (expr.kind() == ExprKind::kColumnRef) {
    PRISMA_CHECK(expr.bound()) << "ToPositional on unbound column reference";
    return Expr::ColumnIndex(expr.column_index(), expr.result_type());
  }
  auto clone = expr.Clone();
  if (expr.kind() == ExprKind::kUnary) {
    return Expr::Unary(expr.unary_op(), ToPositional(*expr.operand()));
  }
  if (expr.kind() == ExprKind::kBinary) {
    return Expr::Binary(expr.binary_op(), ToPositional(*expr.left()),
                        ToPositional(*expr.right()));
  }
  return clone;  // Literal.
}

std::unique_ptr<Expr> RemapColumns(const Expr& expr,
                                   const std::vector<size_t>& mapping) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return expr.Clone();
    case ExprKind::kColumnRef: {
      PRISMA_CHECK(expr.bound()) << "RemapColumns on unbound column reference";
      const size_t old = expr.column_index();
      PRISMA_CHECK(old < mapping.size() && mapping[old] != SIZE_MAX)
          << "column " << old << " has no remapping";
      return Expr::ColumnIndex(mapping[old], expr.result_type());
    }
    case ExprKind::kUnary:
      return Expr::Unary(expr.unary_op(),
                         RemapColumns(*expr.operand(), mapping));
    case ExprKind::kBinary:
      return Expr::Binary(expr.binary_op(),
                          RemapColumns(*expr.left(), mapping),
                          RemapColumns(*expr.right(), mapping));
  }
  return nullptr;
}

}  // namespace prisma::algebra
