#ifndef PRISMA_ALGEBRA_PLAN_H_
#define PRISMA_ALGEBRA_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algebra/expr.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/tuple.h"

namespace prisma::algebra {

/// Node kinds of PRISMA's *extended* relational algebra (§2.3): classical
/// operators plus the transitive-closure extension that gives PRISMAlog
/// recursion its semantics.
enum class PlanKind : uint8_t {
  kScan,
  kValues,
  kSelect,
  kProject,
  kJoin,
  kUnion,
  kDifference,
  kDistinct,
  kAggregate,
  kSort,
  kLimit,
  kTransitiveClosure,
  kExchange,
  kFixpoint,
};

const char* PlanKindName(PlanKind kind);

enum class AggFunc : uint8_t { kCount, kSum, kMin, kMax, kAvg };
const char* AggFuncName(AggFunc func);

/// One aggregate output: FUNC(arg) AS name; arg is null for COUNT(*).
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  std::unique_ptr<Expr> arg;  // Bound to the child schema; null = COUNT(*).
  std::string output_name;

  AggSpec Clone() const {
    return AggSpec{func, arg ? arg->Clone() : nullptr, output_name};
  }
};

/// One ORDER BY key.
struct SortKey {
  std::unique_ptr<Expr> expr;  // Bound to the child schema.
  bool descending = false;

  SortKey Clone() const { return SortKey{expr->Clone(), descending}; }
};

/// Abstract logical plan node. Plans are immutable trees except through
/// the explicit child-replacement hooks used by the optimizer. All
/// construction goes through the typed factories below, which bind and
/// type-check embedded expressions against child schemas, so an existing
/// Plan is always well-typed.
class Plan {
 public:
  virtual ~Plan() = default;

  PlanKind kind() const { return kind_; }
  const Schema& schema() const { return schema_; }

  size_t num_children() const { return children_.size(); }
  const Plan* child(size_t i = 0) const { return children_[i].get(); }
  Plan* mutable_child(size_t i = 0) { return children_[i].get(); }

  /// Detaches child i (for optimizer rewrites).
  std::unique_ptr<Plan> TakeChild(size_t i);
  /// Replaces child i; the caller guarantees schema compatibility.
  void SetChild(size_t i, std::unique_ptr<Plan> child);

  virtual std::unique_ptr<Plan> Clone() const = 0;

  /// Multi-line indented plan rendering for EXPLAIN-style output.
  std::string ToString() const;

  /// Number of plan nodes in this subtree.
  size_t TreeSize() const;

 protected:
  Plan(PlanKind kind, Schema schema) : kind_(kind), schema_(std::move(schema)) {}
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  virtual std::string SelfString() const = 0;
  void AppendTo(std::string* out, int indent) const;

  PlanKind kind_;
  Schema schema_;
  std::vector<std::unique_ptr<Plan>> children_;
};

/// Leaf: scan of a named base relation (or fragment).
class ScanPlan : public Plan {
 public:
  /// `schema` comes from the data dictionary.
  static std::unique_ptr<ScanPlan> Create(std::string table, Schema schema);

  const std::string& table() const { return table_; }
  std::unique_ptr<Plan> Clone() const override;

 protected:
  std::string SelfString() const override;

 private:
  ScanPlan(std::string table, Schema schema)
      : Plan(PlanKind::kScan, std::move(schema)), table_(std::move(table)) {}
  std::string table_;
};

/// Leaf: literal rows (used for INSERT ... VALUES and tests).
class ValuesPlan : public Plan {
 public:
  static StatusOr<std::unique_ptr<ValuesPlan>> Create(Schema schema,
                                                      std::vector<Tuple> rows);

  const std::vector<Tuple>& rows() const { return rows_; }
  std::unique_ptr<Plan> Clone() const override;

 protected:
  std::string SelfString() const override;

 private:
  ValuesPlan(Schema schema, std::vector<Tuple> rows)
      : Plan(PlanKind::kValues, std::move(schema)), rows_(std::move(rows)) {}
  std::vector<Tuple> rows_;
};

/// Selection: keep child tuples satisfying a boolean predicate.
class SelectPlan : public Plan {
 public:
  static StatusOr<std::unique_ptr<SelectPlan>> Create(
      std::unique_ptr<Plan> child, std::unique_ptr<Expr> predicate);

  const Expr& predicate() const { return *predicate_; }
  std::unique_ptr<Plan> Clone() const override;

 protected:
  std::string SelfString() const override;

 private:
  SelectPlan(std::unique_ptr<Plan> child, std::unique_ptr<Expr> predicate);
  std::unique_ptr<Expr> predicate_;
};

/// Projection: compute named expressions over each child tuple.
class ProjectPlan : public Plan {
 public:
  static StatusOr<std::unique_ptr<ProjectPlan>> Create(
      std::unique_ptr<Plan> child, std::vector<std::unique_ptr<Expr>> exprs,
      std::vector<std::string> names);

  const std::vector<std::unique_ptr<Expr>>& exprs() const { return exprs_; }
  std::unique_ptr<Plan> Clone() const override;

 protected:
  std::string SelfString() const override;

 private:
  ProjectPlan(std::unique_ptr<Plan> child,
              std::vector<std::unique_ptr<Expr>> exprs, Schema schema);
  std::vector<std::unique_ptr<Expr>> exprs_;
};

/// Inner join on an arbitrary predicate over the concatenated schemas.
/// A null predicate is a cross product.
class JoinPlan : public Plan {
 public:
  static StatusOr<std::unique_ptr<JoinPlan>> Create(
      std::unique_ptr<Plan> left, std::unique_ptr<Plan> right,
      std::unique_ptr<Expr> predicate);

  const Expr* predicate() const { return predicate_.get(); }
  std::unique_ptr<Plan> Clone() const override;

  /// Equi-join key pairs (left column index, right column index) extracted
  /// from the predicate's top-level conjuncts; empty for non-equi joins.
  std::vector<std::pair<size_t, size_t>> EquiKeys() const;

 protected:
  std::string SelfString() const override;

 private:
  JoinPlan(std::unique_ptr<Plan> left, std::unique_ptr<Plan> right,
           std::unique_ptr<Expr> predicate);
  std::unique_ptr<Expr> predicate_;
};

/// Bag union of two type-compatible inputs (column names from the left).
class UnionPlan : public Plan {
 public:
  static StatusOr<std::unique_ptr<UnionPlan>> Create(
      std::unique_ptr<Plan> left, std::unique_ptr<Plan> right);
  std::unique_ptr<Plan> Clone() const override;

 protected:
  std::string SelfString() const override;

 private:
  UnionPlan(std::unique_ptr<Plan> left, std::unique_ptr<Plan> right,
            Schema schema);
};

/// Set difference: left tuples with no equal tuple in right.
class DifferencePlan : public Plan {
 public:
  static StatusOr<std::unique_ptr<DifferencePlan>> Create(
      std::unique_ptr<Plan> left, std::unique_ptr<Plan> right);
  std::unique_ptr<Plan> Clone() const override;

 protected:
  std::string SelfString() const override;

 private:
  DifferencePlan(std::unique_ptr<Plan> left, std::unique_ptr<Plan> right,
                 Schema schema);
};

/// Duplicate elimination (PRISMAlog is set-oriented, §2.3).
class DistinctPlan : public Plan {
 public:
  static std::unique_ptr<DistinctPlan> Create(std::unique_ptr<Plan> child);
  std::unique_ptr<Plan> Clone() const override;

 protected:
  std::string SelfString() const override;

 private:
  explicit DistinctPlan(std::unique_ptr<Plan> child);
};

/// Grouped aggregation; output = group-by columns then aggregates.
class AggregatePlan : public Plan {
 public:
  static StatusOr<std::unique_ptr<AggregatePlan>> Create(
      std::unique_ptr<Plan> child,
      std::vector<std::unique_ptr<Expr>> group_by,
      std::vector<std::string> group_names, std::vector<AggSpec> aggs);

  const std::vector<std::unique_ptr<Expr>>& group_by() const {
    return group_by_;
  }
  const std::vector<AggSpec>& aggs() const { return aggs_; }
  std::unique_ptr<Plan> Clone() const override;

 protected:
  std::string SelfString() const override;

 private:
  AggregatePlan(std::unique_ptr<Plan> child,
                std::vector<std::unique_ptr<Expr>> group_by,
                std::vector<AggSpec> aggs, Schema schema);
  std::vector<std::unique_ptr<Expr>> group_by_;
  std::vector<AggSpec> aggs_;
};

/// Sort by one or more keys.
class SortPlan : public Plan {
 public:
  static StatusOr<std::unique_ptr<SortPlan>> Create(
      std::unique_ptr<Plan> child, std::vector<SortKey> keys);

  const std::vector<SortKey>& keys() const { return keys_; }
  std::unique_ptr<Plan> Clone() const override;

 protected:
  std::string SelfString() const override;

 private:
  SortPlan(std::unique_ptr<Plan> child, std::vector<SortKey> keys);
  std::vector<SortKey> keys_;
};

/// First-N.
class LimitPlan : public Plan {
 public:
  static std::unique_ptr<LimitPlan> Create(std::unique_ptr<Plan> child,
                                           uint64_t limit);
  uint64_t limit() const { return limit_; }
  std::unique_ptr<Plan> Clone() const override;

 protected:
  std::string SelfString() const override;

 private:
  LimitPlan(std::unique_ptr<Plan> child, uint64_t limit);
  uint64_t limit_;
};

/// The extension operator (§2.5): transitive closure of a binary relation.
/// The child must produce exactly two same-type columns (from, to); the
/// output contains every pair (a, b) such that b is reachable from a in
/// one or more steps. Output is a set (duplicates eliminated).
class TransitiveClosurePlan : public Plan {
 public:
  static StatusOr<std::unique_ptr<TransitiveClosurePlan>> Create(
      std::unique_ptr<Plan> child);
  std::unique_ptr<Plan> Clone() const override;

 protected:
  std::string SelfString() const override;

 private:
  explicit TransitiveClosurePlan(std::unique_ptr<Plan> child);
};

/// Exchange: the dataflow repartitioning operator of the streaming
/// exchange layer (DESIGN.md §10, §14). Marks the point in a distributed
/// plan where the child's tuple stream leaves its producing PE: hash-
/// partitioned on key columns across the consumer fragments, broadcast
/// to all of them, or range-partitioned on sampled key boundaries (the
/// distributed-sort shuffle of DESIGN.md §14.3). The schema is unchanged
/// — Exchange moves tuples, it never transforms them — so local
/// executors treat it as a pass-through; the actual batching/flow
/// control happens in the mail layer.
class ExchangePlan : public Plan {
 public:
  enum class Mode : uint8_t { kHashPartition, kBroadcast, kRange };

  /// `keys` are columns of the child schema (hash/range modes; empty for
  /// broadcast).
  static std::unique_ptr<ExchangePlan> Create(std::unique_ptr<Plan> child,
                                              Mode mode,
                                              std::vector<size_t> keys);

  Mode mode() const { return mode_; }
  const std::vector<size_t>& keys() const { return keys_; }
  std::unique_ptr<Plan> Clone() const override;

 protected:
  std::string SelfString() const override;

 private:
  ExchangePlan(std::unique_ptr<Plan> child, Mode mode,
               std::vector<size_t> keys);
  Mode mode_;
  std::vector<size_t> keys_;
};

/// Fixpoint: the distributed, iterative form of the closure operator
/// (DESIGN.md §11). The child is the partitioned edge input (typically a
/// hash Exchange over the fragment scans); the node names the evaluation
/// strategy and partition count so EXPLAIN shows how rounds will run —
/// the round count itself is a runtime quantity, reported after
/// execution as the `fixpoint.rounds` metric.
class FixpointPlan : public Plan {
 public:
  /// `strategy` is a TcAlgorithmName-style label ("naive", "seminaive",
  /// "smart"); `partitions` is the number of fixpoint PEs.
  static StatusOr<std::unique_ptr<FixpointPlan>> Create(
      std::unique_ptr<Plan> child, std::string strategy, size_t partitions);

  const std::string& strategy() const { return strategy_; }
  size_t partitions() const { return partitions_; }
  std::unique_ptr<Plan> Clone() const override;

 protected:
  std::string SelfString() const override;

 private:
  FixpointPlan(std::unique_ptr<Plan> child, std::string strategy,
               size_t partitions);
  std::string strategy_;
  size_t partitions_;
};

}  // namespace prisma::algebra

#endif  // PRISMA_ALGEBRA_PLAN_H_
