#ifndef PRISMA_SERVE_WORKLOAD_H_
#define PRISMA_SERVE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/prisma_db.h"
#include "sim/simulator.h"

namespace prisma::serve {

/// Statement shapes a serving session can issue (DESIGN.md §15.1). The
/// mix mirrors production traffic against a PRISMA machine: cheap
/// parameterized point accesses dominating, a tail of analytic shapes
/// (the TPC-H-lite forms of E14) keeping the exchange layer busy.
enum class QueryKind : uint8_t {
  kPointRead,   // SELECT v FROM item WHERE id = ?
  kPointWrite,  // UPDATE item SET v = v + 1 WHERE id = ?
  kGroupBy,     // Fragment-parallel GROUP BY over the fact table.
  kJoinGroupBy, // TPC-H-lite q8 shape: join + group-by + order-by.
};

const char* QueryKindName(QueryKind kind);

/// How session inter-arrival gaps are drawn.
enum class ArrivalProcess : uint8_t {
  /// Exponential gaps — memoryless open-loop sessions.
  kPoisson,
  /// On/off phases: inside a burst the session issues at `burst_factor`
  /// times its base rate, between bursts it idles. Models synchronized
  /// client stampedes; the aggregate rate still matches `offered_qps`.
  kBursty,
};

/// Relative statement-mix weights (normalized internally; all-zero falls
/// back to point reads only).
struct QueryMix {
  double point_read = 0.70;
  double point_write = 0.10;
  double group_by = 0.15;
  double join_group_by = 0.05;
};

/// One open-loop workload: `sessions` independent simulated clients, each
/// issuing statements on the shared sim clock at an aggregate rate of
/// `offered_qps` (virtual queries per virtual second) for `duration_ns`.
/// Open-loop means arrival times never wait for completions — exactly the
/// regime where an overloaded server must shed rather than queue forever.
struct WorkloadProfile {
  int sessions = 1000;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  double offered_qps = 200.0;
  sim::SimTime duration_ns = 2 * sim::kNanosPerSecond;
  QueryMix mix;
  /// kBursty: inside a burst the session issues at `burst_factor` times
  /// its base rate; bursts have exponential mean `burst_mean_ns` and the
  /// idle gaps between them are sized (burst_mean_ns * (factor - 1)) so
  /// the long-run rate still averages `offered_qps`.
  double burst_factor = 8.0;
  sim::SimTime burst_mean_ns = 50 * sim::kNanosPerMilli;
  /// Point statements draw their id from [0, key_domain). A small domain
  /// re-parameterizes the same statements often — the plan-cache sweet
  /// spot production traffic actually exhibits.
  int key_domain = 512;
};

/// One statement arrival of one session.
struct ArrivalEvent {
  sim::SimTime at_ns = 0;
  int session = 0;
  QueryKind kind = QueryKind::kPointRead;
  std::string sql;
};

/// Seeded, fully deterministic generator: the schedule is a pure function
/// of (seed, profile) — per-session RNG streams make it independent of
/// generation order, and ties are broken by session id, so the same seed
/// always yields the byte-identical statement sequence.
class WorkloadGenerator {
 public:
  WorkloadGenerator(uint64_t seed, WorkloadProfile profile);

  /// The full arrival schedule, sorted by (time, session).
  std::vector<ArrivalEvent> Generate() const;

  const WorkloadProfile& profile() const { return profile_; }

  /// Creates and loads the serving schema the mix statements run against:
  /// `item(id, grp, v)` hash-fragmented `fragments` ways with `rows` rows,
  /// and the 8-row `grp_dim(grp, name)` dimension joined by kJoinGroupBy.
  static Status SetupSchema(core::PrismaDb* db, int rows, int fragments);

 private:
  uint64_t seed_;
  WorkloadProfile profile_;
};

}  // namespace prisma::serve

#endif  // PRISMA_SERVE_WORKLOAD_H_
