#include "serve/dispatcher.h"

#include <algorithm>
#include <utility>

namespace prisma::serve {

const char* AdmitStateName(AdmitState state) {
  switch (state) {
    case AdmitState::kOpen:
      return "open";
    case AdmitState::kShedding:
      return "shedding";
  }
  return "unknown";
}

namespace {

size_t CoordinatorPeCount(const core::PrismaDb& db) {
  const core::MachineConfig& config = db.config();
  if (!config.coordinator_pes.empty()) return config.coordinator_pes.size();
  return static_cast<size_t>(std::max(config.pes, 1));
}

}  // namespace

Dispatcher::Dispatcher(core::PrismaDb* db, DispatcherOptions options)
    : db_(db),
      options_(options),
      dispatch_cap_(static_cast<size_t>(std::max(
                        options.per_pe_concurrency, 1)) *
                    CoordinatorPeCount(*db)) {}

void Dispatcher::Submit(const std::string& text, exec::TxnId txn,
                        core::PrismaDb::ReplyCallback callback,
                        sim::SimTime delay,
                        std::optional<exec::ExecMode> mode) {
  ++stats_.submitted;
  Pending pending;
  pending.text = text;
  pending.txn = txn;
  pending.mode = mode;
  pending.callback = std::move(callback);
  db_->simulator().Schedule(
      delay, [this, pending = std::move(pending)]() mutable {
        pending.arrival_ns = db_->simulator().now();
        Admit(std::move(pending));
      });
}

void Dispatcher::Admit(Pending pending) {
  UpdateAdmitState();
  // In-transaction statements hold locks already: shedding them could only
  // delay 2PC settlement and lock release, so they bypass admission
  // control entirely (DESIGN.md §15.2, "shed at admission, never
  // mid-2PC"). They still count toward in-flight so the cap sees them.
  const bool in_txn = pending.txn != exec::kAutoCommit;
  if (!in_txn) {
    if (state_ == AdmitState::kShedding ||
        queue_.size() >= options_.queue_capacity) {
      Shed(pending);
      return;
    }
  }
  ++stats_.admitted;
  db_->metrics().GetCounter("serve.admitted")->Increment();
  if (in_txn) {
    Dispatch(std::move(pending));
    return;
  }
  queue_.push_back(std::move(pending));
  stats_.peak_queue = std::max(stats_.peak_queue, queue_.size());
  DispatchQueued();
}

void Dispatcher::Shed(Pending& pending) {
  ++stats_.shed;
  db_->metrics().GetCounter("serve.shed")->Increment();
  gdh::ClientReply reply;
  reply.status = OverloadedError(
      state_ == AdmitState::kShedding
          ? "admission closed: network backlog over the high watermark"
          : "admission queue full");
  // The shed reply is delivered at the arrival instant with zero response
  // time: the statement never entered the system.
  pending.callback(reply, 0);
}

void Dispatcher::DispatchQueued() {
  while (!queue_.empty() && in_flight_ < dispatch_cap_) {
    Pending next = std::move(queue_.front());
    queue_.pop_front();
    Dispatch(std::move(next));
  }
}

void Dispatcher::Dispatch(Pending pending) {
  ++in_flight_;
  stats_.peak_in_flight = std::max(stats_.peak_in_flight, in_flight_);
  const sim::SimTime arrival_ns = pending.arrival_ns;
  core::PrismaDb::ReplyCallback client_callback = std::move(pending.callback);
  db_->Submit(
      pending.text, /*prismalog=*/false, pending.txn,
      [this, arrival_ns, client_callback = std::move(client_callback)](
          const gdh::ClientReply& reply, sim::SimTime response_ns) {
        --in_flight_;
        ++stats_.completed;
        db_->metrics().GetCounter("serve.completed")->Increment();
        if (!reply.status.ok()) {
          if (reply.status.code() == StatusCode::kUnavailable) {
            ++stats_.unavailable;
          } else {
            ++stats_.failed;
          }
        }
        // End-to-end latency includes time spent queued at admission.
        latency_.Record(db_->simulator().now() - arrival_ns);
        client_callback(reply, response_ns);
        UpdateAdmitState();
        DispatchQueued();
      },
      /*delay=*/0, pending.mode);
}

AdmitState Dispatcher::NextState(AdmitState state, int backlog,
                                 const DispatcherOptions& options) {
  if (state == AdmitState::kOpen && backlog >= options.backlog_high) {
    return AdmitState::kShedding;
  }
  if (state == AdmitState::kShedding && backlog <= options.backlog_low) {
    return AdmitState::kOpen;
  }
  // Inside the dead band the state holds — that hysteresis is what keeps
  // admission from flapping when the backlog hovers at a watermark.
  return state;
}

void Dispatcher::UpdateAdmitState() {
  const AdmitState next =
      NextState(state_, db_->network().TotalBacklog(), options_);
  if (next == state_) return;
  if (next == AdmitState::kShedding) {
    // PRISMA_TRANSITION(kOpen, kShedding, backlog over high watermark)
    state_ = AdmitState::kShedding;
    ++stats_.sheds_entered;
  } else {
    // PRISMA_TRANSITION(kShedding, kOpen, backlog drained to low watermark)
    state_ = AdmitState::kOpen;
  }
}

}  // namespace prisma::serve
