#include "serve/workload.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/str_util.h"

namespace prisma::serve {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPointRead:
      return "point_read";
    case QueryKind::kPointWrite:
      return "point_write";
    case QueryKind::kGroupBy:
      return "group_by";
    case QueryKind::kJoinGroupBy:
      return "join_group_by";
  }
  return "unknown";
}

namespace {

/// Exponential draw with the given mean (inverse-CDF over a (0,1] uniform;
/// 1 - NextDouble() avoids log(0)).
double ExpDraw(Rng& rng, double mean) {
  return -mean * std::log(1.0 - rng.NextDouble());
}

QueryKind DrawKind(Rng& rng, const QueryMix& mix) {
  const double total =
      mix.point_read + mix.point_write + mix.group_by + mix.join_group_by;
  if (total <= 0) return QueryKind::kPointRead;
  double draw = rng.NextDouble() * total;
  if ((draw -= mix.point_read) < 0) return QueryKind::kPointRead;
  if ((draw -= mix.point_write) < 0) return QueryKind::kPointWrite;
  if ((draw -= mix.group_by) < 0) return QueryKind::kGroupBy;
  return QueryKind::kJoinGroupBy;
}

std::string RenderSql(QueryKind kind, Rng& rng, int key_domain) {
  switch (kind) {
    case QueryKind::kPointRead:
      return StrFormat("SELECT v FROM item WHERE id = %d",
                       static_cast<int>(rng.Uniform(
                           static_cast<uint64_t>(key_domain))));
    case QueryKind::kPointWrite:
      return StrFormat("UPDATE item SET v = v + 1 WHERE id = %d",
                       static_cast<int>(rng.Uniform(
                           static_cast<uint64_t>(key_domain))));
    case QueryKind::kGroupBy:
      return "SELECT grp, COUNT(*) AS n, SUM(v) AS total FROM item "
             "GROUP BY grp ORDER BY grp";
    case QueryKind::kJoinGroupBy:
      return "SELECT name, COUNT(*) AS n, SUM(v) AS total "
             "FROM item i JOIN grp_dim d ON i.grp = d.grp "
             "GROUP BY name ORDER BY name";
  }
  return "SELECT v FROM item WHERE id = 0";
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(uint64_t seed, WorkloadProfile profile)
    : seed_(seed), profile_(std::move(profile)) {}

std::vector<ArrivalEvent> WorkloadGenerator::Generate() const {
  std::vector<ArrivalEvent> schedule;
  const int sessions = std::max(profile_.sessions, 1);
  // Per-session base rate in statements per virtual nanosecond.
  const double session_rate =
      profile_.offered_qps / static_cast<double>(sessions) /
      static_cast<double>(sim::kNanosPerSecond);
  if (session_rate <= 0 || profile_.duration_ns <= 0) return schedule;
  const double mean_gap_ns = 1.0 / session_rate;
  for (int s = 0; s < sessions; ++s) {
    // One independent stream per session: the schedule is insensitive to
    // generation order and stable when `sessions` changes.
    Rng rng(seed_ * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(s) + 1);
    double now = 0;
    if (profile_.arrival == ArrivalProcess::kPoisson) {
      for (now += ExpDraw(rng, mean_gap_ns);
           now < static_cast<double>(profile_.duration_ns);
           now += ExpDraw(rng, mean_gap_ns)) {
        ArrivalEvent event;
        event.at_ns = static_cast<sim::SimTime>(now);
        event.session = s;
        event.kind = DrawKind(rng, profile_.mix);
        event.sql = RenderSql(event.kind, rng, profile_.key_domain);
        schedule.push_back(std::move(event));
      }
    } else {
      // Bursty on/off: inside a burst the session runs `factor` times its
      // base rate; the idle gap mean of burst_mean * (factor - 1) gives a
      // 1/factor duty cycle, so the long-run average is still the base
      // rate — offered_qps is preserved, just lumpier.
      const double factor = std::max(profile_.burst_factor, 1.0);
      const double in_burst_gap = mean_gap_ns / factor;
      const double burst_mean = static_cast<double>(profile_.burst_mean_ns);
      const double idle_mean = burst_mean * (factor - 1.0);
      while (now < static_cast<double>(profile_.duration_ns)) {
        const double burst_end =
            std::min(now + ExpDraw(rng, burst_mean),
                     static_cast<double>(profile_.duration_ns));
        for (double t = now + ExpDraw(rng, in_burst_gap); t < burst_end;
             t += ExpDraw(rng, in_burst_gap)) {
          ArrivalEvent event;
          event.at_ns = static_cast<sim::SimTime>(t);
          event.session = s;
          event.kind = DrawKind(rng, profile_.mix);
          event.sql = RenderSql(event.kind, rng, profile_.key_domain);
          schedule.push_back(std::move(event));
        }
        now = burst_end + (idle_mean > 0 ? ExpDraw(rng, idle_mean) : 0);
      }
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const ArrivalEvent& a, const ArrivalEvent& b) {
              if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
              return a.session < b.session;
            });
  return schedule;
}

Status WorkloadGenerator::SetupSchema(core::PrismaDb* db, int rows,
                                      int fragments) {
  auto run = [db](const std::string& sql) -> Status {
    auto result = db->Execute(sql);
    if (!result.ok()) return result.status();
    return Status::OK();
  };
  RETURN_IF_ERROR(
      run(StrFormat("CREATE TABLE item (id INT, grp INT, v INT) "
                    "FRAGMENTED BY HASH(id) INTO %d FRAGMENTS",
                    fragments)));
  RETURN_IF_ERROR(run("CREATE TABLE grp_dim (grp INT, name STRING)"));
  static const char* kGroupNames[] = {"alpha", "bravo", "charlie", "delta",
                                      "echo",  "foxtrot", "golf",  "hotel"};
  for (int g = 0; g < 8; ++g) {
    RETURN_IF_ERROR(run(StrFormat(
        "INSERT INTO grp_dim VALUES (%d, '%s')", g, kGroupNames[g])));
  }
  for (int base = 0; base < rows; base += 200) {
    std::string sql = "INSERT INTO item VALUES ";
    const int end = std::min(base + 200, rows);
    for (int id = base; id < end; ++id) {
      if (id > base) sql += ", ";
      sql += StrFormat("(%d, %d, %d)", id, id % 8, id % 100);
    }
    RETURN_IF_ERROR(run(sql));
  }
  return Status::OK();
}

}  // namespace prisma::serve
