#ifndef PRISMA_SERVE_DISPATCHER_H_
#define PRISMA_SERVE_DISPATCHER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "core/prisma_db.h"
#include "obs/latency.h"
#include "sim/simulator.h"

namespace prisma::serve {

/// Admission-control knobs (DESIGN.md §15.2).
struct DispatcherOptions {
  /// Bounded FIFO admission queue; an arrival that finds it full is shed
  /// with a typed Overloaded reply (never dropped silently).
  size_t queue_capacity = 256;
  /// In-flight statements allowed per coordinator PE. The dispatch cap is
  /// per_pe_concurrency * |coordinator PEs| — the machine-wide number of
  /// per-query coordinator instances admitted at once.
  int per_pe_concurrency = 4;
  /// Backpressure hysteresis over net::Network::TotalBacklog() (the PR-2
  /// backlog-watermark counters): admission flips to shedding at or above
  /// `backlog_high`, and back to open only at or below `backlog_low`.
  /// The dead band prevents admit/shed flapping at the boundary.
  int backlog_high = 96;
  int backlog_low = 24;
};

/// Serving-layer front door (DESIGN.md §15.2): a harness-side component
/// between the open-loop workload and PrismaDb::Submit, applying
/// admission control so overload degrades into typed `Overloaded`
/// rejections instead of collapsing the event queue under unbounded
/// concurrent coordinators.
///
/// Like the benches and tests, the dispatcher is part of the simulation
/// harness, not a POOL-X process: it schedules plain simulator events and
/// inspects machine-level state (network backlog) between events only.
/// Every statement handed to Submit() resolves to exactly one callback
/// invocation — an answer, a typed Unavailable from the RPC layer, or a
/// typed Overloaded shed at admission. Statements inside an explicit
/// transaction bypass shedding and the queue entirely: their locks are
/// already held, so refusing them mid-2PC could only delay release
/// (the "shed at admission, never mid-2PC" rule).
///
/// Admission state machine (lint rule D7):
/// PRISMA_STATE_MACHINE(AdmitState: init->kOpen, kOpen->kShedding,
///                      kShedding->kOpen)
enum class AdmitState : uint8_t {
  kOpen,      // Backlog below the high watermark: arrivals join the queue.
  kShedding,  // Backlog crossed high; new arrivals get typed Overloaded.
};

const char* AdmitStateName(AdmitState state);

class Dispatcher {
 public:
  Dispatcher(core::PrismaDb* db, DispatcherOptions options);

  /// Schedules one statement arrival `delay` virtual ns from now. At the
  /// arrival instant the statement is admitted (queued and dispatched
  /// under the concurrency cap) or shed with a typed Overloaded reply;
  /// the callback fires exactly once either way.
  void Submit(const std::string& text, exec::TxnId txn,
              core::PrismaDb::ReplyCallback callback, sim::SimTime delay = 0,
              std::optional<exec::ExecMode> mode = std::nullopt);

  /// Runs the simulation until every submitted statement has resolved.
  void Run() { db_->Run(); }

  struct Stats {
    uint64_t submitted = 0;
    uint64_t admitted = 0;     // Entered the queue (or txn bypass).
    uint64_t shed = 0;         // Typed Overloaded at admission.
    uint64_t completed = 0;    // Callback invocations with a db reply.
    uint64_t unavailable = 0;  // Of completed: typed kUnavailable.
    uint64_t failed = 0;       // Of completed: any other non-OK status.
    size_t peak_queue = 0;
    size_t peak_in_flight = 0;
    uint64_t sheds_entered = 0;  // kOpen -> kShedding transitions.
  };
  const Stats& stats() const { return stats_; }
  AdmitState state() const { return state_; }
  size_t queue_depth() const { return queue_.size(); }
  size_t in_flight() const { return in_flight_; }

  /// End-to-end latency (arrival instant to reply) of every statement
  /// that received a database answer; shed statements are excluded (they
  /// never entered the system) and counted in stats().shed instead.
  const obs::LatencyHistogram& latency() const { return latency_; }

  /// The pure hysteresis step: where the admission state machine moves
  /// when the live backlog reads `backlog`. Exposed for unit tests — the
  /// dead band between the watermarks must absorb boundary noise without
  /// flapping.
  static AdmitState NextState(AdmitState state, int backlog,
                              const DispatcherOptions& options);

 private:
  struct Pending {
    std::string text;
    exec::TxnId txn = exec::kAutoCommit;
    std::optional<exec::ExecMode> mode;
    core::PrismaDb::ReplyCallback callback;
    sim::SimTime arrival_ns = 0;
  };

  /// Arrival instant: admit or shed `pending`.
  void Admit(Pending pending);
  /// Moves queued statements into PrismaDb::Submit up to the cap.
  void DispatchQueued();
  /// Hands one statement to the database and wires the completion hook.
  void Dispatch(Pending pending);
  /// Re-evaluates the watermark state machine against the live backlog.
  void UpdateAdmitState();
  void Shed(Pending& pending);

  core::PrismaDb* db_;
  const DispatcherOptions options_;
  const size_t dispatch_cap_;
  // PRISMA_TRANSITION(init, kOpen, a fresh dispatcher admits)
  AdmitState state_ = AdmitState::kOpen;
  std::deque<Pending> queue_;
  size_t in_flight_ = 0;
  Stats stats_;
  obs::LatencyHistogram latency_;
};

}  // namespace prisma::serve

#endif  // PRISMA_SERVE_DISPATCHER_H_
