#ifndef PRISMA_POOL_OWNED_H_
#define PRISMA_POOL_OWNED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace prisma::pool {

/// Identifier of a POOL-X process; unique within a Runtime for its lifetime.
using ProcessId = int64_t;
constexpr ProcessId kNoProcess = -1;

/// The process whose handler is currently executing — the cooperative
/// simulation's answer to "which thread am I on". Maintained by
/// Runtime::ExecuteHandler; kNoProcess between events (control-plane code
/// in tests and benches runs there).
///
/// The simulation is single-threaded by design (see the TSan CI job), so
/// plain statics suffice.
class CurrentProcess {
 public:
  static ProcessId id() { return id_; }
  static const std::string& name() { return name_; }

  /// RAII frame entered by the runtime around every handler.
  class Scope {
   public:
    Scope(ProcessId id, std::string name)
        : prev_id_(id_), prev_name_(std::move(name_)) {
      id_ = id;
      name_ = std::move(name);
    }
    ~Scope() {
      id_ = prev_id_;
      name_ = std::move(prev_name_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ProcessId prev_id_;
    std::string prev_name_;
  };

 private:
  static inline ProcessId id_ = kNoProcess;
  static inline std::string name_;
};

namespace internal_owned {
/// Reports a cross-process access. The default handler prints the message
/// and aborts; tests swap in a capturing handler so the violation path is
/// itself testable without death tests.
using ViolationHandler = void (*)(const std::string& message);
ViolationHandler SetOwnershipViolationHandler(ViolationHandler handler);
void ReportViolation(ProcessId owner, const std::string& owner_name,
                     const std::string& what);

/// Shared owner-binding logic of Owned<T> / OwnedPtr<T>: the first access
/// from inside a handler adopts the running process as owner; later
/// handler accesses must come from the owner. Accesses outside any handler
/// (construction, destruction, control-plane reads by tests and benches
/// between simulation events) are always allowed.
class OwnershipCell {
 public:
  void Check() const {
#ifndef PRISMA_NO_OWNERSHIP_CHECKS
    const ProcessId current = CurrentProcess::id();
    if (current == kNoProcess) return;  // Control plane, between events.
    if (owner_ == kNoProcess) {
      // Process members are constructed before the process is spawned, so
      // binding happens on the owner's first OnStart/OnMail access.
      owner_ = current;
      owner_name_ = CurrentProcess::name();
      return;
    }
    if (owner_ != current) {
      ReportViolation(owner_, owner_name_, "Owned<> state");
    }
#endif
  }

  ProcessId owner() const {
#ifndef PRISMA_NO_OWNERSHIP_CHECKS
    return owner_;
#else
    return kNoProcess;
#endif
  }

 private:
#ifndef PRISMA_NO_OWNERSHIP_CHECKS
  mutable ProcessId owner_ = kNoProcess;
  mutable std::string owner_name_;
#endif
};
}  // namespace internal_owned

/// Process-local state wrapper: the cooperative-simulation race detector.
///
/// POOL-X forbids shared memory (§3.1) — a process's state may only be
/// touched from that process's own handlers. Owned<T> enforces this at
/// runtime: the first access from inside a handler binds the value to the
/// running process, and every later handler access asserts the running
/// process is the owner, aborting with both process names otherwise.
/// Accesses outside any handler (construction, destruction, control-plane
/// reads by tests/benches between simulation events) are always allowed.
///
/// The check is one integer compare per access; define
/// PRISMA_NO_OWNERSHIP_CHECKS to compile it out for profiling builds.
template <typename T>
class Owned {
 public:
  Owned() = default;
  explicit Owned(T value) : value_(std::move(value)) {}

  Owned(const Owned&) = delete;
  Owned& operator=(const Owned&) = delete;

  T& get() {
    cell_.Check();
    return value_;
  }
  const T& get() const {
    cell_.Check();
    return value_;
  }
  T& operator*() { return get(); }
  const T& operator*() const { return get(); }
  T* operator->() { return &get(); }
  const T* operator->() const { return &get(); }

  /// The binding, for diagnostics. kNoProcess until first handler access.
  ProcessId owner() const { return cell_.owner(); }

 private:
  internal_owned::OwnershipCell cell_;
  T value_{};
};

/// Owned<> over a heap value with pointer syntax: `state_->Op()` checks
/// ownership and forwards to the held object. Used for process state built
/// lazily in OnStart (the OFM's fragment engine).
///
/// `null()` deliberately skips the ownership check: probing liveness is
/// how destructors and stall predicates ask "was OnStart reached", which
/// may legitimately happen while another process's handler runs (Kill()
/// destroys a victim inside the killer's frame).
template <typename T>
class OwnedPtr {
 public:
  OwnedPtr() = default;

  OwnedPtr(const OwnedPtr&) = delete;
  OwnedPtr& operator=(const OwnedPtr&) = delete;

  OwnedPtr& operator=(std::unique_ptr<T> ptr) {
    cell_.Check();
    ptr_ = std::move(ptr);
    return *this;
  }

  T* operator->() const {
    cell_.Check();
    return ptr_.get();
  }
  T& operator*() const {
    cell_.Check();
    return *ptr_;
  }
  T* get() const {
    cell_.Check();
    return ptr_.get();
  }

  bool null() const { return ptr_ == nullptr; }

  ProcessId owner() const { return cell_.owner(); }

 private:
  internal_owned::OwnershipCell cell_;
  std::unique_ptr<T> ptr_;
};

}  // namespace prisma::pool

#endif  // PRISMA_POOL_OWNED_H_
