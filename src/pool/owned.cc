#include "pool/owned.h"

#include <cstdio>
#include <cstdlib>

namespace prisma::pool::internal_owned {
namespace {

void DefaultHandler(const std::string& message) {
  std::fprintf(stderr, "PRISMA ownership violation: %s\n", message.c_str());
  std::abort();
}

ViolationHandler g_handler = &DefaultHandler;

}  // namespace

ViolationHandler SetOwnershipViolationHandler(ViolationHandler handler) {
  ViolationHandler previous = g_handler;
  g_handler = handler != nullptr ? handler : &DefaultHandler;
  return previous;
}

void ReportViolation(ProcessId owner, const std::string& owner_name,
                     const std::string& what) {
  std::string message =
      what + " owned by process " + std::to_string(owner) + " (" +
      owner_name + ") accessed from handler of process " +
      std::to_string(CurrentProcess::id()) + " (" + CurrentProcess::name() +
      ") — POOL-X processes share no memory; exchange state through Mail";
  g_handler(message);
}

}  // namespace prisma::pool::internal_owned
