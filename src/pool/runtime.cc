#include "pool/runtime.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace prisma::pool {

void Process::SendMail(ProcessId to, std::string kind, std::any body,
                       int64_t size_bits) {
  PRISMA_CHECK(runtime_ != nullptr) << "process not attached";
  Mail mail;
  mail.from = id_;
  mail.to = to;
  mail.kind = std::move(kind);
  mail.body = std::move(body);
  mail.size_bits = size_bits;
  runtime_->Send(std::move(mail));
}

sim::EventId Process::SendSelfAfter(sim::SimTime delay, std::string kind,
                                    std::any body) {
  PRISMA_CHECK(runtime_ != nullptr) << "process not attached";
  auto mail = std::make_shared<Mail>();
  mail->from = id_;
  mail->to = id_;
  mail->kind = std::move(kind);
  mail->body = std::move(body);
  mail->size_bits = 0;
  Runtime* rt = runtime_;
  return rt->simulator()->Schedule(delay,
                                   [rt, mail]() { rt->MailArrived(mail); });
}

void Process::ChargeCpu(sim::SimTime ns) {
  PRISMA_CHECK(runtime_ != nullptr) << "process not attached";
  PRISMA_CHECK(ns >= 0);
  PRISMA_CHECK(runtime_->in_handler_) << "ChargeCpu outside a handler";
  runtime_->handler_charged_ns_ += ns;
}

Runtime::Runtime(sim::Simulator* sim, net::Network* network, CostModel costs)
    : sim_(sim),
      network_(network),
      costs_(costs),
      pe_cpu_free_at_(network->topology().num_nodes(), 0),
      pe_busy_ns_(network->topology().num_nodes(), 0) {
  // All process mail travels as net::Message payloads; one receiver per PE
  // dispatches to the addressed process.
  const int n = network_->topology().num_nodes();
  for (net::NodeId node = 0; node < n; ++node) {
    network_->SetReceiver(node, [this](const net::Message& message) {
      auto mail = std::any_cast<std::shared_ptr<Mail>>(message.payload);
      MailArrived(std::move(mail));
    });
  }
}

void Runtime::AttachObservability(obs::MetricsRegistry* metrics,
                                  obs::Tracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  if (metrics != nullptr) {
    m_handlers_ = metrics->GetCounter("pool.handlers_executed");
    m_dropped_ = metrics->GetCounter("pool.mail_dropped");
    m_pe_cpu_.clear();
    const int n = network_->topology().num_nodes();
    for (net::NodeId pe = 0; pe < n; ++pe) {
      m_pe_cpu_.push_back(
          metrics->GetCounter("pe.cpu_ns", {{"pe", std::to_string(pe)}}));
    }
  }
}

ProcessId Runtime::Spawn(net::NodeId pe, std::unique_ptr<Process> process) {
  PRISMA_CHECK(pe >= 0 && pe < network_->topology().num_nodes());
  const ProcessId id = next_id_++;
  process->runtime_ = this;
  process->id_ = id;
  process->pe_ = pe;
  Process* raw = process.get();
  processes_[id] = std::move(process);
  // OnStart runs behind the PE's CPU like any handler and pays spawn cost.
  sim_->Schedule(0, [this, pe, id, raw]() {
    if (!IsAlive(id)) return;
    ExecuteHandler(pe, "spawn", id, [this, raw]() {
      handler_charged_ns_ += costs_.spawn_ns;
      raw->OnStart();
    });
  });
  return id;
}

void Runtime::Kill(ProcessId id) { processes_.erase(id); }

size_t Runtime::CrashPe(net::NodeId pe) {
  std::vector<ProcessId> victims;
  for (const auto& [id, process] : processes_) {
    if (process->pe_ == pe) victims.push_back(id);
  }
  for (const ProcessId id : victims) Kill(id);
  ++pe_crashes_;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("pe.crashes", {{"pe", std::to_string(pe)}})
        ->Increment();
  }
  return victims.size();
}

net::NodeId Runtime::PeOf(ProcessId id) const {
  auto it = processes_.find(id);
  PRISMA_CHECK(it != processes_.end()) << "PeOf on dead process " << id;
  return it->second->pe_;
}

void Runtime::Send(Mail mail) {
  if (metrics_ != nullptr) {
    auto [it, inserted] = m_mail_kind_.try_emplace(mail.kind, nullptr);
    if (inserted) {
      it->second =
          metrics_->GetCounter("pool.mail_sent", {{"kind", mail.kind}});
    }
    it->second->Increment();
    auto [bits_it, bits_inserted] =
        m_mail_bits_.try_emplace(mail.kind, nullptr);
    if (bits_inserted) {
      bits_it->second =
          metrics_->GetCounter("pool.mail_bits", {{"kind", mail.kind}});
    }
    bits_it->second->Increment(
        static_cast<uint64_t>(std::max<int64_t>(mail.size_bits, 1)));
  }
  if (in_handler_) {
    // Released when the running handler's charged CPU completes.
    deferred_sends_.push_back(std::move(mail));
    return;
  }
  DispatchMail(std::make_shared<Mail>(std::move(mail)));
}

void Runtime::DispatchMail(const std::shared_ptr<Mail>& mail) {
  auto it = processes_.find(mail->to);
  if (it == processes_.end()) {
    ++dropped_mail_;
    if (m_dropped_ != nullptr) m_dropped_->Increment();
    return;
  }
  const net::NodeId dst_pe = it->second->pe_;
  net::NodeId src_pe = dst_pe;
  auto from_it = processes_.find(mail->from);
  if (from_it != processes_.end()) src_pe = from_it->second->pe_;
  network_->Send(src_pe, dst_pe, std::max<int64_t>(mail->size_bits, 1), mail);
}

void Runtime::MailArrived(std::shared_ptr<Mail> mail) {
  auto it = processes_.find(mail->to);
  if (it == processes_.end()) {
    ++dropped_mail_;
    if (m_dropped_ != nullptr) m_dropped_->Increment();
    return;
  }
  const net::NodeId pe = it->second->pe_;
  ExecuteHandler(pe, mail->kind, mail->to, [this, mail]() {
    auto it2 = processes_.find(mail->to);
    if (it2 == processes_.end()) {
      ++dropped_mail_;
      if (m_dropped_ != nullptr) m_dropped_->Increment();
      return;
    }
    handler_charged_ns_ += costs_.message_handling_ns;
    it2->second->OnMail(*mail);
  });
}

void Runtime::ExecuteHandler(net::NodeId pe, std::string name, ProcessId tid,
                             const std::function<void()>& body) {
  const sim::SimTime now = sim_->now();
  if (pe_cpu_free_at_[pe] > now) {
    // The PE is busy with an earlier handler; retry when it frees up.
    sim_->ScheduleAt(pe_cpu_free_at_[pe],
                     [this, pe, name = std::move(name), tid, body]() {
                       ExecuteHandler(pe, std::move(name), tid, body);
                     });
    return;
  }
  PRISMA_CHECK(!in_handler_) << "nested handler execution";
  in_handler_ = true;
  handler_charged_ns_ = 0;
  deferred_sends_.clear();
  {
    // Ownership checker: while the handler runs, Owned<> accesses are
    // attributed to (and checked against) this process.
    auto owner = processes_.find(tid);
    CurrentProcess::Scope scope(
        tid, owner != processes_.end() ? owner->second->debug_name()
                                       : "dead-process");
    body();
  }
  const sim::SimTime charged = handler_charged_ns_;
  std::vector<Mail> sends = std::move(deferred_sends_);
  in_handler_ = false;
  handler_charged_ns_ = 0;
  deferred_sends_.clear();

  pe_cpu_free_at_[pe] = now + charged;
  pe_busy_ns_[pe] += charged;
  if (m_handlers_ != nullptr) {
    m_handlers_->Increment();
    m_pe_cpu_[pe]->Increment(static_cast<uint64_t>(charged));
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Span("pool", name, now, now + charged, pe, tid);
  }
  if (sends.empty()) return;
  auto release = std::make_shared<std::vector<Mail>>(std::move(sends));
  sim_->Schedule(charged, [this, release]() {
    for (Mail& m : *release) {
      DispatchMail(std::make_shared<Mail>(std::move(m)));
    }
  });
}

}  // namespace prisma::pool
