#ifndef PRISMA_POOL_RUNTIME_H_
#define PRISMA_POOL_RUNTIME_H_

#include <any>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pool/owned.h"
#include "sim/simulator.h"

namespace prisma::pool {

/// A message between POOL-X processes. `kind` selects the handler logic,
/// `body` carries an arbitrary payload (std::shared_ptr for anything
/// non-trivial), and `size_bits` is the serialized size used to model the
/// transfer over the interconnect.
struct Mail {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  std::string kind;
  std::any body;
  int64_t size_bits = 256;
};

/// Calibrated virtual-time costs of CPU-side work, used by all PRISMA
/// components to charge their PE's (serial) processor. The defaults model a
/// late-1980s-class PE scaled to make the 10 Mbit/s links the contended
/// resource, as in the paper's design discussion.
struct CostModel {
  /// Fixed cost of handling any message (dispatch, unmarshalling).
  sim::SimTime message_handling_ns = 2'000;
  /// Cost of creating a process on a PE.
  sim::SimTime spawn_ns = 20'000;
  /// Per-tuple cost of a simple operator step (scan/filter evaluation).
  sim::SimTime tuple_ns = 400;
  /// Per-tuple cost of a hash-table insert or probe.
  sim::SimTime hash_ns = 250;
  /// Per-tuple cost of a comparison-based step (sort/merge).
  sim::SimTime compare_ns = 120;
  /// Per-VM-instruction cost of a *compiled* expression (§2.5 generative
  /// approach) vs. per-tree-node cost of the *interpreted* baseline. The
  /// gap models the interpretation overhead the OFM expression compiler
  /// removes; experiment E4 measures the real-time ratio.
  sim::SimTime compiled_instr_ns = 25;
  sim::SimTime interpreted_node_ns = 250;
  /// Vectorized execution (DESIGN.md §12). A batch kernel amortizes
  /// per-tuple dispatch: each VM instruction costs vector_batch_ns once
  /// per batch (kernel dispatch) plus vector_instr_ns per row (tight
  /// column loop, no per-row unboxing), and moving a row through a
  /// columnar operator costs batch_row_ns instead of tuple_ns. The ratios
  /// follow the measured gap between tuple-at-a-time and vectorized
  /// engines in the main-memory literature (PAPERS.md, Hespe et al.).
  sim::SimTime vector_instr_ns = 6;
  sim::SimTime vector_batch_ns = 400;
  sim::SimTime batch_row_ns = 100;
  /// Cost of parsing + optimizing a query in the GDH, per query.
  sim::SimTime optimize_ns = 300'000;
  /// Cost of normalizing a statement and probing the shared plan cache
  /// (DESIGN.md §15.4); charged instead of optimize_ns on a cache hit.
  sim::SimTime plan_cache_probe_ns = 15'000;
};

class Runtime;

/// Base class of every POOL-X process (§3.1): internally sequential,
/// communicates by message passing only, explicitly allocated to a PE.
///
/// Handlers run to completion in virtual time: CPU consumed via ChargeCpu
/// serializes with other handlers on the same PE, and outgoing mail is
/// released when the handler's charged work completes.
class Process {
 public:
  virtual ~Process() = default;

  /// Invoked once after the process is attached to its PE.
  virtual void OnStart() {}

  /// Invoked for each arriving message.
  virtual void OnMail(const Mail& mail) = 0;

  /// Human-readable name used by the ownership checker's diagnostics
  /// ("gdh", "ofm:emp#2", ...). Purely informational.
  virtual std::string debug_name() const {
    return "process-" + std::to_string(id_);
  }

  ProcessId self() const { return id_; }
  net::NodeId pe() const { return pe_; }
  Runtime* runtime() const { return runtime_; }

 protected:
  /// Sends a message; released onto the network when the current handler's
  /// charged CPU completes.
  void SendMail(ProcessId to, std::string kind, std::any body,
                int64_t size_bits = 256);

  /// Delivers a mail of `kind` to this process after `delay` of virtual
  /// time, without touching the network (local timer). The returned event
  /// id can cancel the timer via runtime()->simulator()->Cancel().
  sim::EventId SendSelfAfter(sim::SimTime delay, std::string kind,
                             std::any body = {});

  /// Consumes `ns` of this PE's CPU inside the current handler.
  void ChargeCpu(sim::SimTime ns);

 private:
  friend class Runtime;
  Runtime* runtime_ = nullptr;
  ProcessId id_ = kNoProcess;
  net::NodeId pe_ = -1;
};

/// The POOL-X runtime: owns all processes, binds them to PEs, and moves
/// their messages over the simulated interconnect.
class Runtime {
 public:
  Runtime(sim::Simulator* sim, net::Network* network, CostModel costs = {});

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  sim::Simulator* simulator() const { return sim_; }
  net::Network* network() const { return network_; }
  const CostModel& costs() const { return costs_; }

  /// Creates a process on PE `pe` (POOL-X explicit allocation, §3.1) and
  /// schedules its OnStart. Spawning charges the target PE.
  ProcessId Spawn(net::NodeId pe, std::unique_ptr<Process> process);

  /// Destroys a process; mail already in flight to it is dropped on
  /// arrival. Used by failure-injection tests to crash a component.
  void Kill(ProcessId id);

  /// Crashes a whole PE: every process hosted there dies instantly (its
  /// volatile state is lost; stable storage survives). Counts the crash
  /// under pe.crashes{pe}. Returns the number of processes killed.
  size_t CrashPe(net::NodeId pe);

  /// Total PE crashes injected via CrashPe.
  uint64_t pe_crashes() const { return pe_crashes_; }

  bool IsAlive(ProcessId id) const { return processes_.contains(id); }
  net::NodeId PeOf(ProcessId id) const;

  /// Sends mail on behalf of `mail.from`; queues behind the sender's
  /// charged CPU when called from inside a handler.
  void Send(Mail mail);

  /// Total messages dropped because the target process was dead.
  uint64_t dropped_mail() const { return dropped_mail_; }

  /// Mirrors runtime activity into the registry (pool.handlers_executed,
  /// pool.mail_sent{kind}, pool.mail_dropped, pe.cpu_ns{pe}) and, when the
  /// tracer is enabled, records one span per executed handler (pid = PE,
  /// tid = process id, name = mail kind). Either pointer may be null.
  void AttachObservability(obs::MetricsRegistry* metrics,
                           obs::Tracer* tracer);

  /// Accumulated CPU busy time of a PE (for utilization reporting).
  sim::SimTime pe_busy_ns(net::NodeId pe) const { return pe_busy_ns_[pe]; }

  /// Number of live processes.
  size_t num_processes() const { return processes_.size(); }

 private:
  friend class Process;

  /// Mail has arrived at its destination PE; queue handler execution
  /// behind the PE's CPU.
  void MailArrived(std::shared_ptr<Mail> mail);

  /// Runs one handler at the current instant, accounting charged CPU and
  /// releasing deferred sends at handler completion. `name` and `tid`
  /// label the handler's trace span (mail kind / destination process).
  void ExecuteHandler(net::NodeId pe, std::string name, ProcessId tid,
                      const std::function<void()>& body);

  void DispatchMail(const std::shared_ptr<Mail>& mail);

  sim::Simulator* sim_;
  net::Network* network_;
  CostModel costs_;

  ProcessId next_id_ = 1;
  /// Ordered by id so whole-PE sweeps (CrashPe) visit processes in a
  /// deterministic order.
  std::map<ProcessId, std::unique_ptr<Process>> processes_;

  std::vector<sim::SimTime> pe_cpu_free_at_;
  std::vector<sim::SimTime> pe_busy_ns_;

  // State of the handler currently executing (nullptr outside handlers).
  bool in_handler_ = false;
  sim::SimTime handler_charged_ns_ = 0;
  std::vector<Mail> deferred_sends_;

  uint64_t dropped_mail_ = 0;
  uint64_t pe_crashes_ = 0;

  // Cached registry entries (null until AttachObservability).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_handlers_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
  std::vector<obs::Counter*> m_pe_cpu_;  // pe.cpu_ns{pe}, indexed by PE.
  std::unordered_map<std::string, obs::Counter*> m_mail_kind_;
  /// pool.mail_bits{kind}: modelled wire bits per mail kind. This is what
  /// makes reply payloads (e.g. exec_plan_reply tuples) attributable in
  /// traffic accounting — net.link_bits is a single per-hop total.
  std::unordered_map<std::string, obs::Counter*> m_mail_bits_;
};

}  // namespace prisma::pool

#endif  // PRISMA_POOL_RUNTIME_H_
