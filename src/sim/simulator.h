#ifndef PRISMA_SIM_SIMULATOR_H_
#define PRISMA_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace prisma::sim {

/// Virtual time in nanoseconds since simulation start.
using SimTime = int64_t;

/// Handle of a scheduled event, usable with Simulator::Cancel.
using EventId = uint64_t;

constexpr SimTime kNanosPerMicro = 1000;
constexpr SimTime kNanosPerMilli = 1000 * 1000;
constexpr SimTime kNanosPerSecond = 1000 * 1000 * 1000;

/// Deterministic discrete-event simulation driver.
///
/// The PRISMA multi-computer (PEs, links, disks, POOL-X processes) runs
/// entirely in virtual time on this engine: components schedule callbacks
/// at future instants and the simulator executes them in nondecreasing
/// time order, breaking ties by scheduling sequence so runs are exactly
/// reproducible.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` nanoseconds from now (delay >= 0).
  /// Returns a handle accepted by Cancel.
  EventId Schedule(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at the absolute virtual instant `time` (>= now()).
  EventId ScheduleAt(SimTime time, std::function<void()> fn);

  /// Cancels a pending event; a no-op if it already ran (or never
  /// existed). Cancelled events are skipped without advancing the clock
  /// to their instant when later events exist; an all-cancelled queue
  /// simply drains.
  void Cancel(EventId id) {
    ++cancel_requests_;
    if (id < next_seq_) cancelled_.insert(id);
  }

  /// Executes the next pending event; returns false if none remain.
  bool Step();

  /// Runs until the event queue drains or `max_events` were executed.
  /// Returns the number of events executed.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= deadline; pending later events remain queued.
  /// Advances now() to `deadline` even if the queue drains earlier.
  uint64_t RunUntil(SimTime deadline);

  /// Total events executed since construction.
  uint64_t events_executed() const { return events_executed_; }

  /// Total events ever scheduled (executed + pending + cancelled).
  uint64_t events_scheduled() const { return next_seq_; }

  /// Cancel calls made (including no-op cancels of already-run events).
  uint64_t cancel_requests() const { return cancel_requests_; }

  /// Events skipped because they were cancelled before their instant.
  uint64_t events_cancelled() const { return events_cancelled_; }

  /// Cancelled events still sitting in the queue as tombstones.
  size_t tombstones_pending() const { return cancelled_.size(); }

  /// Number of pending events (cancelled-but-unpurged ones included).
  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
  };
  // Max-heap comparator inverted: the vector is kept as a min-heap on
  // (time, seq) via std::push_heap/pop_heap so the next event can be moved
  // out of the container (std::priority_queue::top() is const).
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Event PopNext();
  /// Drops cancelled events sitting at the heap front.
  void PurgeCancelledFront();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  uint64_t cancel_requests_ = 0;
  uint64_t events_cancelled_ = 0;
  std::vector<Event> queue_;  // Heap ordered by EventLater.
  std::unordered_set<EventId> cancelled_;
};

}  // namespace prisma::sim

#endif  // PRISMA_SIM_SIMULATOR_H_
