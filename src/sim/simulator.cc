#include "sim/simulator.h"

#include <algorithm>

#include "common/logging.h"

namespace prisma::sim {

EventId Simulator::ScheduleAt(SimTime time, std::function<void()> fn) {
  PRISMA_CHECK(time >= now_) << "cannot schedule into the past: " << time
                             << " < " << now_;
  const EventId id = next_seq_++;
  queue_.push_back(Event{time, id, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), EventLater());
  return id;
}

Simulator::Event Simulator::PopNext() {
  std::pop_heap(queue_.begin(), queue_.end(), EventLater());
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  return ev;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = PopNext();
    auto it = cancelled_.find(ev.seq);
    if (it != cancelled_.end()) {
      // Skipped without advancing the clock.
      cancelled_.erase(it);
      ++events_cancelled_;
      continue;
    }
    now_ = ev.time;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

uint64_t Simulator::Run(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

void Simulator::PurgeCancelledFront() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.front().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    ++events_cancelled_;
    PopNext();
  }
}

uint64_t Simulator::RunUntil(SimTime deadline) {
  uint64_t n = 0;
  while (true) {
    PurgeCancelledFront();
    if (queue_.empty() || queue_.front().time > deadline) break;
    if (Step()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace prisma::sim
