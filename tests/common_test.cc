#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/tuple.h"
#include "common/value.h"

namespace prisma {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("relation emp");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "relation emp");
  EXPECT_EQ(s.ToString(), "not_found: relation emp");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good = ParsePositive(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 4);
  EXPECT_EQ(*good, 4);

  StatusOr<int> bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int> Doubled(int x) {
  ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

Status FailsWhenNegative(int x) {
  RETURN_IF_ERROR(ParsePositive(x).status());
  return Status::OK();
}

TEST(StatusOrTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsWhenNegative(3).ok());
  EXPECT_EQ(FailsWhenNegative(-3).code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> p = std::make_unique<int>(7);
  ASSERT_TRUE(p.ok());
  std::unique_ptr<int> owned = std::move(p).value();
  EXPECT_EQ(*owned, 7);
}

// ---------------------------------------------------------------- Value

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Null().type(), DataType::kNull);
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("abc").string_value(), "abc");
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_LT(Value::String("abc"), Value::String("abd"));
  EXPECT_LT(Value::Bool(false), Value::Bool(true));
  EXPECT_LT(Value::Double(1.5), Value::Double(2.0));
}

TEST(ValueTest, MixedNumericComparesByValue) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_LT(Value::Int(2), Value::Double(2.5));
  EXPECT_LT(Value::Double(1.9), Value::Int(2));
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Null(), Value::Int(-100));
  EXPECT_LT(Value::Null(), Value::String(""));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, CrossTypeRankOrder) {
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(999), Value::String("a"));
}

TEST(ValueTest, HashEqualValuesAgree) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("xy").Hash(), Value::String("xy").Hash());
  EXPECT_NE(Value::Int(7).Hash(), Value::Int(8).Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
}

TEST(ValueTest, Coercion) {
  EXPECT_TRUE(IsCoercible(DataType::kInt64, DataType::kDouble));
  EXPECT_TRUE(IsCoercible(DataType::kNull, DataType::kString));
  EXPECT_FALSE(IsCoercible(DataType::kDouble, DataType::kInt64));
  EXPECT_FALSE(IsCoercible(DataType::kString, DataType::kInt64));

  auto v = CoerceValue(Value::Int(3), DataType::kDouble);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(v->double_value(), 3.0);

  EXPECT_FALSE(CoerceValue(Value::String("x"), DataType::kInt64).ok());
  // NULL coerces to anything, staying NULL.
  EXPECT_TRUE(CoerceValue(Value::Null(), DataType::kInt64)->is_null());
}

TEST(ValueTest, ByteSizeMonotonicInStringLength) {
  EXPECT_LT(Value::String("a").ByteSize(), Value::String("aaaa").ByteSize());
  EXPECT_EQ(Value::Int(1).ByteSize(), 8u);
}

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, BasicLookup) {
  Schema s({{"id", DataType::kInt64}, {"name", DataType::kString}});
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.ColumnIndex("id").value(), 0u);
  EXPECT_EQ(s.ColumnIndex("name").value(), 1u);
  EXPECT_FALSE(s.ColumnIndex("salary").ok());
  EXPECT_TRUE(s.HasColumn("id"));
  EXPECT_FALSE(s.HasColumn("nope"));
}

TEST(SchemaTest, QualifiedLookupBySuffix) {
  Schema s({{"emp.id", DataType::kInt64}, {"emp.name", DataType::kString}});
  EXPECT_EQ(s.ColumnIndex("emp.id").value(), 0u);
  EXPECT_EQ(s.ColumnIndex("id").value(), 0u);
  EXPECT_EQ(s.ColumnIndex("name").value(), 1u);
}

TEST(SchemaTest, AmbiguousUnqualifiedLookupFails) {
  Schema s({{"emp.id", DataType::kInt64}, {"dept.id", DataType::kInt64}});
  auto r = s.ColumnIndex("id");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Exact qualified names still work.
  EXPECT_EQ(s.ColumnIndex("dept.id").value(), 1u);
}

TEST(SchemaTest, ConcatAndQualify) {
  Schema a({{"id", DataType::kInt64}});
  Schema b({{"x", DataType::kDouble}});
  Schema ab = a.Concat(b);
  EXPECT_EQ(ab.num_columns(), 2u);
  EXPECT_EQ(ab.column(1).name, "x");

  Schema q = ab.Qualified("t");
  EXPECT_EQ(q.column(0).name, "t.id");
  EXPECT_EQ(q.column(1).name, "t.x");
  // Re-qualifying replaces the old qualifier.
  EXPECT_EQ(q.Qualified("u").column(0).name, "u.id");
}

TEST(SchemaTest, ToString) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.ToString(), "(a INT, b STRING)");
}

// ---------------------------------------------------------------- Tuple

TEST(TupleTest, BasicsAndConcat) {
  Tuple t({Value::Int(1), Value::String("x")});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.at(0), Value::Int(1));

  Tuple u({Value::Double(2.5)});
  Tuple c = Tuple::Concat(t, u);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.at(2), Value::Double(2.5));
}

TEST(TupleTest, LexicographicCompare) {
  Tuple a({Value::Int(1), Value::Int(2)});
  Tuple b({Value::Int(1), Value::Int(3)});
  Tuple c({Value::Int(1), Value::Int(2)});
  EXPECT_LT(a, b);
  EXPECT_EQ(a, c);
  // Prefix sorts before longer tuple.
  EXPECT_LT(Tuple({Value::Int(1)}), a);
}

TEST(TupleTest, HashAndColumnsHash) {
  Tuple a({Value::Int(1), Value::String("x")});
  Tuple b({Value::Int(1), Value::String("x")});
  EXPECT_EQ(a.Hash(), b.Hash());

  Tuple c({Value::Int(1), Value::String("y")});
  EXPECT_EQ(HashTupleColumns(a, {0}), HashTupleColumns(c, {0}));
  EXPECT_NE(HashTupleColumns(a, {1}), HashTupleColumns(c, {1}));
}

TEST(TupleTest, ToString) {
  Tuple t({Value::Int(1), Value::Null()});
  EXPECT_EQ(t.ToString(), "(1, NULL)");
}

// ---------------------------------------------------------------- StrUtil

TEST(StrUtilTest, LowerAndEqualsIgnoreCase) {
  EXPECT_EQ(AsciiLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("FROM", "from"));
  EXPECT_FALSE(EqualsIgnoreCase("FROM", "form"));
  EXPECT_FALSE(EqualsIgnoreCase("ab", "abc"));
}

TEST(StrUtilTest, JoinSplitStrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StripWhitespace("  x y \t"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d/%s", 3, "x"), "3/x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  // Different seeds diverge immediately with overwhelming probability.
  EXPECT_NE(Rng(42).Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    const int64_t w = rng.UniformInt(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, CoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

}  // namespace
}  // namespace prisma
