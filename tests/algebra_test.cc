#include <gtest/gtest.h>

#include <memory>

#include "algebra/expr.h"
#include "algebra/plan.h"

namespace prisma::algebra {
namespace {

Schema EmpSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"dept", DataType::kString},
                 {"salary", DataType::kDouble}});
}

std::unique_ptr<Plan> EmpScan() { return ScanPlan::Create("emp", EmpSchema()); }

// ------------------------------------------------------------------ Scan

TEST(PlanTest, ScanCarriesTableAndSchema) {
  auto scan = ScanPlan::Create("emp", EmpSchema());
  EXPECT_EQ(scan->kind(), PlanKind::kScan);
  EXPECT_EQ(scan->table(), "emp");
  EXPECT_EQ(scan->schema(), EmpSchema());
  EXPECT_EQ(scan->num_children(), 0u);
  EXPECT_EQ(scan->TreeSize(), 1u);
}

// ---------------------------------------------------------------- Values

TEST(PlanTest, ValuesCoercesAndValidates) {
  Schema s({{"x", DataType::kDouble}});
  auto good = ValuesPlan::Create(s, {Tuple({Value::Int(1)})});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ((*good)->rows()[0].at(0).type(), DataType::kDouble);

  EXPECT_FALSE(ValuesPlan::Create(s, {Tuple({Value::String("x")})}).ok());
  EXPECT_FALSE(
      ValuesPlan::Create(s, {Tuple({Value::Int(1), Value::Int(2)})}).ok());
}

// ---------------------------------------------------------------- Select

TEST(PlanTest, SelectRequiresBooleanPredicate) {
  auto good = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kGt, Col("salary"), Lit(10.0)));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ((*good)->schema(), EmpSchema());  // Selection keeps the schema.

  auto non_bool = SelectPlan::Create(EmpScan(), Col("salary"));
  EXPECT_FALSE(non_bool.ok());

  auto bad_column = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kGt, Col("ghost"), Lit(10.0)));
  EXPECT_FALSE(bad_column.ok());
}

// --------------------------------------------------------------- Project

TEST(PlanTest, ProjectComputesOutputSchema) {
  std::vector<std::unique_ptr<Expr>> exprs;
  exprs.push_back(Col("id"));
  exprs.push_back(Expr::Binary(BinaryOp::kMul, Col("salary"), Lit(2.0)));
  auto plan = ProjectPlan::Create(EmpScan(), std::move(exprs), {"id", "x2"});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->schema().column(0).type, DataType::kInt64);
  EXPECT_EQ((*plan)->schema().column(1).type, DataType::kDouble);
  EXPECT_EQ((*plan)->schema().column(1).name, "x2");
}

TEST(PlanTest, ProjectRejectsBadShapes) {
  std::vector<std::unique_ptr<Expr>> exprs;
  exprs.push_back(Col("id"));
  EXPECT_FALSE(
      ProjectPlan::Create(EmpScan(), std::move(exprs), {"a", "b"}).ok());
  EXPECT_FALSE(ProjectPlan::Create(EmpScan(), {}, {}).ok());
}

// ------------------------------------------------------------------ Join

TEST(PlanTest, JoinConcatenatesSchemas) {
  auto join = JoinPlan::Create(EmpScan(), EmpScan(), nullptr);
  ASSERT_TRUE(join.ok());
  EXPECT_EQ((*join)->schema().num_columns(), 6u);
  EXPECT_EQ((*join)->predicate(), nullptr);
  EXPECT_TRUE((*join)->EquiKeys().empty());
}

TEST(PlanTest, JoinExtractsEquiKeys) {
  auto join = JoinPlan::Create(
      EmpScan(), EmpScan(),
      And(Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(0, DataType::kInt64),
                       Expr::ColumnIndex(3, DataType::kInt64)),
          Expr::Binary(BinaryOp::kGt, Expr::ColumnIndex(2, DataType::kDouble),
                       Lit(1.0))));
  ASSERT_TRUE(join.ok());
  const auto keys = (*join)->EquiKeys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (std::pair<size_t, size_t>{0, 0}));
}

TEST(PlanTest, JoinEquiKeysNormalizeSideOrder) {
  // right-col = left-col still yields (left, right).
  auto join = JoinPlan::Create(
      EmpScan(), EmpScan(),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(4, DataType::kString),
                   Expr::ColumnIndex(1, DataType::kString)));
  ASSERT_TRUE(join.ok());
  const auto keys = (*join)->EquiKeys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (std::pair<size_t, size_t>{1, 1}));
}

TEST(PlanTest, JoinSameSideEqualityIsNotAKey) {
  auto join = JoinPlan::Create(
      EmpScan(), EmpScan(),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(0, DataType::kInt64),
                   Expr::ColumnIndex(2, DataType::kDouble)));
  ASSERT_TRUE(join.ok());
  EXPECT_TRUE((*join)->EquiKeys().empty());
}

// ------------------------------------------------------------- Set ops

TEST(PlanTest, UnionRequiresCompatibleShapes) {
  EXPECT_TRUE(UnionPlan::Create(EmpScan(), EmpScan()).ok());
  Schema narrow({{"id", DataType::kInt64}});
  EXPECT_FALSE(
      UnionPlan::Create(EmpScan(), ScanPlan::Create("t", narrow)).ok());
  Schema retyped({{"id", DataType::kString},
                  {"dept", DataType::kString},
                  {"salary", DataType::kDouble}});
  EXPECT_FALSE(
      UnionPlan::Create(EmpScan(), ScanPlan::Create("t", retyped)).ok());
  EXPECT_FALSE(
      DifferencePlan::Create(EmpScan(), ScanPlan::Create("t", narrow)).ok());
}

// ------------------------------------------------------------- Aggregate

TEST(PlanTest, AggregateSchemaAndTypeRules) {
  std::vector<std::unique_ptr<Expr>> groups;
  groups.push_back(Col("dept"));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kCount, nullptr, "n"});
  aggs.push_back({AggFunc::kSum, Col("salary"), "total"});
  aggs.push_back({AggFunc::kAvg, Col("id"), "avg_id"});
  aggs.push_back({AggFunc::kMin, Col("dept"), "first_dept"});
  auto plan = AggregatePlan::Create(EmpScan(), std::move(groups), {"dept"},
                                    std::move(aggs));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const Schema& s = (*plan)->schema();
  EXPECT_EQ(s.column(0).type, DataType::kString);   // Group.
  EXPECT_EQ(s.column(1).type, DataType::kInt64);    // COUNT.
  EXPECT_EQ(s.column(2).type, DataType::kDouble);   // SUM of double.
  EXPECT_EQ(s.column(3).type, DataType::kDouble);   // AVG always double.
  EXPECT_EQ(s.column(4).type, DataType::kString);   // MIN keeps arg type.
}

TEST(PlanTest, AggregateRejectsBadSpecs) {
  // SUM of a string.
  std::vector<AggSpec> bad_sum;
  bad_sum.push_back({AggFunc::kSum, Col("dept"), "s"});
  EXPECT_FALSE(
      AggregatePlan::Create(EmpScan(), {}, {}, std::move(bad_sum)).ok());
  // Non-COUNT without argument.
  std::vector<AggSpec> no_arg;
  no_arg.push_back({AggFunc::kMax, nullptr, "m"});
  EXPECT_FALSE(
      AggregatePlan::Create(EmpScan(), {}, {}, std::move(no_arg)).ok());
  // Entirely empty output.
  EXPECT_FALSE(AggregatePlan::Create(EmpScan(), {}, {}, {}).ok());
}

// ----------------------------------------------------------------- Sort

TEST(PlanTest, SortBindsKeys) {
  std::vector<SortKey> keys;
  keys.push_back({Col("salary"), true});
  EXPECT_TRUE(SortPlan::Create(EmpScan(), std::move(keys)).ok());
  EXPECT_FALSE(SortPlan::Create(EmpScan(), {}).ok());
  std::vector<SortKey> bad;
  bad.push_back({Col("ghost"), false});
  EXPECT_FALSE(SortPlan::Create(EmpScan(), std::move(bad)).ok());
}

// ----------------------------------------------------- TransitiveClosure

TEST(PlanTest, TransitiveClosureRequiresBinaryUniformSchema) {
  Schema pair({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  EXPECT_TRUE(
      TransitiveClosurePlan::Create(ScanPlan::Create("e", pair)).ok());
  EXPECT_FALSE(TransitiveClosurePlan::Create(EmpScan()).ok());
  Schema mixed({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_FALSE(
      TransitiveClosurePlan::Create(ScanPlan::Create("e", mixed)).ok());
}

// ------------------------------------------------------------ Structure

TEST(PlanTest, CloneIsDeepAndEqualShaped) {
  auto select = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kGt, Col("salary"), Lit(10.0)));
  ASSERT_TRUE(select.ok());
  auto join = JoinPlan::Create(std::move(*select), EmpScan(), nullptr);
  ASSERT_TRUE(join.ok());
  auto clone = (*join)->Clone();
  EXPECT_EQ(clone->ToString(), (*join)->ToString());
  EXPECT_EQ(clone->TreeSize(), (*join)->TreeSize());
  EXPECT_NE(clone.get(), join->get());
  EXPECT_NE(clone->child(0), (*join)->child(0));
}

TEST(PlanTest, TakeAndSetChild) {
  auto limit = LimitPlan::Create(EmpScan(), 5);
  auto taken = limit->TakeChild(0);
  EXPECT_EQ(taken->kind(), PlanKind::kScan);
  limit->SetChild(0, ScanPlan::Create("other", EmpSchema()));
  EXPECT_EQ(static_cast<const ScanPlan*>(limit->child())->table(), "other");
}

TEST(PlanTest, ToStringShowsTreeShape) {
  auto select = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kGt, Col("salary"), Lit(10.0)));
  ASSERT_TRUE(select.ok());
  const std::string rendered = (*select)->ToString();
  EXPECT_NE(rendered.find("Select"), std::string::npos);
  EXPECT_NE(rendered.find("Scan emp"), std::string::npos);
  // Child indented under parent.
  EXPECT_LT(rendered.find("Select"), rendered.find("Scan"));
}

TEST(PlanTest, DistinctAndLimitPreserveSchema) {
  auto distinct = DistinctPlan::Create(EmpScan());
  EXPECT_EQ(distinct->schema(), EmpSchema());
  auto limit = LimitPlan::Create(std::move(distinct), 3);
  EXPECT_EQ(limit->schema(), EmpSchema());
  EXPECT_EQ(limit->limit(), 3u);
}

}  // namespace
}  // namespace prisma::algebra
