#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algebra/expr.h"
#include "algebra/plan.h"
#include "common/logging.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "gdh/data_dictionary.h"
#include "gdh/distributed_plan.h"
#include "gdh/fragmentation.h"
#include "gdh/lock_manager.h"
#include "gdh/optimizer.h"
#include "storage/relation.h"

namespace prisma::gdh {
namespace {

using algebra::BinaryOp;
using algebra::Col;
using algebra::Expr;
using algebra::JoinPlan;
using algebra::Lit;
using algebra::Plan;
using algebra::PlanKind;
using algebra::ScanPlan;
using algebra::SelectPlan;

// ------------------------------------------------------------ Fragmenter

TEST(FragmenterTest, HashIsDeterministicAndInRange) {
  FragmentationSpec spec;
  spec.strategy = sql::FragmentStrategy::kHash;
  spec.column = 0;
  spec.num_fragments = 8;
  Fragmenter f(spec);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Tuple t({Value::Int(rng.UniformInt(-1000, 1000)), Value::Int(0)});
    const int a = f.FragmentOf(t).value();
    const int b = f.FragmentOf(t).value();
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 8);
    // FragmentsForKey agrees with FragmentOf.
    EXPECT_EQ(f.FragmentsForKey(t.at(0)), std::vector<int>{a});
  }
}

TEST(FragmenterTest, HashSpreadsKeys) {
  FragmentationSpec spec;
  spec.strategy = sql::FragmentStrategy::kHash;
  spec.num_fragments = 4;
  Fragmenter f(spec);
  std::set<int> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(f.FragmentOf(Tuple({Value::Int(i)})).value());
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(FragmenterTest, RoundRobinCycles) {
  FragmentationSpec spec;
  spec.strategy = sql::FragmentStrategy::kRoundRobin;
  spec.num_fragments = 3;
  Fragmenter f(spec);
  Tuple t({Value::Int(7)});
  EXPECT_EQ(f.FragmentOf(t).value(), 0);
  EXPECT_EQ(f.FragmentOf(t).value(), 1);
  EXPECT_EQ(f.FragmentOf(t).value(), 2);
  EXPECT_EQ(f.FragmentOf(t).value(), 0);
  // Every fragment may hold any key.
  EXPECT_EQ(f.FragmentsForKey(Value::Int(7)).size(), 3u);
}

TEST(FragmenterTest, RangeWithExplicitBoundaries) {
  FragmentationSpec spec;
  spec.strategy = sql::FragmentStrategy::kRange;
  spec.num_fragments = 3;
  spec.boundaries = {Value::Int(10), Value::Int(20)};
  Fragmenter f(spec);
  EXPECT_EQ(f.FragmentOf(Tuple({Value::Int(5)})).value(), 0);
  EXPECT_EQ(f.FragmentOf(Tuple({Value::Int(10)})).value(), 1);
  EXPECT_EQ(f.FragmentOf(Tuple({Value::Int(19)})).value(), 1);
  EXPECT_EQ(f.FragmentOf(Tuple({Value::Int(99)})).value(), 2);
}

TEST(FragmenterTest, RangeDefaultBoundariesCoverDomain) {
  FragmentationSpec spec;
  spec.strategy = sql::FragmentStrategy::kRange;
  spec.num_fragments = 4;
  Fragmenter f(spec);
  EXPECT_EQ(f.spec().boundaries.size(), 3u);
  EXPECT_EQ(f.FragmentOf(Tuple({Value::Int(0)})).value(), 0);
  EXPECT_EQ(
      f.FragmentOf(Tuple({Value::Int(kDefaultRangeDomain - 1)})).value(), 3);
}

TEST(FragmenterTest, NullKeysGoToFragmentZero) {
  FragmentationSpec spec;
  spec.strategy = sql::FragmentStrategy::kHash;
  spec.num_fragments = 4;
  Fragmenter f(spec);
  EXPECT_EQ(f.FragmentOf(Tuple({Value::Null()})).value(), 0);
}

TEST(FragmenterTest, FragmentNames) {
  EXPECT_EQ(FragmentName("emp", 3), "emp#3");
}

// --------------------------------------------------------- DataDictionary

TEST(DataDictionaryTest, CreateGetDrop) {
  DataDictionary dict;
  Schema schema({{"id", DataType::kInt64}});
  FragmentationSpec spec;
  spec.num_fragments = 4;
  auto info = dict.CreateTable("emp", schema, spec);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->fragments.size(), 4u);
  EXPECT_EQ((*info)->fragments[2].name, "emp#2");
  EXPECT_TRUE(dict.HasTable("emp"));
  EXPECT_EQ(dict.GetTableSchema("emp")->num_columns(), 1u);

  EXPECT_EQ(dict.CreateTable("emp", schema, spec).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(dict.DropTable("emp").ok());
  EXPECT_FALSE(dict.HasTable("emp"));
  EXPECT_EQ(dict.DropTable("emp").code(), StatusCode::kNotFound);
}

TEST(DataDictionaryTest, RowCountsAggregate) {
  DataDictionary dict;
  FragmentationSpec spec;
  spec.num_fragments = 2;
  auto info = dict.CreateTable("t", Schema({{"x", DataType::kInt64}}), spec);
  ASSERT_TRUE(info.ok());
  (*info)->fragments[0].row_count = 10;
  (*info)->fragments[1].row_count = 5;
  EXPECT_EQ((*info)->TotalRows(), 15u);
}

TEST(DataDictionaryTest, IndexRegistration) {
  DataDictionary dict;
  FragmentationSpec spec;
  dict.CreateTable("t", Schema({{"x", DataType::kInt64}}), spec).value();
  EXPECT_TRUE(dict.AddIndex("t", IndexInfo{"i1", {0}, false}).ok());
  EXPECT_EQ(dict.AddIndex("t", IndexInfo{"i1", {0}, true}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(dict.AddIndex("ghost", IndexInfo{"i2", {0}, false}).ok());
}

// ------------------------------------------------------------ LockManager

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  int granted = 0;
  lm.Acquire(1, "r", LockMode::kShared, [&](Status s) {
    EXPECT_TRUE(s.ok());
    ++granted;
  });
  lm.Acquire(2, "r", LockMode::kShared, [&](Status s) {
    EXPECT_TRUE(s.ok());
    ++granted;
  });
  EXPECT_EQ(granted, 2);
  EXPECT_TRUE(lm.Holds(1, "r"));
  EXPECT_TRUE(lm.Holds(2, "r"));
}

TEST(LockManagerTest, ExclusiveBlocksUntilRelease) {
  LockManager lm;
  bool second_granted = false;
  lm.Acquire(1, "r", LockMode::kExclusive, [](Status s) {
    EXPECT_TRUE(s.ok());
  });
  lm.Acquire(2, "r", LockMode::kExclusive, [&](Status s) {
    EXPECT_TRUE(s.ok());
    second_granted = true;
  });
  EXPECT_FALSE(second_granted);
  EXPECT_EQ(lm.waits(), 1u);
  lm.ReleaseAll(1);
  EXPECT_TRUE(second_granted);
  EXPECT_TRUE(lm.Holds(2, "r"));
}

TEST(LockManagerTest, SharedReaderBlocksWriterNotReaders) {
  LockManager lm;
  bool writer = false;
  lm.Acquire(1, "r", LockMode::kShared, [](Status) {});
  lm.Acquire(2, "r", LockMode::kExclusive, [&](Status s) {
    EXPECT_TRUE(s.ok());
    writer = true;
  });
  EXPECT_FALSE(writer);
  // FIFO fairness: a reader arriving behind the writer waits too.
  bool late_reader = false;
  lm.Acquire(3, "r", LockMode::kShared, [&](Status) { late_reader = true; });
  EXPECT_FALSE(late_reader);
  lm.ReleaseAll(1);
  EXPECT_TRUE(writer);
  EXPECT_FALSE(late_reader);
  lm.ReleaseAll(2);
  EXPECT_TRUE(late_reader);
}

TEST(LockManagerTest, ReacquireAndUpgrade) {
  LockManager lm;
  int calls = 0;
  lm.Acquire(1, "r", LockMode::kShared, [&](Status) { ++calls; });
  lm.Acquire(1, "r", LockMode::kShared, [&](Status) { ++calls; });
  // Lone-holder upgrade succeeds immediately.
  lm.Acquire(1, "r", LockMode::kExclusive, [&](Status s) {
    EXPECT_TRUE(s.ok());
    ++calls;
  });
  EXPECT_EQ(calls, 3);
  // X holder re-requesting S is a no-op grant.
  lm.Acquire(1, "r", LockMode::kShared, [&](Status s) {
    EXPECT_TRUE(s.ok());
    ++calls;
  });
  EXPECT_EQ(calls, 4);
}

TEST(LockManagerTest, DeadlockVictimIsRequester) {
  LockManager lm;
  lm.Acquire(1, "a", LockMode::kExclusive, [](Status) {});
  lm.Acquire(2, "b", LockMode::kExclusive, [](Status) {});
  // 1 waits for b (held by 2).
  bool t1_waiting_ok = false;
  lm.Acquire(1, "b", LockMode::kExclusive,
             [&](Status s) { t1_waiting_ok = s.ok(); });
  // 2 requesting a would close the cycle: aborted.
  Status t2_status;
  lm.Acquire(2, "a", LockMode::kExclusive, [&](Status s) { t2_status = s; });
  EXPECT_EQ(t2_status.code(), StatusCode::kAborted);
  EXPECT_EQ(lm.deadlocks_detected(), 1u);
  // Victim releases; txn 1 proceeds.
  lm.ReleaseAll(2);
  EXPECT_TRUE(t1_waiting_ok);
}

TEST(LockManagerTest, ThreeWayDeadlockDetected) {
  LockManager lm;
  lm.Acquire(1, "a", LockMode::kExclusive, [](Status) {});
  lm.Acquire(2, "b", LockMode::kExclusive, [](Status) {});
  lm.Acquire(3, "c", LockMode::kExclusive, [](Status) {});
  lm.Acquire(1, "b", LockMode::kExclusive, [](Status) {});
  lm.Acquire(2, "c", LockMode::kExclusive, [](Status) {});
  Status s3;
  lm.Acquire(3, "a", LockMode::kExclusive, [&](Status s) { s3 = s; });
  EXPECT_EQ(s3.code(), StatusCode::kAborted);
}

TEST(LockManagerTest, ReleaseDropsWaitingRequests) {
  LockManager lm;
  lm.Acquire(1, "r", LockMode::kExclusive, [](Status) {});
  bool fired = false;
  lm.Acquire(2, "r", LockMode::kExclusive, [&](Status) { fired = true; });
  lm.ReleaseAll(2);  // Waiter withdrawn before grant.
  lm.ReleaseAll(1);
  EXPECT_FALSE(fired);
  EXPECT_EQ(lm.num_locked_resources(), 0u);
}

// -------------------------------------------------------------- Optimizer

Schema EmpSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"dept", DataType::kString},
                 {"salary", DataType::kInt64}});
}

std::unique_ptr<Plan> EmpScan() { return ScanPlan::Create("emp", EmpSchema()); }

TEST(OptimizerTest, PushesSelectionBelowJoin) {
  // Select(salary > 10) over Join(emp, emp on dept).
  auto join = JoinPlan::Create(
      EmpScan(), EmpScan(),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(1, DataType::kString),
                   Expr::ColumnIndex(4, DataType::kString)));
  ASSERT_TRUE(join.ok());
  auto select = SelectPlan::Create(
      std::move(*join),
      Expr::Binary(BinaryOp::kGt, Expr::ColumnIndex(2, DataType::kInt64),
                   Lit(int64_t{10})));
  ASSERT_TRUE(select.ok());

  Optimizer optimizer(nullptr);
  OptimizerReport report;
  auto optimized = optimizer.Optimize(std::move(*select), &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_GE(report.selections_pushed, 1);
  // Top node is now the join; the selection sits on the left scan.
  EXPECT_EQ((*optimized)->kind(), PlanKind::kJoin);
  EXPECT_EQ((*optimized)->child(0)->kind(), PlanKind::kSelect);
  EXPECT_LT(report.estimated_flow_after, report.estimated_flow_before);
}

TEST(OptimizerTest, PushesRightSideSelectionWithRemap) {
  auto join = JoinPlan::Create(EmpScan(), EmpScan(), nullptr);
  ASSERT_TRUE(join.ok());
  // Column 4 = right scan's dept.
  auto select = SelectPlan::Create(
      std::move(*join),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(4, DataType::kString),
                   Lit(std::string("x"))));
  ASSERT_TRUE(select.ok());
  Optimizer optimizer(nullptr);
  auto optimized = optimizer.Optimize(std::move(*select));
  ASSERT_TRUE(optimized.ok());
  ASSERT_EQ((*optimized)->kind(), PlanKind::kJoin);
  ASSERT_EQ((*optimized)->child(1)->kind(), PlanKind::kSelect);
  // The remapped predicate references the right scan's column 1.
  const auto& pushed =
      static_cast<const SelectPlan&>(*(*optimized)->child(1));
  std::vector<size_t> cols;
  pushed.predicate().CollectColumnIndexes(&cols);
  EXPECT_EQ(cols, (std::vector<size_t>{1}));
}

TEST(OptimizerTest, MixedConjunctBecomesJoinPredicate) {
  auto join = JoinPlan::Create(EmpScan(), EmpScan(), nullptr);
  ASSERT_TRUE(join.ok());
  EXPECT_TRUE(static_cast<JoinPlan&>(**join).EquiKeys().empty());
  auto select = SelectPlan::Create(
      std::move(*join),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(0, DataType::kInt64),
                   Expr::ColumnIndex(3, DataType::kInt64)));
  ASSERT_TRUE(select.ok());
  Optimizer optimizer(nullptr);
  auto optimized = optimizer.Optimize(std::move(*select));
  ASSERT_TRUE(optimized.ok());
  ASSERT_EQ((*optimized)->kind(), PlanKind::kJoin);
  // The equality conjunct became a hash-join key.
  EXPECT_EQ(static_cast<const JoinPlan&>(**optimized).EquiKeys().size(), 1u);
}

TEST(OptimizerTest, RewritePreservesResults) {
  // Property: an optimized plan returns the same rows.
  storage::Relation emp("emp", EmpSchema());
  const char* depts[] = {"a", "b", "c"};
  for (int i = 0; i < 30; ++i) {
    emp.Insert(Tuple({Value::Int(i), Value::String(depts[i % 3]),
                      Value::Int(100 * (i % 7))}))
        .value();
  }
  exec::MapTableResolver resolver;
  resolver.Register("emp", &emp);

  auto build = [&]() -> std::unique_ptr<Plan> {
    auto j1 = JoinPlan::Create(
        EmpScan(), EmpScan(),
        Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(1, DataType::kString),
                     Expr::ColumnIndex(4, DataType::kString)));
    auto j2 = JoinPlan::Create(
        std::move(*j1), EmpScan(),
        Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(3, DataType::kInt64),
                     Expr::ColumnIndex(6, DataType::kInt64)));
    auto sel = SelectPlan::Create(
        std::move(*j2),
        algebra::And(
            Expr::Binary(BinaryOp::kLt, Expr::ColumnIndex(0, DataType::kInt64),
                         Lit(int64_t{5})),
            Expr::Binary(BinaryOp::kGt, Expr::ColumnIndex(8, DataType::kInt64),
                         Lit(int64_t{100}))));
    return std::move(*sel);
  };

  exec::Executor baseline_exec(&resolver, exec::ExecOptions());
  auto baseline = baseline_exec.Execute(*build());
  ASSERT_TRUE(baseline.ok());

  Optimizer optimizer(nullptr);
  OptimizerReport report;
  auto optimized = optimizer.Optimize(build(), &report);
  ASSERT_TRUE(optimized.ok());
  exec::Executor optimized_exec(&resolver, exec::ExecOptions());
  auto rewritten = optimized_exec.Execute(**optimized);
  ASSERT_TRUE(rewritten.ok());

  auto canon = [](std::vector<Tuple> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(canon(*baseline), canon(*rewritten));
  EXPECT_FALSE(baseline->empty());
  EXPECT_GE(report.selections_pushed, 2);
}

TEST(OptimizerTest, JoinReorderPutsSmallTableFirst) {
  DataDictionary dict;
  FragmentationSpec spec;
  dict.CreateTable("big", EmpSchema(), spec).value();
  dict.CreateTable("small", EmpSchema(), spec).value();
  dict.CreateTable("mid", EmpSchema(), spec).value();
  dict.GetTable("big").value()->fragments[0].row_count = 10000;
  dict.GetTable("small").value()->fragments[0].row_count = 10;
  dict.GetTable("mid").value()->fragments[0].row_count = 1000;

  // big JOIN mid JOIN small, chained on id.
  auto j1 = JoinPlan::Create(
      ScanPlan::Create("big", EmpSchema()), ScanPlan::Create("mid", EmpSchema()),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(0, DataType::kInt64),
                   Expr::ColumnIndex(3, DataType::kInt64)));
  ASSERT_TRUE(j1.ok());
  auto j2 = JoinPlan::Create(
      std::move(*j1), ScanPlan::Create("small", EmpSchema()),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(3, DataType::kInt64),
                   Expr::ColumnIndex(6, DataType::kInt64)));
  ASSERT_TRUE(j2.ok());

  Optimizer optimizer(&dict);
  OptimizerReport report;
  const double flow_before = optimizer.EstimateFlow(**j2);
  auto optimized = optimizer.Optimize(std::move(*j2), &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(report.joins_reordered, 1);
  EXPECT_LT(optimizer.EstimateFlow(**optimized), flow_before);
  // Schema restored to the original order for the parent.
  EXPECT_EQ((*optimized)->schema().num_columns(), 9u);
  EXPECT_EQ((*optimized)->kind(), PlanKind::kProject);
}

TEST(OptimizerTest, ReorderedJoinPreservesResults) {
  storage::Relation r1("r1", EmpSchema());
  storage::Relation r2("r2", EmpSchema());
  storage::Relation r3("r3", EmpSchema());
  Rng rng(7);
  auto fill = [&](storage::Relation& r, int n) {
    for (int i = 0; i < n; ++i) {
      r.Insert(Tuple({Value::Int(rng.UniformInt(0, 8)), Value::String("d"),
                      Value::Int(rng.UniformInt(0, 5))}))
          .value();
    }
  };
  fill(r1, 20);
  fill(r2, 8);
  fill(r3, 14);
  exec::MapTableResolver resolver;
  resolver.Register("r1", &r1);
  resolver.Register("r2", &r2);
  resolver.Register("r3", &r3);
  DataDictionary dict;
  FragmentationSpec spec;
  dict.CreateTable("r1", EmpSchema(), spec).value()->fragments[0].row_count = 20;
  dict.CreateTable("r2", EmpSchema(), spec).value()->fragments[0].row_count = 8;
  dict.CreateTable("r3", EmpSchema(), spec).value()->fragments[0].row_count = 14;

  auto build = [&]() -> std::unique_ptr<Plan> {
    auto j1 = JoinPlan::Create(
        ScanPlan::Create("r1", EmpSchema()), ScanPlan::Create("r2", EmpSchema()),
        Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(0, DataType::kInt64),
                     Expr::ColumnIndex(3, DataType::kInt64)));
    auto j2 = JoinPlan::Create(
        std::move(*j1), ScanPlan::Create("r3", EmpSchema()),
        Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(5, DataType::kInt64),
                     Expr::ColumnIndex(8, DataType::kInt64)));
    return std::move(*j2);
  };
  exec::Executor e1(&resolver, exec::ExecOptions());
  auto baseline = e1.Execute(*build());
  ASSERT_TRUE(baseline.ok());
  Optimizer optimizer(&dict);
  auto optimized = optimizer.Optimize(build());
  ASSERT_TRUE(optimized.ok());
  exec::Executor e2(&resolver, exec::ExecOptions());
  auto rewritten = e2.Execute(**optimized);
  ASSERT_TRUE(rewritten.ok());
  auto canon = [](std::vector<Tuple> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(canon(*baseline), canon(*rewritten));
  EXPECT_FALSE(baseline->empty());
}

TEST(OptimizerTest, DetectsCommonSubtrees) {
  // Join(X, X) where X = Distinct(Scan) duplicated.
  auto left = algebra::DistinctPlan::Create(EmpScan());
  auto right = algebra::DistinctPlan::Create(EmpScan());
  auto join = JoinPlan::Create(std::move(left), std::move(right), nullptr);
  ASSERT_TRUE(join.ok());
  Optimizer optimizer(nullptr);
  OptimizerReport report;
  auto optimized = optimizer.Optimize(std::move(*join), &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_GE(report.common_subtrees, 1);
  EXPECT_TRUE(report.enable_subtree_cache);
}

TEST(OptimizerTest, RuleTogglesDisableRewrites) {
  OptimizerRules off;
  off.push_selections = false;
  off.reorder_joins = false;
  off.detect_common_subexpressions = false;
  auto join = JoinPlan::Create(EmpScan(), EmpScan(), nullptr);
  ASSERT_TRUE(join.ok());
  auto select = SelectPlan::Create(
      std::move(*join),
      Expr::Binary(BinaryOp::kGt, Expr::ColumnIndex(0, DataType::kInt64),
                   Lit(int64_t{3})));
  ASSERT_TRUE(select.ok());
  Optimizer optimizer(nullptr, off);
  OptimizerReport report;
  auto optimized = optimizer.Optimize(std::move(*select), &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(report.selections_pushed, 0);
  EXPECT_EQ((*optimized)->kind(), PlanKind::kSelect);  // Untouched.
}

TEST(OptimizerTest, EstimatesUseDictionaryCardinalities) {
  DataDictionary dict;
  FragmentationSpec spec;
  dict.CreateTable("emp", EmpSchema(), spec).value()->fragments[0].row_count =
      5000;
  Optimizer optimizer(&dict);
  EXPECT_DOUBLE_EQ(optimizer.EstimateRows(*EmpScan()), 5000);
  auto select = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kEq,
                              Expr::ColumnIndex(0, DataType::kInt64),
                              Lit(int64_t{1})));
  ASSERT_TRUE(select.ok());
  EXPECT_DOUBLE_EQ(optimizer.EstimateRows(**select),
                   5000 * Optimizer::kEqSelectivity);
}

// -------------------------------------------------------- DistributedPlan

class SplitTest : public ::testing::Test {
 protected:
  SplitTest() {
    FragmentationSpec spec;
    spec.strategy = sql::FragmentStrategy::kHash;
    spec.num_fragments = 4;
    dict_.CreateTable("emp", EmpSchema(), spec).value();
  }
  DataDictionary dict_;
};

TEST_F(SplitTest, SelectOverScanBecomesLocalPart) {
  auto select = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kGt,
                              Expr::ColumnIndex(2, DataType::kInt64),
                              Lit(int64_t{100})));
  ASSERT_TRUE(select.ok());
  auto split = SplitPlanForFragments(std::move(*select), dict_);
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split->parts.size(), 1u);
  EXPECT_EQ(split->parts[0].table, "emp");
  EXPECT_EQ(split->parts[0].plan->kind(), PlanKind::kSelect);
  // Global side is just the gathered scan.
  EXPECT_EQ(split->global->kind(), PlanKind::kScan);
}

TEST_F(SplitTest, JoinStaysGlobalWithTwoParts) {
  auto join = JoinPlan::Create(
      EmpScan(), EmpScan(),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(0, DataType::kInt64),
                   Expr::ColumnIndex(3, DataType::kInt64)));
  ASSERT_TRUE(join.ok());
  auto split = SplitPlanForFragments(std::move(*join), dict_);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->parts.size(), 2u);
  EXPECT_EQ(split->global->kind(), PlanKind::kJoin);
}

TEST_F(SplitTest, AggregatePushdownDecomposes) {
  std::vector<std::unique_ptr<Expr>> groups;
  groups.push_back(Expr::ColumnIndex(1, DataType::kString));
  std::vector<algebra::AggSpec> aggs;
  aggs.push_back({algebra::AggFunc::kCount, nullptr, "n"});
  aggs.push_back({algebra::AggFunc::kAvg,
                  Expr::ColumnIndex(2, DataType::kInt64), "avg_sal"});
  auto agg = algebra::AggregatePlan::Create(EmpScan(), std::move(groups),
                                            {"dept"}, std::move(aggs));
  ASSERT_TRUE(agg.ok());
  auto split = SplitPlanForFragments(std::move(*agg), dict_);
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(split->pushed_aggregate);
  ASSERT_EQ(split->parts.size(), 1u);
  // The local part aggregates per fragment.
  EXPECT_EQ(split->parts[0].plan->kind(), PlanKind::kAggregate);
  // The global side re-aggregates and projects the AVG division.
  EXPECT_EQ(split->global->kind(), PlanKind::kProject);
  EXPECT_EQ(split->global->schema().num_columns(), 3u);
  EXPECT_EQ(split->global->schema().column(2).name, "avg_sal");
}

class ColocatedSplitTest : public ::testing::Test {
 protected:
  ColocatedSplitTest() {
    FragmentationSpec spec;
    spec.strategy = sql::FragmentStrategy::kHash;
    spec.column = 0;
    spec.num_fragments = 4;
    TableInfo* a = dict_.CreateTable("a", EmpSchema(), spec).value();
    TableInfo* b = dict_.CreateTable("b", EmpSchema(), spec).value();
    for (int i = 0; i < 4; ++i) {
      a->fragments[i].pe = i + 1;
      b->fragments[i].pe = i + 1;  // Aligned with a.
    }
  }

  std::unique_ptr<Plan> KeyJoin() {
    auto join = JoinPlan::Create(
        ScanPlan::Create("a", EmpSchema()), ScanPlan::Create("b", EmpSchema()),
        Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(0, DataType::kInt64),
                     Expr::ColumnIndex(3, DataType::kInt64)));
    PRISMA_CHECK(join.ok());
    return std::move(join).value();
  }

  DataDictionary dict_;
};

TEST_F(ColocatedSplitTest, KeyJoinBecomesColocatedPart) {
  auto split = SplitPlanForFragments(KeyJoin(), dict_);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->colocated_joins, 1);
  ASSERT_EQ(split->parts.size(), 1u);
  EXPECT_EQ(split->parts[0].table, "a");
  EXPECT_EQ(split->parts[0].second_table, "b");
  EXPECT_EQ(split->parts[0].plan->kind(), PlanKind::kJoin);
  EXPECT_EQ(split->global->kind(), PlanKind::kScan);
}

TEST_F(ColocatedSplitTest, DisabledFlagsFallBackToGather) {
  auto split = SplitPlanForFragments(KeyJoin(), dict_, false, false);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->colocated_joins, 0);
  EXPECT_EQ(split->exchange_joins, 0);
  EXPECT_EQ(split->parts.size(), 2u);
  EXPECT_EQ(split->global->kind(), PlanKind::kJoin);
}

TEST_F(ColocatedSplitTest, ColocationDisabledLowersToExchange) {
  // With co-location off but exchanges on, the key join still avoids a
  // coordinator gather: it becomes a streamed exchange part.
  auto split = SplitPlanForFragments(KeyJoin(), dict_, false, true);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->colocated_joins, 0);
  EXPECT_EQ(split->exchange_joins, 1);
  ASSERT_EQ(split->parts.size(), 1u);
  ASSERT_NE(split->parts[0].exchange, nullptr);
}

TEST_F(ColocatedSplitTest, NonKeyJoinLowersToExchange) {
  // Join on salary (column 2), not the fragmentation key: neither side is
  // fragmented on its join key, so co-location is impossible — but the
  // exchange layer can still repartition both sides on salary.
  auto join = JoinPlan::Create(
      ScanPlan::Create("a", EmpSchema()), ScanPlan::Create("b", EmpSchema()),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(2, DataType::kInt64),
                   Expr::ColumnIndex(5, DataType::kInt64)));
  ASSERT_TRUE(join.ok());
  auto split = SplitPlanForFragments(std::move(*join), dict_);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->colocated_joins, 0);
  EXPECT_EQ(split->exchange_joins, 1);
  ASSERT_EQ(split->parts.size(), 1u);
  ASSERT_NE(split->parts[0].exchange, nullptr);
}

TEST_F(ColocatedSplitTest, NonKeyJoinStaysGlobalWithExchangesDisabled) {
  auto join = JoinPlan::Create(
      ScanPlan::Create("a", EmpSchema()), ScanPlan::Create("b", EmpSchema()),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(2, DataType::kInt64),
                   Expr::ColumnIndex(5, DataType::kInt64)));
  ASSERT_TRUE(join.ok());
  auto split = SplitPlanForFragments(std::move(*join), dict_,
                                     /*colocated_joins=*/true,
                                     /*exchange_joins=*/false);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->colocated_joins, 0);
  EXPECT_EQ(split->exchange_joins, 0);
  EXPECT_EQ(split->parts.size(), 2u);
}

TEST_F(ColocatedSplitTest, MisalignedPlacementStaysGlobal) {
  dict_.GetTable("b").value()->fragments[2].pe = 9;  // Break alignment.
  auto split = SplitPlanForFragments(KeyJoin(), dict_);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->colocated_joins, 0);
}

TEST_F(ColocatedSplitTest, SelectionsBelowJoinStayInPart) {
  auto left = SelectPlan::Create(
      ScanPlan::Create("a", EmpSchema()),
      Expr::Binary(BinaryOp::kGt, Expr::ColumnIndex(2, DataType::kInt64),
                   Lit(int64_t{10})));
  ASSERT_TRUE(left.ok());
  auto join = JoinPlan::Create(
      std::move(*left), ScanPlan::Create("b", EmpSchema()),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(0, DataType::kInt64),
                   Expr::ColumnIndex(3, DataType::kInt64)));
  ASSERT_TRUE(join.ok());
  auto split = SplitPlanForFragments(std::move(*join), dict_);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->colocated_joins, 1);
  ASSERT_EQ(split->parts.size(), 1u);
  // The selection travels with the co-located join plan.
  EXPECT_EQ(split->parts[0].plan->child(0)->kind(), PlanKind::kSelect);
}

TEST_F(SplitTest, UnknownTableStaysGlobal) {
  auto scan = ScanPlan::Create("not_in_dictionary", EmpSchema());
  auto split = SplitPlanForFragments(std::move(scan), dict_);
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(split->parts.empty());
  EXPECT_EQ(split->global->kind(), PlanKind::kScan);
}

TEST_F(SplitTest, CloneWithScanRenamedRetargets) {
  auto select = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kGt,
                              Expr::ColumnIndex(0, DataType::kInt64),
                              Lit(int64_t{0})));
  ASSERT_TRUE(select.ok());
  auto renamed = CloneWithScanRenamed(**select, "emp", "emp#2");
  std::vector<std::string> tables;
  CollectScanTables(*renamed, &tables);
  EXPECT_EQ(tables, (std::vector<std::string>{"emp#2"}));
  // The original is untouched.
  tables.clear();
  CollectScanTables(**select, &tables);
  EXPECT_EQ(tables, (std::vector<std::string>{"emp"}));
}

}  // namespace
}  // namespace prisma::gdh
