#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "storage/btree_index.h"
#include "storage/hash_index.h"
#include "storage/memory_tracker.h"
#include "storage/relation.h"
#include "storage/stable_store.h"

namespace prisma::storage {
namespace {

Schema EmpSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"salary", DataType::kDouble}});
}

Tuple Emp(int64_t id, const std::string& name, double salary) {
  return Tuple({Value::Int(id), Value::String(name), Value::Double(salary)});
}

// ---------------------------------------------------------- MemoryTracker

TEST(MemoryTrackerTest, ReserveAndRelease) {
  MemoryTracker t(1000);
  EXPECT_TRUE(t.Reserve(600).ok());
  EXPECT_EQ(t.used(), 600u);
  EXPECT_EQ(t.available(), 400u);
  EXPECT_TRUE(t.Reserve(400).ok());
  Status s = t.Reserve(1);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  t.Release(500);
  EXPECT_TRUE(t.Reserve(100).ok());
  EXPECT_EQ(t.high_water(), 1000u);
}

TEST(MemoryTrackerTest, FailedReserveHasNoEffect) {
  MemoryTracker t(100);
  EXPECT_FALSE(t.Reserve(101).ok());
  EXPECT_EQ(t.used(), 0u);
}

TEST(MemoryTrackerTest, DefaultCapacityIsSixteenMegabytes) {
  MemoryTracker t;
  EXPECT_EQ(t.capacity(), 16u * 1024 * 1024);  // Paper §3.2.
}

// ---------------------------------------------------------------- Relation

TEST(RelationTest, InsertGetScan) {
  Relation r("emp", EmpSchema());
  auto id0 = r.Insert(Emp(1, "ann", 100.0));
  auto id1 = r.Insert(Emp(2, "bob", 200.0));
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(r.num_tuples(), 2u);
  EXPECT_EQ(r.Get(*id0)->at(1), Value::String("ann"));

  std::vector<Tuple> seen;
  r.Scan([&](RowId, const Tuple& t) {
    seen.push_back(t);
    return true;
  });
  EXPECT_EQ(seen.size(), 2u);
}

TEST(RelationTest, InsertValidatesArityAndTypes) {
  Relation r("emp", EmpSchema());
  EXPECT_FALSE(r.Insert(Tuple({Value::Int(1)})).ok());
  EXPECT_FALSE(
      r.Insert(Tuple({Value::String("x"), Value::String("y"), Value::Int(1)}))
          .ok());
  // INT widens to DOUBLE in the salary column.
  auto id = r.Insert(Tuple({Value::Int(1), Value::String("a"), Value::Int(5)}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(r.Get(*id)->at(2).type(), DataType::kDouble);
  // NULLs are accepted in any column.
  EXPECT_TRUE(
      r.Insert(Tuple({Value::Null(), Value::Null(), Value::Null()})).ok());
}

TEST(RelationTest, DeleteAndUpdate) {
  Relation r("emp", EmpSchema());
  RowId a = r.Insert(Emp(1, "ann", 100.0)).value();
  RowId b = r.Insert(Emp(2, "bob", 200.0)).value();
  EXPECT_TRUE(r.Delete(a).ok());
  EXPECT_EQ(r.num_tuples(), 1u);
  EXPECT_FALSE(r.IsLive(a));
  EXPECT_EQ(r.Delete(a).code(), StatusCode::kNotFound);
  EXPECT_FALSE(r.Get(a).ok());

  EXPECT_TRUE(r.Update(b, Emp(2, "bob", 250.0)).ok());
  EXPECT_DOUBLE_EQ(r.Get(b)->at(2).double_value(), 250.0);
  EXPECT_EQ(r.Update(a, Emp(9, "x", 1.0)).code(), StatusCode::kNotFound);
}

TEST(RelationTest, MemoryAccounting) {
  MemoryTracker mem(10'000);
  {
    Relation r("emp", EmpSchema(), &mem);
    RowId a = r.Insert(Emp(1, "ann", 100.0)).value();
    EXPECT_GT(mem.used(), 0u);
    const size_t used_after_one = mem.used();
    r.Insert(Emp(2, "bob", 200.0)).value();
    EXPECT_GT(mem.used(), used_after_one);
    EXPECT_TRUE(r.Delete(a).ok());
    EXPECT_LT(mem.used(), used_after_one + used_after_one);
  }
  // Destructor releases everything.
  EXPECT_EQ(mem.used(), 0u);
}

TEST(RelationTest, InsertFailsWhenPeMemoryExhausted) {
  MemoryTracker mem(200);
  Relation r("emp", EmpSchema(), &mem);
  Status last;
  int inserted = 0;
  for (int i = 0; i < 100; ++i) {
    auto s = r.Insert(Emp(i, "somebody", 1.0));
    if (!s.ok()) {
      last = s.status();
      break;
    }
    ++inserted;
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(inserted, 0);
  EXPECT_EQ(r.num_tuples(), static_cast<size_t>(inserted));
}

TEST(RelationTest, CompactReclaimsSlots) {
  Relation r("emp", EmpSchema());
  for (int i = 0; i < 10; ++i) r.Insert(Emp(i, "x", 1.0)).value();
  for (RowId i = 0; i < 10; i += 2) EXPECT_TRUE(r.Delete(i).ok());
  EXPECT_EQ(r.num_tuples(), 5u);
  EXPECT_EQ(r.num_slots(), 10u);
  r.Compact();
  EXPECT_EQ(r.num_slots(), 5u);
  EXPECT_EQ(r.num_tuples(), 5u);
  // Survivors are the odd ids.
  auto all = r.AllTuples();
  for (const Tuple& t : all) EXPECT_EQ(t.at(0).int_value() % 2, 1);
}

// ---------------------------------------------------------------- HashIndex

TEST(HashIndexTest, ProbeFindsAllDuplicates) {
  Relation r("emp", EmpSchema());
  HashIndex idx("emp_name", {1});
  for (int i = 0; i < 6; ++i) {
    Tuple t = Emp(i, i % 2 == 0 ? "even" : "odd", 1.0);
    RowId row = r.Insert(t).value();
    idx.OnInsert(row, t);
  }
  auto rows = idx.Probe(Tuple({Value::String("even")}));
  EXPECT_EQ(rows.size(), 3u);
  for (RowId row : rows) {
    EXPECT_EQ(r.Get(row)->at(1), Value::String("even"));
  }
  EXPECT_TRUE(idx.Probe(Tuple({Value::String("nobody")})).empty());
}

TEST(HashIndexTest, DeleteRemovesEntry) {
  HashIndex idx("i", {0});
  Tuple t = Emp(7, "x", 1.0);
  idx.OnInsert(3, t);
  idx.OnInsert(4, Emp(7, "y", 2.0));
  idx.OnDelete(3, t);
  auto rows = idx.Probe(Tuple({Value::Int(7)}));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 4u);
  EXPECT_EQ(idx.num_entries(), 1u);
}

TEST(HashIndexTest, CompositeKey) {
  HashIndex idx("i", {0, 1});
  idx.OnInsert(1, Emp(1, "a", 1.0));
  idx.OnInsert(2, Emp(1, "b", 1.0));
  EXPECT_EQ(idx.Probe(Tuple({Value::Int(1), Value::String("a")})).size(), 1u);
  EXPECT_EQ(idx.Probe(Tuple({Value::Int(1), Value::String("b")})).size(), 1u);
  EXPECT_TRUE(idx.Probe(Tuple({Value::Int(2), Value::String("a")})).empty());
}

TEST(HashIndexTest, RebuildMatchesRelation) {
  Relation r("emp", EmpSchema());
  HashIndex idx("i", {0});
  for (int i = 0; i < 20; ++i) r.Insert(Emp(i % 5, "n", 1.0)).value();
  idx.Rebuild(r);
  EXPECT_EQ(idx.num_entries(), 20u);
  EXPECT_EQ(idx.Probe(Tuple({Value::Int(3)})).size(), 4u);
}

// ---------------------------------------------------------------- BTree

TEST(BTreeIndexTest, InsertProbeSmall) {
  BTreeIndex idx("i", {0}, 4);
  for (int i = 0; i < 10; ++i) idx.OnInsert(i, Emp(i, "x", 1.0));
  EXPECT_TRUE(idx.Validate().ok());
  for (int i = 0; i < 10; ++i) {
    auto rows = idx.Probe(Tuple({Value::Int(i)}));
    ASSERT_EQ(rows.size(), 1u) << i;
    EXPECT_EQ(rows[0], static_cast<RowId>(i));
  }
  EXPECT_TRUE(idx.Probe(Tuple({Value::Int(99)})).empty());
}

TEST(BTreeIndexTest, SplitsGrowHeight) {
  BTreeIndex idx("i", {0}, 4);
  EXPECT_EQ(idx.height(), 1);
  for (int i = 0; i < 100; ++i) idx.OnInsert(i, Emp(i, "x", 1.0));
  EXPECT_GT(idx.height(), 2);
  EXPECT_TRUE(idx.Validate().ok());
  EXPECT_EQ(idx.num_entries(), 100u);
  EXPECT_EQ(idx.num_keys(), 100u);
}

TEST(BTreeIndexTest, ScanAllInOrder) {
  BTreeIndex idx("i", {0}, 4);
  Rng rng(5);
  std::vector<int64_t> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(rng.UniformInt(0, 10'000));
  for (size_t i = 0; i < keys.size(); ++i) {
    idx.OnInsert(i, Emp(keys[i], "x", 1.0));
  }
  std::vector<int64_t> scanned;
  idx.ScanAll([&](const Tuple& key, RowId) {
    scanned.push_back(key.at(0).int_value());
    return true;
  });
  EXPECT_EQ(scanned.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
}

TEST(BTreeIndexTest, RangeScanBounds) {
  BTreeIndex idx("i", {0}, 6);
  for (int i = 0; i < 50; ++i) idx.OnInsert(i, Emp(i, "x", 1.0));
  auto collect = [&](std::optional<Tuple> lo, bool loi, std::optional<Tuple> hi,
                     bool hii) {
    std::vector<int64_t> out;
    idx.ScanRange(lo, loi, hi, hii, [&](const Tuple& key, RowId) {
      out.push_back(key.at(0).int_value());
      return true;
    });
    return out;
  };
  auto mid = collect(Tuple({Value::Int(10)}), true, Tuple({Value::Int(14)}), true);
  EXPECT_EQ(mid, (std::vector<int64_t>{10, 11, 12, 13, 14}));

  auto open_lo = collect(Tuple({Value::Int(10)}), false, Tuple({Value::Int(13)}), true);
  EXPECT_EQ(open_lo, (std::vector<int64_t>{11, 12, 13}));

  auto open_hi = collect(Tuple({Value::Int(10)}), true, Tuple({Value::Int(13)}), false);
  EXPECT_EQ(open_hi, (std::vector<int64_t>{10, 11, 12}));

  auto unbounded_lo = collect(std::nullopt, true, Tuple({Value::Int(2)}), true);
  EXPECT_EQ(unbounded_lo, (std::vector<int64_t>{0, 1, 2}));

  auto unbounded_hi = collect(Tuple({Value::Int(47)}), true, std::nullopt, true);
  EXPECT_EQ(unbounded_hi, (std::vector<int64_t>{47, 48, 49}));

  auto empty = collect(Tuple({Value::Int(60)}), true, std::nullopt, true);
  EXPECT_TRUE(empty.empty());
}

TEST(BTreeIndexTest, DuplicateKeysShareEntry) {
  BTreeIndex idx("i", {1}, 4);
  for (int i = 0; i < 9; ++i) {
    idx.OnInsert(i, Emp(i, i % 3 == 0 ? "a" : "b", 1.0));
  }
  EXPECT_EQ(idx.num_keys(), 2u);
  EXPECT_EQ(idx.num_entries(), 9u);
  EXPECT_EQ(idx.Probe(Tuple({Value::String("a")})).size(), 3u);
  EXPECT_EQ(idx.Probe(Tuple({Value::String("b")})).size(), 6u);
}

TEST(BTreeIndexTest, DeleteUnlinks) {
  BTreeIndex idx("i", {0}, 4);
  for (int i = 0; i < 30; ++i) idx.OnInsert(i, Emp(i, "x", 1.0));
  for (int i = 0; i < 30; i += 3) idx.OnDelete(i, Emp(i, "x", 1.0));
  EXPECT_TRUE(idx.Validate().ok());
  EXPECT_EQ(idx.num_keys(), 20u);
  EXPECT_TRUE(idx.Probe(Tuple({Value::Int(0)})).empty());
  EXPECT_EQ(idx.Probe(Tuple({Value::Int(1)})).size(), 1u);
  // Deleting a missing entry is a no-op.
  idx.OnDelete(999, Emp(999, "x", 1.0));
  EXPECT_EQ(idx.num_keys(), 20u);
}

/// Property test: B+-tree agrees with std::multimap under random
/// insert/delete/probe/range workloads at several node orders.
class BTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreePropertyTest, MatchesReferenceMultimap) {
  const int order = GetParam();
  BTreeIndex idx("p", {0}, order);
  std::multimap<int64_t, RowId> ref;
  Rng rng(order * 977);
  RowId next_row = 0;
  std::vector<std::pair<int64_t, RowId>> live;

  for (int step = 0; step < 3000; ++step) {
    const double op = rng.NextDouble();
    if (op < 0.6 || live.empty()) {
      const int64_t key = rng.UniformInt(0, 300);
      const RowId row = next_row++;
      idx.OnInsert(row, Emp(key, "x", 1.0));
      ref.emplace(key, row);
      live.push_back({key, row});
    } else {
      const size_t pick = rng.Uniform(live.size());
      auto [key, row] = live[pick];
      live[pick] = live.back();
      live.pop_back();
      idx.OnDelete(row, Emp(key, "x", 1.0));
      for (auto it = ref.lower_bound(key); it != ref.end() && it->first == key;
           ++it) {
        if (it->second == row) {
          ref.erase(it);
          break;
        }
      }
    }
  }
  ASSERT_TRUE(idx.Validate().ok());
  EXPECT_EQ(idx.num_entries(), ref.size());

  // Every key's row set matches.
  for (int64_t key = 0; key <= 300; ++key) {
    auto rows = idx.Probe(Tuple({Value::Int(key)}));
    std::multiset<RowId> got(rows.begin(), rows.end());
    std::multiset<RowId> want;
    for (auto it = ref.lower_bound(key); it != ref.end() && it->first == key;
         ++it) {
      want.insert(it->second);
    }
    EXPECT_EQ(got, want) << "key " << key;
  }

  // Random range scans match.
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = rng.UniformInt(0, 300);
    int64_t hi = rng.UniformInt(lo, 300);
    std::vector<RowId> got;
    idx.ScanRange(Tuple({Value::Int(lo)}), true, Tuple({Value::Int(hi)}), true,
                  [&](const Tuple&, RowId row) {
                    got.push_back(row);
                    return true;
                  });
    size_t want_count = 0;
    for (auto it = ref.lower_bound(lo); it != ref.end() && it->first <= hi;
         ++it) {
      ++want_count;
    }
    EXPECT_EQ(got.size(), want_count) << "[" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, BTreePropertyTest,
                         ::testing::Values(4, 8, 32, 128));

// ---------------------------------------------------------------- Serialize

TEST(SerializeTest, RoundTripValuesAndTuples) {
  Tuple t({Value::Null(), Value::Bool(true), Value::Int(-42),
           Value::Double(2.5), Value::String("hello world")});
  auto back = DeserializeTuple(SerializeTuple(t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(SerializeTest, RoundTripSchema) {
  Schema s({{"id", DataType::kInt64}, {"name", DataType::kString}});
  BinaryWriter w;
  w.PutSchema(s);
  BinaryReader r(w.data());
  auto back = r.GetSchema();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, s);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncatedInputFails) {
  Tuple t({Value::String("abcdef")});
  std::string bytes = SerializeTuple(t);
  auto bad = DeserializeTuple(std::string_view(bytes).substr(0, bytes.size() - 2));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, CorruptTagFails) {
  BinaryWriter w;
  w.PutU32(1);   // One value follows.
  w.PutU8(99);   // Invalid tag.
  auto bad = DeserializeTuple(w.data());
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Stable

TEST(StableStoreTest, AppendAndRead) {
  StableStore store;
  sim::SimTime cost = store.Append("wal", "record1");
  EXPECT_GT(cost, 0);
  store.Append("wal", "record2");
  const auto& records = store.ReadStream("wal");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "record1");
  EXPECT_EQ(records[1], "record2");
  EXPECT_EQ(store.stream_bytes("wal"), 14u);
  EXPECT_TRUE(store.ReadStream("nothing").empty());
}

TEST(StableStoreTest, TruncateDropsStream) {
  StableStore store;
  store.Append("wal", "x");
  store.TruncateStream("wal");
  EXPECT_TRUE(store.ReadStream("wal").empty());
  EXPECT_EQ(store.stream_bytes("wal"), 0u);
}

TEST(StableStoreTest, SnapshotsOverwrite) {
  StableStore store;
  store.WriteSnapshot("ckpt", "v1");
  store.WriteSnapshot("ckpt", "v2-longer");
  auto snap = store.ReadSnapshot("ckpt");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(*snap, "v2-longer");
  EXPECT_EQ(store.ReadSnapshot("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(StableStoreTest, CostsScaleWithSize) {
  DiskModel model;
  StableStore store(model);
  const sim::SimTime small = store.Append("wal", std::string(100, 'a'));
  const sim::SimTime big = store.Append("wal", std::string(1'000'000, 'a'));
  EXPECT_GT(big, small);
  // Every I/O pays at least the positioning time.
  EXPECT_GE(small, model.access_ns);
  // A 1 MB transfer at 1 MB/s dominates: ~1 s.
  EXPECT_GT(big, sim::kNanosPerSecond / 2);
}

TEST(StableStoreTest, DiskIsOrdersOfMagnitudeSlowerThanMemory) {
  // The quantitative core of experiment E3: a random disk I/O costs ~25 ms
  // while a main-memory tuple access costs sub-microsecond.
  DiskModel model;
  EXPECT_GT(model.IoNs(64), 1'000'000);  // > 1 ms.
}

}  // namespace
}  // namespace prisma::storage
