#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/prisma_db.h"

#include "common/logging.h"
#include "common/str_util.h"

namespace prisma::core {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.pes = 16;  // 4x4 mesh keeps tests fast; benches use 64.
  return config;
}

class PrismaDbTest : public ::testing::Test {
 protected:
  PrismaDbTest() : db_(SmallMachine()) {}

  QueryResult MustExecute(const std::string& sql) {
    auto result = db_.Execute(sql);
    PRISMA_CHECK(result.ok()) << sql << " -> " << result.status().ToString();
    return std::move(result).value();
  }

  void MakeEmp(int fragments = 4, int rows = 40) {
    MustExecute(prisma::StrFormat(
        "CREATE TABLE emp (id INT, dept STRING, salary INT) "
        "FRAGMENTED BY HASH(id) INTO %d FRAGMENTS",
        fragments));
    const char* depts[] = {"sales", "eng", "hr", "ops"};
    for (int i = 0; i < rows; ++i) {
      MustExecute(prisma::StrFormat(
          "INSERT INTO emp VALUES (%d, '%s', %d)", i, depts[i % 4],
          1000 + 10 * i));
    }
  }

  PrismaDb db_;
};

TEST_F(PrismaDbTest, CreateInsertSelectRoundTrip) {
  MakeEmp(4, 20);
  QueryResult all = MustExecute("SELECT * FROM emp");
  EXPECT_EQ(all.tuples.size(), 20u);
  EXPECT_EQ(all.schema.num_columns(), 3u);
  EXPECT_GT(all.response_time_ns, 0);

  QueryResult filtered =
      MustExecute("SELECT id FROM emp WHERE salary >= 1150 ORDER BY id");
  EXPECT_EQ(filtered.tuples.size(), 5u);
  EXPECT_EQ(filtered.tuples.front().at(0), Value::Int(15));
}

TEST_F(PrismaDbTest, DataIsActuallyFragmentedAcrossPes) {
  MakeEmp(8, 64);
  auto info = db_.gdh().dictionary().GetTable("emp");
  ASSERT_TRUE(info.ok());
  ASSERT_EQ((*info)->fragments.size(), 8u);
  int nonempty = 0;
  std::set<net::NodeId> pes;
  uint64_t total = 0;
  for (const auto& frag : (*info)->fragments) {
    if (frag.row_count > 0) ++nonempty;
    total += frag.row_count;
    pes.insert(frag.pe);
  }
  EXPECT_EQ(total, 64u);
  EXPECT_GE(nonempty, 6);          // Hash spreads over most fragments.
  EXPECT_GE(pes.size(), 8u);       // Distinct PEs host the fragments.
}

TEST_F(PrismaDbTest, InsertSelectWithMultipleRowsStatement) {
  MustExecute("CREATE TABLE t (x INT) FRAGMENTED BY HASH(x) INTO 3 FRAGMENTS");
  QueryResult ins = MustExecute("INSERT INTO t VALUES (1), (2), (3), (4)");
  EXPECT_EQ(ins.affected_rows, 4u);
  EXPECT_EQ(MustExecute("SELECT * FROM t").tuples.size(), 4u);
}

TEST_F(PrismaDbTest, DeleteAndUpdateAcrossFragments) {
  MakeEmp(4, 40);
  QueryResult del = MustExecute("DELETE FROM emp WHERE salary < 1100");
  EXPECT_EQ(del.affected_rows, 10u);
  EXPECT_EQ(MustExecute("SELECT * FROM emp").tuples.size(), 30u);

  QueryResult upd =
      MustExecute("UPDATE emp SET salary = salary + 1 WHERE dept = 'eng'");
  // eng ids 1,5,...,37 minus the deleted 1,5,9 leaves 7 rows.
  EXPECT_EQ(upd.affected_rows, 7u);
  QueryResult check = MustExecute(
      "SELECT COUNT(*) FROM emp WHERE salary = 1131");  // id 13: 1130 + 1.
  EXPECT_EQ(check.tuples.front().at(0), Value::Int(1));
}

TEST_F(PrismaDbTest, AggregatePushdownMatchesExpectations) {
  MakeEmp(4, 40);
  QueryResult agg = MustExecute(
      "SELECT dept, COUNT(*) AS n, SUM(salary) AS total, MIN(salary), "
      "MAX(salary), AVG(salary) FROM emp GROUP BY dept ORDER BY dept");
  ASSERT_EQ(agg.tuples.size(), 4u);
  for (const Tuple& t : agg.tuples) {
    EXPECT_EQ(t.at(1), Value::Int(10));
  }
  // eng: ids 1,5,...,37 -> salaries 1010,1050,...,1370; sum = 11900.
  EXPECT_EQ(agg.tuples[0].at(0), Value::String("eng"));
  EXPECT_EQ(agg.tuples[0].at(2), Value::Int(11900));
  EXPECT_EQ(agg.tuples[0].at(3), Value::Int(1010));
  EXPECT_EQ(agg.tuples[0].at(4), Value::Int(1370));
  EXPECT_EQ(agg.tuples[0].at(5), Value::Double(1190.0));
}

TEST_F(PrismaDbTest, DistributedJoin) {
  MakeEmp(4, 16);
  MustExecute(
      "CREATE TABLE dept (name STRING, budget INT) "
      "FRAGMENTED BY HASH(name) INTO 2 FRAGMENTS");
  MustExecute(
      "INSERT INTO dept VALUES ('sales', 100), ('eng', 200), ('hr', 300), "
      "('ops', 400)");
  QueryResult joined = MustExecute(
      "SELECT e.id, d.budget FROM emp e JOIN dept d ON e.dept = d.name "
      "WHERE d.budget >= 300 ORDER BY e.id");
  // hr and ops employees: 8 of 16.
  EXPECT_EQ(joined.tuples.size(), 8u);
}

TEST_F(PrismaDbTest, ColocatedJoinMatchesGatheredJoinWithLessTraffic) {
  auto load = [](PrismaDb& db) {
    auto must = [&](const std::string& sql) {
      auto r = db.Execute(sql);
      PRISMA_CHECK(r.ok()) << r.status().ToString();
      return std::move(r).value();
    };
    must("CREATE TABLE fact (k INT, v INT) "
         "FRAGMENTED BY HASH(k) INTO 4 FRAGMENTS");
    must("CREATE TABLE dim (k INT, label STRING) "
         "FRAGMENTED BY HASH(k) INTO 4 FRAGMENTS");
    for (int i = 0; i < 200; ++i) {
      must(prisma::StrFormat("INSERT INTO fact VALUES (%d, %d)", i % 40, i));
    }
    // A selective dimension: only 4 of the 40 fact keys match, so the
    // join *shrinks* the data — the case co-location is built for.
    for (int i = 0; i < 4; ++i) {
      must(prisma::StrFormat("INSERT INTO dim VALUES (%d, 'l%d')", i, i));
    }
  };
  const char* query =
      "SELECT f.v, d.label FROM fact f JOIN dim d ON f.k = d.k "
      "ORDER BY f.v";

  MachineConfig on = SmallMachine();
  PrismaDb db_on(on);
  load(db_on);
  const int64_t bits_before_on = db_on.network().stats().link_bits;
  auto result_on = db_on.Execute(query);
  ASSERT_TRUE(result_on.ok()) << result_on.status().ToString();
  const int64_t traffic_on = db_on.network().stats().link_bits - bits_before_on;

  MachineConfig off = SmallMachine();
  off.rules.colocated_joins = false;
  off.rules.exchange_joins = false;  // Ship-to-coordinator baseline.
  PrismaDb db_off(off);
  load(db_off);
  const int64_t bits_before_off = db_off.network().stats().link_bits;
  auto result_off = db_off.Execute(query);
  ASSERT_TRUE(result_off.ok());
  const int64_t traffic_off =
      db_off.network().stats().link_bits - bits_before_off;

  // Same answer, substantially less interconnect traffic: the join ran
  // inside the PEs hosting both fragments, shipping only matches.
  EXPECT_EQ(result_on->tuples, result_off->tuples);
  EXPECT_EQ(result_on->tuples.size(), 20u);
  EXPECT_LT(traffic_on, traffic_off / 2);
}

TEST_F(PrismaDbTest, ColocatedJoinSurvivesFragmentRecovery) {
  MustExecute("CREATE TABLE fact (k INT, v INT) "
              "FRAGMENTED BY HASH(k) INTO 2 FRAGMENTS");
  MustExecute("CREATE TABLE dim (k INT, label STRING) "
              "FRAGMENTED BY HASH(k) INTO 2 FRAGMENTS");
  for (int i = 0; i < 20; ++i) {
    MustExecute(prisma::StrFormat("INSERT INTO fact VALUES (%d, %d)", i, i));
    MustExecute(prisma::StrFormat("INSERT INTO dim VALUES (%d, 'x')", i));
  }
  // Crash + recover one side; the registry must track the replacement.
  ASSERT_TRUE(db_.CrashFragment("dim", 0).ok());
  ASSERT_TRUE(db_.RecoverFragment("dim", 0).ok());
  db_.Run();
  QueryResult joined = MustExecute(
      "SELECT f.v FROM fact f JOIN dim d ON f.k = d.k");
  EXPECT_EQ(joined.tuples.size(), 20u);
}

TEST_F(PrismaDbTest, DistinctAndLimit) {
  MakeEmp(4, 40);
  EXPECT_EQ(MustExecute("SELECT DISTINCT dept FROM emp").tuples.size(), 4u);
  EXPECT_EQ(MustExecute("SELECT * FROM emp LIMIT 7").tuples.size(), 7u);
}

TEST_F(PrismaDbTest, ErrorsPropagateToClient) {
  EXPECT_FALSE(db_.Execute("SELECT * FROM ghost").ok());
  EXPECT_FALSE(db_.Execute("GIBBERISH").ok());
  MakeEmp(2, 4);
  EXPECT_FALSE(db_.Execute("CREATE TABLE emp (x INT)").ok());
  EXPECT_FALSE(db_.Execute("SELECT nope FROM emp").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO emp VALUES (1)").ok());
  // The machine still works afterwards.
  EXPECT_TRUE(db_.Execute("SELECT * FROM emp").ok());
}

TEST_F(PrismaDbTest, DropTable) {
  MakeEmp(2, 4);
  MustExecute("DROP TABLE emp");
  EXPECT_FALSE(db_.Execute("SELECT * FROM emp").ok());
  EXPECT_FALSE(db_.Execute("DROP TABLE emp").ok());
}

TEST_F(PrismaDbTest, CreateIndexOnFragments) {
  MakeEmp(4, 20);
  EXPECT_TRUE(db_.Execute("CREATE INDEX emp_id ON emp (id)").ok());
  EXPECT_TRUE(
      db_.Execute("CREATE ORDERED INDEX emp_sal ON emp (salary)").ok());
  EXPECT_FALSE(db_.Execute("CREATE INDEX emp_id ON emp (id)").ok());
  // Queries still correct with indexes present.
  EXPECT_EQ(MustExecute("SELECT * FROM emp WHERE id = 7").tuples.size(), 1u);
}

TEST_F(PrismaDbTest, CreateIndexSpeedsUpPointQueries) {
  MakeEmp(4, 200);
  // Fragmentation pruning already narrows id = k to one fragment; the
  // index then replaces that fragment's scan with a probe.
  const auto before =
      MustExecute("SELECT * FROM emp WHERE salary = 1500").response_time_ns;
  MustExecute("CREATE INDEX emp_sal ON emp (salary)");
  const auto after =
      MustExecute("SELECT * FROM emp WHERE salary = 1500").response_time_ns;
  EXPECT_LT(after, before);
  // Results stay correct through the index.
  QueryResult r = MustExecute("SELECT id FROM emp WHERE salary = 1500");
  ASSERT_EQ(r.tuples.size(), 1u);
  EXPECT_EQ(r.tuples.front().at(0), Value::Int(50));
}

TEST_F(PrismaDbTest, ExplicitTransactionCommitAndAbort) {
  MakeEmp(2, 4);
  auto session = db_.OpenSession();
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  EXPECT_TRUE(session.in_transaction());
  ASSERT_TRUE(session.Execute("INSERT INTO emp VALUES (100, 'tmp', 1)").ok());
  ASSERT_TRUE(session.Execute("COMMIT").ok());
  EXPECT_FALSE(session.in_transaction());
  EXPECT_EQ(MustExecute("SELECT * FROM emp").tuples.size(), 5u);

  ASSERT_TRUE(session.Execute("BEGIN").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO emp VALUES (101, 'tmp', 1)").ok());
  ASSERT_TRUE(session.Execute("DELETE FROM emp WHERE id = 100").ok());
  ASSERT_TRUE(session.Execute("ABORT").ok());
  // Both effects rolled back.
  QueryResult after = MustExecute("SELECT * FROM emp ORDER BY id");
  EXPECT_EQ(after.tuples.size(), 5u);
  EXPECT_EQ(after.tuples.back().at(0), Value::Int(100));
}

TEST_F(PrismaDbTest, TransactionReadsOwnFragmentWrites) {
  MakeEmp(2, 4);
  auto session = db_.OpenSession();
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO emp VALUES (50, 'new', 9)").ok());
  auto mine = session.Execute("SELECT * FROM emp WHERE id = 50");
  ASSERT_TRUE(mine.ok());
  EXPECT_EQ(mine->tuples.size(), 1u);
  ASSERT_TRUE(session.Execute("COMMIT").ok());
}

TEST_F(PrismaDbTest, PrismalogAncestorEndToEnd) {
  MustExecute(
      "CREATE TABLE parent (p STRING, c STRING) "
      "FRAGMENTED BY HASH(p) INTO 3 FRAGMENTS");
  MustExecute(
      "INSERT INTO parent VALUES ('tom','bob'), ('tom','liz'), "
      "('bob','ann'), ('ann','sue')");
  auto result = db_.ExecutePrismalog(
      "ancestor(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n"
      "? ancestor(tom, X).");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tuples.size(), 4u);
  EXPECT_EQ(result->schema.column(0).name, "X");
}

TEST_F(PrismaDbTest, CrashedFragmentTimesOutThenRecovers) {
  MakeEmp(2, 8);
  ASSERT_TRUE(db_.CrashFragment("emp", 0).ok());
  // Reads hit the timeout because fragment 0 is unreachable.
  auto broken = db_.Execute("SELECT * FROM emp");
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.status().code(), StatusCode::kUnavailable);

  // Recovery restores the fragment from its WAL.
  ASSERT_TRUE(db_.RecoverFragment("emp", 0).ok());
  db_.Run();
  QueryResult restored = MustExecute("SELECT * FROM emp");
  EXPECT_EQ(restored.tuples.size(), 8u);
}

TEST_F(PrismaDbTest, CrashBetweenPrepareAndCommitResolvesWithCoordinator) {
  // A committed transaction survives a post-commit crash: the in-doubt
  // window is exercised by ofm_test; here we check the full machine path
  // where the GDH answers the decision request.
  MakeEmp(2, 4);
  auto session = db_.OpenSession();
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO emp VALUES (200, 'x', 1)").ok());
  ASSERT_TRUE(session.Execute("COMMIT").ok());
  // Crash and recover both fragments; recovered state must include the
  // committed row.
  ASSERT_TRUE(db_.CrashFragment("emp", 0).ok());
  ASSERT_TRUE(db_.CrashFragment("emp", 1).ok());
  ASSERT_TRUE(db_.RecoverFragment("emp", 0).ok());
  ASSERT_TRUE(db_.RecoverFragment("emp", 1).ok());
  db_.Run();
  EXPECT_EQ(MustExecute("SELECT * FROM emp").tuples.size(), 5u);
}

TEST_F(PrismaDbTest, ConcurrentQueriesAllComplete) {
  MakeEmp(4, 40);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    db_.Submit("SELECT COUNT(*) FROM emp", false, exec::kAutoCommit,
               [&](const gdh::ClientReply& reply, sim::SimTime) {
                 ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
                 EXPECT_EQ(reply.tuples->front().at(0), Value::Int(40));
                 ++completed;
               },
               /*delay=*/i * 1000);
  }
  db_.Run();
  EXPECT_EQ(completed, 10);
}

TEST_F(PrismaDbTest, WriteConflictsSerializeViaLocks) {
  MakeEmp(1, 1);
  int completed = 0;
  int failed = 0;
  // 20 updates race on the same single-fragment table.
  for (int i = 0; i < 20; ++i) {
    db_.Submit("UPDATE emp SET salary = salary + 1", false, exec::kAutoCommit,
               [&](const gdh::ClientReply& reply, sim::SimTime) {
                 if (reply.status.ok()) {
                   ++completed;
                 } else {
                   ++failed;
                 }
               },
               i * 10);
  }
  db_.Run();
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(failed, 0);
  QueryResult check = MustExecute("SELECT salary FROM emp");
  EXPECT_EQ(check.tuples.front().at(0), Value::Int(1020));
}

TEST_F(PrismaDbTest, ResponseTimesAreDeterministicAcrossMachines) {
  // The same workload on two identical machines takes exactly the same
  // virtual time (coordinator placement rotates *within* a machine, so
  // determinism is asserted across fresh machines).
  auto run = [] {
    PrismaDb db(SmallMachine());
    PRISMA_CHECK(db.Execute("CREATE TABLE t (x INT) FRAGMENTED BY HASH(x) "
                            "INTO 4 FRAGMENTS")
                     .ok());
    for (int i = 0; i < 12; ++i) {
      PRISMA_CHECK(
          db.Execute(prisma::StrFormat("INSERT INTO t VALUES (%d)", i)).ok());
    }
    auto result = db.Execute("SELECT COUNT(*) FROM t WHERE x >= 3");
    PRISMA_CHECK(result.ok());
    return result->response_time_ns;
  };
  const sim::SimTime a = run();
  const sim::SimTime b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
}

TEST_F(PrismaDbTest, ExplainDescribesTheDistributedPlan) {
  MakeEmp(4, 20);
  QueryResult plan = MustExecute(
      "EXPLAIN SELECT dept, COUNT(*) FROM emp WHERE salary > 1000 "
      "GROUP BY dept");
  ASSERT_FALSE(plan.tuples.empty());
  std::string text;
  for (const Tuple& t : plan.tuples) {
    text += t.at(0).string_value();
    text += "\n";
  }
  // Selections were pushed, the aggregate decomposed, the part fans out
  // to all 4 fragments, and nothing was executed.
  EXPECT_NE(text.find("optimizer:"), std::string::npos);
  EXPECT_NE(text.find("aggregate pushdown: yes"), std::string::npos);
  EXPECT_NE(text.find("4 fragment(s)"), std::string::npos);
  EXPECT_NE(text.find("Aggregate"), std::string::npos);
  EXPECT_NE(text.find("Scan emp"), std::string::npos);

  // EXPLAIN of a co-located join says so.
  MustExecute("CREATE TABLE emp2 (id INT, x INT) "
              "FRAGMENTED BY HASH(id) INTO 4 FRAGMENTS");
  QueryResult join_plan = MustExecute(
      "EXPLAIN SELECT e.id FROM emp e JOIN emp2 f ON e.id = f.id");
  std::string join_text;
  for (const Tuple& t : join_plan.tuples) {
    join_text += t.at(0).string_value();
    join_text += "\n";
  }
  EXPECT_NE(join_text.find("co-located join"), std::string::npos);

  EXPECT_FALSE(db_.Execute("EXPLAIN INSERT INTO emp VALUES (1,'x',2)").ok());
}

TEST_F(PrismaDbTest, CheckpointTruncatesWalsAndRecoveryStillWorks) {
  MakeEmp(2, 30);
  // WAL bytes exist before the checkpoint...
  size_t wal_before = 0;
  for (int pe = 0; pe < db_.config().pes; ++pe) {
    auto& store = db_.stable_store(pe);
    wal_before += store.stream_bytes("emp#0.wal") +
                  store.stream_bytes("emp#1.wal");
  }
  EXPECT_GT(wal_before, 0u);

  QueryResult ckpt = MustExecute("CHECKPOINT");
  (void)ckpt;
  size_t wal_after = 0;
  bool snapshot_found = false;
  for (int pe = 0; pe < db_.config().pes; ++pe) {
    auto& store = db_.stable_store(pe);
    wal_after +=
        store.stream_bytes("emp#0.wal") + store.stream_bytes("emp#1.wal");
    if (store.ReadSnapshot("emp#0.ckpt").ok() ||
        store.ReadSnapshot("emp#1.ckpt").ok()) {
      snapshot_found = true;
    }
  }
  EXPECT_EQ(wal_after, 0u);
  EXPECT_TRUE(snapshot_found);

  // Post-checkpoint writes land in fresh WALs; crash + recover replays
  // snapshot + suffix.
  MustExecute("INSERT INTO emp VALUES (100, 'late', 9)");
  ASSERT_TRUE(db_.CrashFragment("emp", 0).ok());
  ASSERT_TRUE(db_.CrashFragment("emp", 1).ok());
  ASSERT_TRUE(db_.RecoverFragment("emp", 0).ok());
  ASSERT_TRUE(db_.RecoverFragment("emp", 1).ok());
  db_.Run();
  EXPECT_EQ(MustExecute("SELECT * FROM emp").tuples.size(), 31u);
}

TEST_F(PrismaDbTest, PeMemoryExhaustionSurfacesAsStatementError) {
  MachineConfig tiny = SmallMachine();
  tiny.pe_memory_bytes = 4 * 1024;  // 4 KB per PE.
  PrismaDb db(tiny);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT, pad STRING) "
                         "FRAGMENTED BY HASH(x) INTO 2 FRAGMENTS")
                  .ok());
  Status last;
  int inserted = 0;
  for (int i = 0; i < 500; ++i) {
    auto r = db.Execute(prisma::StrFormat(
        "INSERT INTO t VALUES (%d, 'some sixty-byte padding string to eat "
        "the PE memory quickly....')",
        i));
    if (!r.ok()) {
      last = r.status();
      break;
    }
    ++inserted;
  }
  EXPECT_GT(inserted, 0);
  // The 16 MB-per-PE budget (here shrunk) is a hard limit (§2.1/§3.2):
  // the write aborts and the error reaches the client.
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  // The machine still answers reads.
  auto count = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->tuples.front().at(0), Value::Int(inserted));
}

TEST_F(PrismaDbTest, ChordalRingMachineWorks) {
  MachineConfig config;
  config.pes = 16;
  config.topology = TopologyKind::kChordalRing;
  config.chord = 4;
  PrismaDb db(config);
  ASSERT_TRUE(
      db.Execute("CREATE TABLE t (x INT) FRAGMENTED BY HASH(x) INTO 4 "
                 "FRAGMENTS")
          .ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
  auto r = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples.front().at(0), Value::Int(3));
}

TEST_F(PrismaDbTest, InterpretedMachineAgreesButRunsSlower) {
  auto run = [](exec::ExprMode mode) {
    MachineConfig config = SmallMachine();
    config.expr_mode = mode;
    PrismaDb db(config);
    PRISMA_CHECK(db.Execute("CREATE TABLE t (x INT, y INT) "
                            "FRAGMENTED BY HASH(x) INTO 4 FRAGMENTS")
                     .ok());
    for (int i = 0; i < 100; ++i) {
      PRISMA_CHECK(db.Execute(prisma::StrFormat(
                                  "INSERT INTO t VALUES (%d, %d)", i, i * 3))
                       .ok());
    }
    auto r = db.Execute(
        "SELECT COUNT(*) FROM t WHERE y - x * 2 > 10 AND x < 90");
    PRISMA_CHECK(r.ok());
    return std::make_pair(r->tuples.front().at(0).int_value(),
                          r->response_time_ns);
  };
  const auto compiled = run(exec::ExprMode::kCompiled);
  const auto interpreted = run(exec::ExprMode::kInterpreted);
  EXPECT_EQ(compiled.first, interpreted.first);   // Same answer.
  EXPECT_LT(compiled.second, interpreted.second);  // E4's cost-model view.
}

TEST_F(PrismaDbTest, RoundRobinPlacementSpreadsLoadButStillAnswers) {
  MachineConfig config = SmallMachine();
  config.placement = gdh::PlacementPolicy::kRoundRobin;
  PrismaDb db(config);
  ASSERT_TRUE(db.Execute("CREATE TABLE a (k INT) FRAGMENTED BY HASH(k) "
                         "INTO 4 FRAGMENTS")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE b (k INT) FRAGMENTED BY HASH(k) "
                         "INTO 4 FRAGMENTS")
                  .ok());
  // Round-robin placement keeps the global cursor moving, so a's and b's
  // equal fragment indexes land on different PEs (no co-location).
  auto a = db.gdh().dictionary().GetTable("a");
  auto b = db.gdh().dictionary().GetTable("b");
  ASSERT_TRUE(a.ok() && b.ok());
  bool all_aligned = true;
  for (int i = 0; i < 4; ++i) {
    if ((*a)->fragments[i].pe != (*b)->fragments[i].pe) all_aligned = false;
  }
  EXPECT_FALSE(all_aligned);
  ASSERT_TRUE(db.Execute("INSERT INTO a VALUES (1), (2)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO b VALUES (2), (3)").ok());
  auto joined =
      db.Execute("SELECT a.k FROM a JOIN b ON a.k = b.k");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->tuples.size(), 1u);
}

TEST_F(PrismaDbTest, PrismalogWithNegationOnTheMachine) {
  MustExecute("CREATE TABLE edge (s STRING, d STRING) "
              "FRAGMENTED BY HASH(s) INTO 2 FRAGMENTS");
  MustExecute("INSERT INTO edge VALUES ('a','b'), ('b','c'), ('c','d')");
  auto result = db_.ExecutePrismalog(
      "reach(X, Y) :- edge(X, Y).\n"
      "reach(X, Z) :- edge(X, Y), reach(Y, Z).\n"
      "source(X) :- edge(X, Y), not sink_side(X).\n"
      "sink_side(Y) :- edge(X, Y).\n"
      "? source(X).");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->tuples.size(), 1u);
  EXPECT_EQ(result->tuples.front().at(0), Value::String("a"));
}

TEST_F(PrismaDbTest, SinglePeMachineStillWorks) {
  MachineConfig config;
  config.pes = 1;
  config.topology = TopologyKind::kRing;  // Ring needs >= 2; use mesh.
  config.topology = TopologyKind::kMesh;
  PrismaDb tiny(config);
  ASSERT_TRUE(tiny.Execute("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(tiny.Execute("INSERT INTO t VALUES (1), (2)").ok());
  auto result = tiny.Execute("SELECT * FROM t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 2u);
}

TEST_F(PrismaDbTest, RangeAndRoundRobinFragmentation) {
  MustExecute(
      "CREATE TABLE r (k INT, v INT) FRAGMENTED BY RANGE(k) INTO 4 FRAGMENTS");
  for (int i = 0; i < 8; ++i) {
    MustExecute(prisma::StrFormat("INSERT INTO r VALUES (%d, %d)",
                          i * 125'000, i));
  }
  // Range pruning: an equality on the fragmentation key touches only one
  // fragment, but results stay correct.
  EXPECT_EQ(MustExecute("SELECT * FROM r WHERE k = 250000").tuples.size(), 1u);
  EXPECT_EQ(MustExecute("SELECT * FROM r").tuples.size(), 8u);

  MustExecute(
      "CREATE TABLE rr (x INT) FRAGMENTED BY ROUNDROBIN INTO 3 FRAGMENTS");
  for (int i = 0; i < 9; ++i) {
    MustExecute(prisma::StrFormat("INSERT INTO rr VALUES (%d)", i));
  }
  auto info = db_.gdh().dictionary().GetTable("rr");
  ASSERT_TRUE(info.ok());
  for (const auto& frag : (*info)->fragments) {
    EXPECT_EQ(frag.row_count, 3u);  // Perfectly balanced.
  }
}

}  // namespace
}  // namespace prisma::core
