#include "lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace prisma::lint {
namespace {

/// Loads the checked-in fixture corpus (tests/lint_fixtures), a miniature
/// source tree with one known-bad file per rule plus files proving the
/// sanctioned silencing forms stay silent.
std::vector<SourceFile> LoadFixtures() {
  std::vector<SourceFile> files;
  std::string error;
  EXPECT_TRUE(LoadTree(LINT_FIXTURES_DIR, &files, &error)) << error;
  EXPECT_FALSE(files.empty());
  return files;
}

TEST(LintTest, GoldenDiagnosticsOverFixtureCorpus) {
  std::vector<Diagnostic> diagnostics = AnalyzeSources(LoadFixtures());

  std::vector<std::string> got;
  for (const Diagnostic& d : diagnostics) {
    got.push_back(d.path + ":" + std::to_string(d.line) + " " + d.rule);
  }
  // The full golden expectation: every known-bad site, nothing from the
  // annotated / sim fixtures, sorted by (path, line, rule).
  const std::vector<std::string> want = {
      "bad/discard.cc:12 D4",
      "bad/unordered_frame.cc:15 D2",
      "bad/unordered_frame.cc:18 D2",
      "bad/unordered_replica.cc:14 D2",
      "bad/unordered_replica.cc:17 D2",
      "bad/unordered_send.cc:14 D2",
      "bad/unordered_send.cc:17 D2",
      "bad/wall_clock.cc:11 D1",
      "bad/wall_clock.cc:15 D1",
      "bad/wall_clock.cc:18 D1",
      "bad/wall_clock.cc:22 D1",
      "bad/wall_clock.cc:24 D1",
      "obs/metric_names.h:8 D8",
      "procs/intruder.cc:9 D3",
      "procs/intruder.cc:12 D3",
      "proto/bad_dispatch.cc:9 D5",
      "proto/bad_dispatch.cc:11 D5",
      "proto/bad_tag.cc:9 D5",
      "proto/bad_tag.cc:11 D0",
      "proto/bad_tag.cc:12 D4",
      "proto/messages.h:10 D5",
      "proto/metrics_bad.cc:10 D8",
      "proto/rpc_bad.cc:12 D6",
      "proto/rpc_bad.cc:17 D6",
      "proto/states_bad.cc:4 D7",
      "proto/states_bad.cc:4 D7",
      "proto/states_bad.cc:4 D7",
      "proto/states_bad.cc:8 D7",
      "proto/states_bad.cc:13 D7",
  };
  EXPECT_EQ(got, want);
}

TEST(LintTest, DiagnosticCarriesSnippetAndFormat) {
  std::vector<Diagnostic> diagnostics = AnalyzeSources(LoadFixtures());
  ASSERT_FALSE(diagnostics.empty());
  const Diagnostic& d = diagnostics[0];  // bad/discard.cc:12 [D4].
  EXPECT_EQ(d.snippet, "(void)DoWork();");
  EXPECT_EQ(d.Format().substr(0, 24), "bad/discard.cc:12: [D4] ");
}

TEST(LintTest, CrossProcessDiagnosticNamesTheOwningFile) {
  std::vector<Diagnostic> diagnostics = AnalyzeSources(LoadFixtures());
  bool found = false;
  for (const Diagnostic& d : diagnostics) {
    if (d.rule != "D3") continue;
    found = true;
    EXPECT_NE(d.message.find("'Widget'"), std::string::npos) << d.message;
    EXPECT_NE(d.message.find("procs/widget.h"), std::string::npos)
        << d.message;
  }
  EXPECT_TRUE(found);
}

TEST(LintTest, AllowlistSilencesMatchedFindingAndFlagsStaleEntries) {
  std::vector<AllowlistEntry> allowlist;
  // Matches the two D3 findings in procs/intruder.cc (content-based, so it
  // survives line drift).
  allowlist.push_back({"D3", "procs/intruder.cc", "Widget* victim",
                       "fixture justification", 1});
  // Matches nothing: stale entries are themselves findings.
  allowlist.push_back({"D1", "bad/wall_clock.cc", "no_such_token",
                       "rotted entry", 2});

  LintReport report =
      ApplyAllowlist(AnalyzeSources(LoadFixtures()), allowlist);
  EXPECT_EQ(report.violations, 27u);  // 29 findings - 2 allowlisted.
  ASSERT_EQ(report.unused_allowlist.size(), 1u);
  EXPECT_EQ(report.unused_allowlist[0].needle, "no_such_token");
  EXPECT_FALSE(report.clean());

  size_t allowlisted = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (!d.allowlisted) continue;
    ++allowlisted;
    EXPECT_EQ(d.rule, "D3");
    EXPECT_EQ(d.justification, "fixture justification");
  }
  EXPECT_EQ(allowlisted, 2u);
}

TEST(LintTest, EmptyAllowlistReportsEveryFindingAsViolation) {
  LintReport report = ApplyAllowlist(AnalyzeSources(LoadFixtures()), {});
  EXPECT_EQ(report.violations, 29u);
  EXPECT_TRUE(report.unused_allowlist.empty());
  EXPECT_FALSE(report.clean());
}

TEST(LintTest, ParseAllowlistAcceptsEntriesAndRejectsMalformedLines) {
  const std::string content =
      "# comment line\n"
      "\n"
      "D3 | core/prisma_db.h | GdhProcess* gdh_ | harness owns the gdh\n"
      "D1 | missing_fields\n"
      "D2 | a.cc | needle |\n";
  std::vector<std::string> errors;
  std::vector<AllowlistEntry> entries = ParseAllowlist(content, &errors);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "D3");
  EXPECT_EQ(entries[0].path_suffix, "core/prisma_db.h");
  EXPECT_EQ(entries[0].needle, "GdhProcess* gdh_");
  EXPECT_EQ(entries[0].justification, "harness owns the gdh");
  EXPECT_EQ(entries[0].source_line, 3);
  EXPECT_EQ(errors.size(), 2u);  // Missing fields + empty justification.
}

TEST(LintTest, AnnotationSilencesSameAndNextLineOnly) {
  // The annotation covers the iteration on the next line but not the
  // second iteration two lines below it.
  std::vector<SourceFile> files;
  files.push_back(
      {"net/hot.cc",
       "#include \"pool/runtime.h\"\n"
       "#include <unordered_map>\n"
       "std::unordered_map<int, int> m_;\n"
       "void F() {\n"
       "  // prisma-lint: ordered - first loop only\n"
       "  for (const auto& [k, v] : m_) {}\n"
       "  for (const auto& [k, v] : m_) {}\n"
       "}\n"});
  std::vector<Diagnostic> diagnostics = AnalyzeSources(files);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].line, 7);
  EXPECT_EQ(diagnostics[0].rule, "D2");
}

TEST(LintTest, UnorderedIterationOutsideObservableSurfaceIsAllowed) {
  // Same iteration, but the file touches no message/metrics/trace header:
  // internal iteration order cannot escape, so D2 stays quiet.
  std::vector<SourceFile> files;
  files.push_back(
      {"quiet/cold.cc",
       "#include <unordered_map>\n"
       "std::unordered_map<int, int> m_;\n"
       "void F() {\n"
       "  for (const auto& [k, v] : m_) {}\n"
       "}\n"});
  EXPECT_TRUE(AnalyzeSources(files).empty());
}

TEST(LintTest, ObservableSurfaceIsTransitiveThroughIncludes) {
  // cold.cc includes a local header which includes obs/metrics.h: the
  // closure makes cold.cc observable.
  std::vector<SourceFile> files;
  files.push_back({"quiet/wrap.h", "#include \"obs/metrics.h\"\n"});
  files.push_back(
      {"quiet/cold.cc",
       "#include \"quiet/wrap.h\"\n"
       "#include <unordered_map>\n"
       "std::unordered_map<int, int> m_;\n"
       "void F() {\n"
       "  for (const auto& [k, v] : m_) {}\n"
       "}\n"});
  std::vector<Diagnostic> diagnostics = AnalyzeSources(files);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].path, "quiet/cold.cc");
  EXPECT_EQ(diagnostics[0].rule, "D2");
}

TEST(LintTest, MailTotalityFlagsKindAddedWithoutHandler) {
  // The exhaustiveness scenario from the issue: a new mail kind lands in
  // the protocol header but nobody claims it. The declaration site is the
  // diagnostic anchor.
  std::vector<SourceFile> files;
  files.push_back(
      {"proto/kinds.h",
       "inline constexpr char kMailA[] = \"a\";\n"
       "inline constexpr char kMailB[] = \"b\";\n"});
  files.push_back(
      {"proto/handler.cc",
       "// PRISMA_HANDLES(kMailA)\n"
       "void OnMail(const Mail& mail) {\n"
       "  if (mail.kind == kMailA) {\n"
       "  }\n"
       "}\n"});
  std::vector<Diagnostic> diagnostics = AnalyzeSources(files);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "D5");
  EXPECT_EQ(diagnostics[0].path, "proto/kinds.h");
  EXPECT_EQ(diagnostics[0].line, 2);
  EXPECT_NE(diagnostics[0].message.find("kMailB"), std::string::npos)
      << diagnostics[0].message;
}

TEST(LintTest, MailTotalityAcceptsExhaustiveHandler) {
  // Same protocol, but the handler claims and dispatches every kind.
  std::vector<SourceFile> files;
  files.push_back(
      {"proto/kinds.h",
       "inline constexpr char kMailA[] = \"a\";\n"
       "inline constexpr char kMailB[] = \"b\";\n"});
  files.push_back(
      {"proto/handler.cc",
       "// PRISMA_HANDLES(kMailA, kMailB)\n"
       "void OnMail(const Mail& mail) {\n"
       "  if (mail.kind == kMailA) {\n"
       "  } else if (mail.kind == kMailB) {\n"
       "  }\n"
       "}\n"});
  EXPECT_TRUE(AnalyzeSources(files).empty());
}

TEST(LintTest, RpcRegistrationWithoutSettlementContractIsFlagged) {
  std::vector<SourceFile> files;
  files.push_back(
      {"net/client.cc",
       "#include <map>\n"
       "struct PendingRpc { int tries = 0; };\n"
       "std::map<int, PendingRpc> rpcs_;\n"
       "void Register(int id) {\n"
       "  rpcs_[id] = PendingRpc{};\n"
       "}\n"});
  std::vector<Diagnostic> diagnostics = AnalyzeSources(files);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "D6");
  EXPECT_EQ(diagnostics[0].line, 5);
  EXPECT_NE(diagnostics[0].message.find("rpcs_"), std::string::npos)
      << diagnostics[0].message;
}

TEST(LintTest, UndeclaredStateTransitionIsFlagged) {
  // An assignment to a tracked enum with no PRISMA_TRANSITION marker.
  std::vector<SourceFile> files;
  files.push_back(
      {"core/fsm.cc",
       "// PRISMA_STATE_MACHINE(S: init->kA)\n"
       "enum class S { kA, kB };\n"
       "struct T {\n"
       "  // PRISMA_TRANSITION(init, kA, born in the start state)\n"
       "  S s = S::kA;\n"
       "};\n"
       "void F(T& t) {\n"
       "  t.s = S::kB;\n"
       "}\n"});
  std::vector<Diagnostic> diagnostics = AnalyzeSources(files);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "D7");
  EXPECT_EQ(diagnostics[0].line, 8);
}

TEST(LintTest, MetricNamesMustComeFromTheRegistry) {
  std::vector<SourceFile> files;
  files.push_back(
      {"obs/metric_names.h",
       "inline constexpr const char* kNames[] = {\n"
       "    // PRISMA_METRICS_BEGIN\n"
       "    \"app.good\",\n"
       "    // PRISMA_METRICS_END\n"
       "};\n"});
  files.push_back(
      {"exec/worker.cc",
       "void* GetCounter(const char* name);\n"
       "void F() {\n"
       "  GetCounter(\"app.good\");\n"
       "  GetCounter(\"app.typo\");\n"
       "}\n"});
  std::vector<Diagnostic> diagnostics = AnalyzeSources(files);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "D8");
  EXPECT_EQ(diagnostics[0].path, "exec/worker.cc");
  EXPECT_EQ(diagnostics[0].line, 4);
  EXPECT_NE(diagnostics[0].message.find("app.typo"), std::string::npos)
      << diagnostics[0].message;
}

TEST(LintTest, AnnotationHygieneFlagsUnknownTags) {
  // The lint lints its own annotation language: a typo'd tag silences
  // nothing, so it must be an error rather than a silent no-op.
  std::vector<Diagnostic> diagnostics = AnalyzeSources(LoadFixtures());
  std::vector<const Diagnostic*> d0;
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == "D0") d0.push_back(&d);
  }
  ASSERT_EQ(d0.size(), 1u);
  EXPECT_EQ(d0[0]->path, "proto/bad_tag.cc");
  EXPECT_EQ(d0[0]->line, 11);
  EXPECT_NE(d0[0]->message.find("odered"), std::string::npos)
      << d0[0]->message;
}

TEST(LintTest, ReportToJsonCarriesCountsAndDiagnostics) {
  std::vector<SourceFile> files = LoadFixtures();
  LintReport report = ApplyAllowlist(AnalyzeSources(files), {});
  const std::string json = ReportToJson(report, files.size());
  EXPECT_NE(json.find("\"files_scanned\": " + std::to_string(files.size())),
            std::string::npos);
  EXPECT_NE(json.find("\"violations\": 29"), std::string::npos);
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"D5\""), std::string::npos);
  EXPECT_NE(json.find("\"path\": \"bad/discard.cc\""), std::string::npos);
}

TEST(LintTest, CommentsAndLiteralsDoNotTriggerRules) {
  std::vector<SourceFile> files;
  files.push_back(
      {"quiet/strings.cc",
       "// std::chrono in a comment is fine; rand() too.\n"
       "/* std::mutex guard; */\n"
       "const char* kHelp = \"uses std::random_device internally\";\n"});
  EXPECT_TRUE(AnalyzeSources(files).empty());
}

}  // namespace
}  // namespace prisma::lint
