#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/prisma_db.h"
#include "exec/transitive_closure.h"
#include "gdh/replication.h"
#include "serve/dispatcher.h"
#include "serve/workload.h"
#include "soak_repro.h"

namespace prisma::core {
namespace {

constexpr int kFragments = 4;

/// Virtual-time watchdog: no statement may take longer than this, even
/// through the worst retransmission backoff + coordinator-reap path.
constexpr sim::SimTime kWatchdogNs = 10 * sim::kNanosPerSecond;

/// Builds a machine whose fault plan — loss/duplication rates, jitter and
/// one scheduled PE crash/restart — derives deterministically from `seed`.
MachineConfig ChaosMachine(uint64_t seed) {
  MachineConfig config;
  config.pes = 4;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  net::FaultPlan& plan = config.fault_plan;
  plan.seed = seed;
  plan.link.drop_probability = 0.01 + 0.04 * rng.NextDouble();  // <= 5%.
  plan.link.duplicate_probability = 0.03 * rng.NextDouble();
  plan.link.max_extra_delay_ns = rng.UniformInt(0, 200'000);
  net::PeCrashEvent crash;
  crash.pe = static_cast<net::NodeId>(rng.UniformInt(1, config.pes - 1));
  crash.at_ns = rng.UniformInt(10, 30) * sim::kNanosPerMilli;
  crash.restart_at_ns =
      crash.at_ns + rng.UniformInt(10, 60) * sim::kNanosPerMilli;
  plan.pe_crashes.push_back(crash);
  return config;
}

/// Chained asynchronous workload: each reply schedules the next statement,
/// so virtual time flows through the fault plan's crash window while
/// statements are in flight. (A synchronous Execute drains the whole event
/// queue, which would fire the scheduled crash before any data existed.)
///
/// The driver tracks a model of the committed row set: a statement's
/// effects enter the model iff its reply is OK, which is exactly the
/// guarantee the presumed-abort protocol owes the client.
class ChaosDriver {
 public:
  /// With `reads_must_succeed` every Audit read is REQUIRED to come back
  /// OK (the replicated machine's availability guarantee); without it a
  /// read may legitimately degrade while a PE is down.
  ChaosDriver(PrismaDb* db, uint64_t seed, int ops,
              bool reads_must_succeed = false)
      : db_(db),
        rng_(seed ^ 0xda3e39cb94b95bdbULL),
        ops_left_(ops),
        reads_must_succeed_(reads_must_succeed) {}

  void Run() {
    Submit(StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                     "HASH(id) INTO %d FRAGMENTS",
                     kFragments),
           exec::kAutoCommit, [this](const gdh::ClientReply& reply) {
             PRISMA_CHECK(reply.status.ok()) << reply.status.ToString();
             NextOp();
           });
    db_->Run();
    PRISMA_CHECK(done_) << "chaos workload stalled before finishing";
  }

  const std::set<int64_t>& model() const { return model_; }
  uint64_t failed_statements() const { return failed_; }
  uint64_t audits() const { return audits_; }

 private:
  using Handler = std::function<void(const gdh::ClientReply&)>;

  struct TxnPlan {
    exec::TxnId txn = exec::kAutoCommit;
    bool commit = false;
    int64_t remaining = 0;
  };

  void Submit(const std::string& sql, exec::TxnId txn, Handler handler) {
    // A little think time spreads the workload across virtual time so the
    // crash window overlaps in-flight statements.
    const sim::SimTime think = rng_.UniformInt(0, 2 * sim::kNanosPerMilli);
    db_->Submit(sql, /*prismalog=*/false, txn,
                [this, handler = std::move(handler)](
                    const gdh::ClientReply& reply, sim::SimTime response_ns) {
                  PRISMA_CHECK(response_ns <= kWatchdogNs)
                      << "statement exceeded the virtual-time watchdog ("
                      << response_ns << " ns)";
                  if (!reply.status.ok()) ++failed_;
                  handler(reply);
                },
                think);
  }

  void NextOp() {
    if (ops_left_-- <= 0) {
      done_ = true;
      return;
    }
    const int64_t dice = rng_.UniformInt(0, 9);
    if (dice < 4 || model_.empty()) {
      const int64_t id = next_id_++;
      Submit(InsertSql(id), exec::kAutoCommit,
             [this, id](const gdh::ClientReply& reply) {
               if (reply.status.ok()) model_.insert(id);
               NextOp();
             });
    } else if (dice < 6) {
      auto it = model_.begin();
      std::advance(
          it, rng_.UniformInt(0, static_cast<int64_t>(model_.size()) - 1));
      const int64_t id = *it;
      Submit(StrFormat("DELETE FROM t WHERE id = %lld",
                       static_cast<long long>(id)),
             exec::kAutoCommit, [this, id](const gdh::ClientReply& reply) {
               if (reply.status.ok()) model_.erase(id);
               NextOp();
             });
    } else if (dice < 8) {
      BeginTxn();
    } else {
      Audit();
    }
  }

  void BeginTxn() {
    Submit("BEGIN", exec::kAutoCommit, [this](const gdh::ClientReply& reply) {
      if (!reply.status.ok()) {
        NextOp();
        return;
      }
      TxnPlan plan;
      plan.txn = reply.txn;
      plan.commit = rng_.NextBool(0.5);
      plan.remaining = rng_.UniformInt(1, 3);
      TxnStep(plan, {});
    });
  }

  void TxnStep(TxnPlan plan, std::vector<int64_t> staged) {
    if (plan.remaining == 0) {
      const bool commit = plan.commit;
      Submit(commit ? "COMMIT" : "ABORT", plan.txn,
             [this, staged = std::move(staged),
              commit](const gdh::ClientReply& reply) {
               // Effects are committed iff COMMIT returned OK; an abort
               // (explicit or forced by the machine) leaves no trace.
               if (commit && reply.status.ok()) {
                 model_.insert(staged.begin(), staged.end());
               }
               NextOp();
             });
      return;
    }
    const int64_t id = next_id_++;
    --plan.remaining;
    Submit(InsertSql(id), plan.txn,
           [this, plan, staged = std::move(staged),
            id](const gdh::ClientReply& reply) mutable {
             if (!reply.status.ok()) {
               // The GDH aborts the whole transaction when one of its
               // statements fails; a best-effort ABORT cleans up in case
               // it survived.
               Submit("ABORT", plan.txn,
                      [this](const gdh::ClientReply&) { NextOp(); });
               return;
             }
             staged.push_back(id);
             TxnStep(plan, std::move(staged));
           });
  }

  /// Reads the table back and compares against the model mid-soak. A read
  /// may legitimately fail while a PE is down (Unavailable); it must never
  /// succeed with the wrong answer.
  void Audit() {
    Submit("SELECT id FROM t", exec::kAutoCommit,
           [this](const gdh::ClientReply& reply) {
             if (reads_must_succeed_) {
               PRISMA_CHECK(reply.status.ok())
                   << "replicated read degraded: "
                   << reply.status.ToString();
             }
             if (reply.status.ok()) {
               ++audits_;
               std::set<int64_t> ids;
               if (reply.tuples != nullptr) {
                 for (const Tuple& tuple : *reply.tuples) {
                   ids.insert(tuple.at(0).int_value());
                 }
               }
               PRISMA_CHECK(ids == model_)
                   << "audit divergence: db has " << ids.size()
                   << " rows, model has " << model_.size();
             }
             NextOp();
           });
  }

  static std::string InsertSql(int64_t id) {
    return StrFormat("INSERT INTO t VALUES (%lld, %lld)",
                     static_cast<long long>(id),
                     static_cast<long long>(id * 7));
  }

  PrismaDb* db_;
  Rng rng_;
  int ops_left_;
  bool reads_must_succeed_ = false;
  bool done_ = false;
  std::set<int64_t> model_;
  int64_t next_id_ = 0;
  uint64_t failed_ = 0;
  uint64_t audits_ = 0;
};

struct SoakOutcome {
  std::set<int64_t> ids;
  uint64_t failed = 0;
  uint64_t audits = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t crashes = 0;
  std::string metrics;
  std::string trace;  // Chrome-trace JSON (empty unless tracing was on).
};

SoakOutcome RunChaosSoak(uint64_t seed, bool trace = false) {
  MachineConfig config = ChaosMachine(seed);
  config.enable_tracing = trace;
  PrismaDb db(config);
  ChaosDriver driver(&db, seed, 40);
  driver.Run();

  // The event queue is drained: the scheduled crash and restart have both
  // fired. The final read-back must now succeed and match the model.
  auto result = db.Execute("SELECT id FROM t");
  PRISMA_CHECK(result.ok()) << result.status().ToString();
  SoakOutcome out;
  for (const Tuple& tuple : result->tuples) {
    out.ids.insert(tuple.at(0).int_value());
  }
  PRISMA_CHECK(out.ids == driver.model())
      << "committed state diverged from the model: db has " << out.ids.size()
      << " rows, model has " << driver.model().size();
  out.failed = driver.failed_statements();
  out.audits = driver.audits();
  out.dropped = db.network().stats().dropped;
  out.duplicated = db.network().stats().duplicated;
  out.crashes = db.metrics().CounterTotal("pe.crashes");
  out.metrics = db.DumpMetrics();
  if (trace) out.trace = db.DumpTrace();
  return out;
}

TEST(ChaosTest, SoakSurvives25Seeds) {
  uint64_t total_dropped = 0;
  uint64_t total_duplicated = 0;
  uint64_t total_audits = 0;
  for (const uint64_t seed : SoakSeeds(1, 25)) {
    PRISMA_SEED_REPRO("ChaosTest.SoakSurvives25Seeds", seed);
    const SoakOutcome out = RunChaosSoak(seed);
    // Every plan schedules exactly one PE crash, and it fired.
    EXPECT_EQ(out.crashes, 1u);
    total_dropped += out.dropped;
    total_duplicated += out.duplicated;
    total_audits += out.audits;
  }
  if (SingleSeedMode()) return;
  // The soak was not a fair-weather run: messages were actually lost and
  // duplicated across the 25 plans, and mid-soak audits did land.
  EXPECT_GT(total_dropped, 0u);
  EXPECT_GT(total_duplicated, 0u);
  EXPECT_GT(total_audits, 0u);
}

TEST(ChaosTest, SameSeedIsByteIdenticalDifferentSeedIsNot) {
  const SoakOutcome a = RunChaosSoak(7);
  const SoakOutcome b = RunChaosSoak(7);
  EXPECT_EQ(a.ids, b.ids);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.metrics, b.metrics);  // Byte-identical dump.

  const SoakOutcome c = RunChaosSoak(8);
  EXPECT_NE(a.metrics, c.metrics);  // A different plan leaves a different trail.
}

/// The determinism regression gate: the full observable trail — every
/// metric line AND every Chrome-trace span, including handler order and
/// virtual-time stamps — must replay byte-for-byte for the same seed in
/// the same binary. Any nondeterminism source (wall clock, unordered
/// iteration reaching a send, address-dependent ordering) shifts a span
/// or a counter and fails this diff; prisma_lint guards the same
/// invariants statically.
TEST(ChaosTest, SameSeedReplayIsByteIdenticalIncludingTraces) {
  const SoakOutcome a = RunChaosSoak(11, /*trace=*/true);
  const SoakOutcome b = RunChaosSoak(11, /*trace=*/true);
  EXPECT_EQ(a.metrics, b.metrics);
  ASSERT_FALSE(a.trace.empty());
  // Compare sizes first for a readable failure; the full diff follows.
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.trace, b.trace);

  // The trace is not vacuous: the crash/recovery window left spans.
  EXPECT_EQ(a.crashes, 1u);
  EXPECT_NE(a.trace.find("\"ph\""), std::string::npos);
}

QueryResult MustExecute(PrismaDb* db, const std::string& sql) {
  auto result = db->Execute(sql);
  PRISMA_CHECK(result.ok()) << sql << " -> " << result.status().ToString();
  return std::move(result).value();
}

// --------------------------------- Replicated machine under chaos (§13)

/// Outcome of one replicated soak: the base SoakOutcome plus the
/// replication trail the assertions key on.
struct ReplicatedSoakOutcome {
  SoakOutcome base;
  uint64_t unavailable = 0;
  uint64_t failovers = 0;
  uint64_t stale_marks = 0;
  uint64_t resyncs_completed = 0;
};

/// The tentpole availability soak: the same lossy/crashing machine as
/// RunChaosSoak, but with every fragment replicated on two PEs and the
/// coordinators pinned to PE 0. EVERY audit read — including those inside
/// the crash window — must return the model-exact answer; zero reads may
/// degrade to Unavailable. After the drain, the restarted PE's replicas
/// must have resynced to byte-identical checkpoint snapshots.
ReplicatedSoakOutcome RunReplicatedChaosSoak(uint64_t seed,
                                             bool trace = false) {
  MachineConfig config = ChaosMachine(seed);
  config.replicate_fragments = true;
  config.coordinator_pes = {0};
  config.enable_tracing = trace;
  // Stretch the down window past the write-retransmission budget: a write
  // touching a dead replica must EXHAUST its retries and shed the replica
  // (marking it stale) instead of merely stalling until the restart —
  // that is what makes the restart exercise the full resync path.
  config.rpc_attempts = 4;  // Exhausts after 250ms + 500ms + 1s retries.
  net::PeCrashEvent& crash = config.fault_plan.pe_crashes[0];
  crash.restart_at_ns = crash.at_ns + 3 * sim::kNanosPerSecond +
                        static_cast<sim::SimTime>(seed % 4) * 250 *
                            sim::kNanosPerMilli;
  PrismaDb db(config);
  ChaosDriver driver(&db, seed, 40, /*reads_must_succeed=*/true);
  driver.Run();

  ReplicatedSoakOutcome out;
  auto result = db.Execute("SELECT id FROM t");
  PRISMA_CHECK(result.ok()) << result.status().ToString();
  for (const Tuple& tuple : result->tuples) {
    out.base.ids.insert(tuple.at(0).int_value());
  }
  PRISMA_CHECK(out.base.ids == driver.model())
      << "committed state diverged from the model: db has "
      << out.base.ids.size() << " rows, model has " << driver.model().size();

  // Resync convergence: after a checkpoint both replicas of every
  // fragment hold byte-identical snapshots on their PEs' stable stores.
  MustExecute(&db, "CHECKPOINT");
  const auto table = db.gdh().dictionary().GetTable("t");
  PRISMA_CHECK(table.ok());
  for (const gdh::FragmentInfo& frag : (*table)->fragments) {
    const auto home = db.stable_store(frag.pe).ReadSnapshot(
        frag.name + ".ckpt");
    const auto backup = db.stable_store(frag.backup_pe).ReadSnapshot(
        gdh::BackupFragmentName(frag.name) + ".ckpt");
    PRISMA_CHECK(home.ok() && backup.ok())
        << frag.name << " missing a replica checkpoint (home="
        << gdh::ReplicaStateName(frag.state)
        << ", backup=" << gdh::ReplicaStateName(frag.backup_state) << ")";
    PRISMA_CHECK(*home == *backup)
        << "replicas of " << frag.name << " diverged after resync";
  }

  out.base.failed = driver.failed_statements();
  out.base.audits = driver.audits();
  out.base.dropped = db.network().stats().dropped;
  out.base.duplicated = db.network().stats().duplicated;
  out.base.crashes = db.metrics().CounterTotal("pe.crashes");
  out.unavailable = db.metrics().CounterTotal("query.unavailable");
  out.failovers = db.metrics().CounterTotal("replica.failovers");
  out.stale_marks = db.metrics().CounterTotal("replica.stale_marks");
  out.resyncs_completed =
      db.metrics().CounterTotal("replica.resyncs_completed");
  out.base.metrics = db.DumpMetrics();
  if (trace) out.base.trace = db.DumpTrace();
  return out;
}

TEST(ChaosTest, ReplicatedSoakServesEveryReadAcross25Seeds) {
  uint64_t total_audits = 0;
  uint64_t total_dropped = 0;
  uint64_t total_failovers = 0;
  uint64_t total_resyncs = 0;
  for (const uint64_t seed : SoakSeeds(1, 25)) {
    PRISMA_SEED_REPRO("ChaosTest.ReplicatedSoakServesEveryReadAcross25Seeds",
                      seed);
    const ReplicatedSoakOutcome out = RunReplicatedChaosSoak(seed);
    EXPECT_EQ(out.base.crashes, 1u);  // The scheduled PE crash fired...
    EXPECT_EQ(out.unavailable, 0u);   // ...and nothing degraded through it.
    // Every replica shed during the window rejoined via resync. (Seeds
    // whose window sheds nothing recover in place from WAL; the byte-
    // identical snapshot check inside the soak covers both paths.)
    if (out.stale_marks > 0) EXPECT_GT(out.resyncs_completed, 0u);
    total_audits += out.base.audits;
    total_dropped += out.base.dropped;
    total_failovers += out.failovers;
    total_resyncs += out.resyncs_completed;
  }
  if (SingleSeedMode()) return;
  // Not a fair-weather run: reads really landed inside crash windows
  // (failovers fired), messages were lost, and resyncs rebuilt replicas.
  EXPECT_GT(total_audits, 0u);
  EXPECT_GT(total_dropped, 0u);
  EXPECT_GT(total_failovers, 0u);
  EXPECT_GT(total_resyncs, 0u);
}

TEST(ChaosTest, ReplicatedSameSeedReplayIsByteIdenticalIncludingTraces) {
  const ReplicatedSoakOutcome a = RunReplicatedChaosSoak(5, /*trace=*/true);
  const ReplicatedSoakOutcome b = RunReplicatedChaosSoak(5, /*trace=*/true);
  EXPECT_EQ(a.base.ids, b.base.ids);
  EXPECT_EQ(a.base.metrics, b.base.metrics);  // Byte-identical dump.
  ASSERT_FALSE(a.base.trace.empty());
  ASSERT_EQ(a.base.trace.size(), b.base.trace.size());
  EXPECT_EQ(a.base.trace, b.base.trace);
}

// ------------------------------------------- Exchange shuffles under chaos

/// Two tables whose equi-join is NOT colocated: fact is fragmented on a
/// non-key column, so the planner must lower the join to a streaming
/// exchange whose tuple batches and acks cross the faulty interconnect.
void CreateExchangeTables(PrismaDb* db) {
  MustExecute(db, "CREATE TABLE fact (k INT, v INT) FRAGMENTED BY "
                  "HASH(v) INTO 4 FRAGMENTS");
  MustExecute(db, "CREATE TABLE dim (k INT, label STRING) FRAGMENTED BY "
                  "HASH(k) INTO 2 FRAGMENTS");
  for (int i = 0; i < 30; ++i) {
    MustExecute(db, StrFormat("INSERT INTO fact VALUES (%d, %d)", i % 10, i));
  }
  for (int i = 0; i < 10; ++i) {
    MustExecute(db, StrFormat("INSERT INTO dim VALUES (%d, 'd%d')", i, i));
  }
}

constexpr char kExchangeJoinSql[] =
    "SELECT f.v, d.label FROM fact f JOIN dim d ON f.k = d.k";

struct ExchangeSoakOutcome {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t retransmits = 0;
  uint64_t dup_batches = 0;
  uint64_t batches_sent = 0;
  std::string metrics;
};

/// One non-colocated join under a seeded lossy/duplicating/jittery
/// interconnect. Small batches and a tight credit window turn the 30-row
/// shuffle into many batch/ack round trips, each a chance for the fault
/// plan to misbehave.
ExchangeSoakOutcome RunExchangeChaos(
    uint64_t seed, exec::ExecMode mode = exec::ExecMode::kRow) {
  MachineConfig config;
  config.pes = 4;
  config.exec_mode = mode;
  config.exchange_batch_rows = 4;
  config.exchange_credit_window = 2;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 7);
  config.fault_plan.seed = seed;
  config.fault_plan.link.drop_probability = 0.01 + 0.04 * rng.NextDouble();
  config.fault_plan.link.duplicate_probability = 0.05 * rng.NextDouble();
  config.fault_plan.link.max_extra_delay_ns = rng.UniformInt(0, 200'000);

  PrismaDb db(config);
  CreateExchangeTables(&db);
  QueryResult joined = MustExecute(&db, kExchangeJoinSql);
  // Every fact key (i % 10) matches exactly one dim row: losses and
  // duplicates may slow the shuffle down but never change the answer.
  PRISMA_CHECK(joined.tuples.size() == 30)
      << joined.tuples.size() << " rows under seed " << seed;

  ExchangeSoakOutcome out;
  out.dropped = db.network().stats().dropped;
  out.duplicated = db.network().stats().duplicated;
  out.retransmits = db.metrics().CounterTotal("exchange.retransmits");
  out.dup_batches = db.metrics().CounterTotal("exchange.dup_batches");
  out.batches_sent = db.metrics().CounterTotal("exchange.batches_sent");
  out.metrics = db.DumpMetrics();
  return out;
}

TEST(ChaosTest, ExchangeSoakSurvives25Seeds) {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t recovered = 0;
  for (const uint64_t seed : SoakSeeds(1, 25)) {
    PRISMA_SEED_REPRO("ChaosTest.ExchangeSoakSurvives25Seeds", seed);
    const ExchangeSoakOutcome out = RunExchangeChaos(seed);
    EXPECT_GT(out.batches_sent, 0u);  // The join really used the exchange.
    dropped += out.dropped;
    duplicated += out.duplicated;
    recovered += out.retransmits + out.dup_batches;
  }
  if (SingleSeedMode()) return;
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(duplicated, 0u);
  // The faults hit the shuffle itself, not just the RPC plane: lost
  // batches/acks forced producer retransmissions, and duplicated ones
  // landed in the consumers' sequence-number dedup.
  EXPECT_GT(recovered, 0u);
}

TEST(ChaosTest, ExchangeSameSeedReplayIsByteIdentical) {
  const ExchangeSoakOutcome a = RunExchangeChaos(13);
  const ExchangeSoakOutcome b = RunExchangeChaos(13);
  EXPECT_EQ(a.metrics, b.metrics);  // Byte-identical, exchanges included.
  EXPECT_NE(a.metrics.find("exchange.batches_sent"), std::string::npos);
}

/// The vectorized path (column-encoded wire frames, batch kernels) under
/// the same lossy interconnect: the answer must survive every seed, and
/// lost/duplicated column frames must flow through the same
/// retransmission and dedup machinery as row batches.
TEST(ChaosTest, VectorizedExchangeSoakSurvives25Seeds) {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t recovered = 0;
  for (const uint64_t seed : SoakSeeds(1, 25)) {
    PRISMA_SEED_REPRO("ChaosTest.VectorizedExchangeSoakSurvives25Seeds", seed);
    const ExchangeSoakOutcome out =
        RunExchangeChaos(seed, exec::ExecMode::kVectorized);
    EXPECT_GT(out.batches_sent, 0u);
    dropped += out.dropped;
    duplicated += out.duplicated;
    recovered += out.retransmits + out.dup_batches;
  }
  if (SingleSeedMode()) return;
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(duplicated, 0u);
  EXPECT_GT(recovered, 0u);
}

TEST(ChaosTest, VectorizedSameSeedReplayIsByteIdentical) {
  const ExchangeSoakOutcome a =
      RunExchangeChaos(17, exec::ExecMode::kVectorized);
  const ExchangeSoakOutcome b =
      RunExchangeChaos(17, exec::ExecMode::kVectorized);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_NE(a.metrics.find("exchange.wire_bits"), std::string::npos);
}

// --------------------------------------- Multi-stage OLAP under chaos

struct OlapSoakOutcome {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t recovered = 0;   // Retransmits + deduplicated batches/replies.
  uint64_t olap_parts = 0;
  std::string metrics;
};

/// A distributed group-by (pre-aggregate + shuffle-by-key) and a
/// range-partitioned sort (sample stage + shuffle) under the same seeded
/// lossy/duplicating/jittery interconnect as the exchange soak. Both are
/// multi-stage plans (DESIGN.md §14): the stage barrier, the sample and
/// merge replies, and the shuffle batches all cross the faulty links, and
/// the exact answer must come back every time.
OlapSoakOutcome RunOlapChaos(uint64_t seed,
                             exec::ExecMode mode = exec::ExecMode::kRow) {
  MachineConfig config;
  config.pes = 4;
  config.exec_mode = mode;
  config.exchange_batch_rows = 4;
  config.exchange_credit_window = 2;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 29);
  config.fault_plan.seed = seed;
  config.fault_plan.link.drop_probability = 0.01 + 0.04 * rng.NextDouble();
  config.fault_plan.link.duplicate_probability = 0.05 * rng.NextDouble();
  config.fault_plan.link.max_extra_delay_ns = rng.UniformInt(0, 200'000);

  PrismaDb db(config);
  MustExecute(&db, "CREATE TABLE sales (id INT, g STRING, v INT) "
                   "FRAGMENTED BY HASH(id) INTO 4 FRAGMENTS");
  for (int i = 0; i < 40; ++i) {
    MustExecute(&db, StrFormat("INSERT INTO sales VALUES (%d, 'g%d', %d)",
                               i, i % 5, i));
  }

  const QueryResult grouped = MustExecute(
      &db, "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM sales "
           "GROUP BY g ORDER BY g");
  PRISMA_CHECK(grouped.tuples.size() == 5)
      << grouped.tuples.size() << " groups under seed " << seed;
  for (int k = 0; k < 5; ++k) {
    // Group 'gk' holds i = k, k+5, ..., k+35: 8 rows summing 8k + 140.
    PRISMA_CHECK(grouped.tuples[k].at(1) == Value::Int(8));
    PRISMA_CHECK(grouped.tuples[k].at(2) == Value::Int(8 * k + 140))
        << "group " << k << " under seed " << seed;
  }
  const QueryResult sorted =
      MustExecute(&db, "SELECT id, v FROM sales ORDER BY v DESC, id");
  PRISMA_CHECK(sorted.tuples.size() == 40);
  for (int i = 0; i < 40; ++i) {
    PRISMA_CHECK(sorted.tuples[i].at(1) == Value::Int(39 - i))
        << "rank " << i << " under seed " << seed;
  }

  OlapSoakOutcome out;
  out.dropped = db.network().stats().dropped;
  out.duplicated = db.network().stats().duplicated;
  out.recovered = db.metrics().CounterTotal("exchange.retransmits") +
                  db.metrics().CounterTotal("exchange.dup_batches") +
                  db.metrics().CounterTotal("gdh.rpc_retries") +
                  db.metrics().CounterTotal("gdh.dup_replies");
  out.olap_parts = db.metrics().CounterTotal("olap.parts");
  out.metrics = db.DumpMetrics();
  return out;
}

TEST(ChaosTest, OlapSoakSurvives25Seeds) {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t recovered = 0;
  for (const uint64_t seed : SoakSeeds(1, 25)) {
    PRISMA_SEED_REPRO("ChaosTest.OlapSoakSurvives25Seeds", seed);
    const OlapSoakOutcome out = RunOlapChaos(seed);
    // Both statements really took the multi-stage path (one group-by
    // part + one sort part).
    EXPECT_EQ(out.olap_parts, 2u);
    dropped += out.dropped;
    duplicated += out.duplicated;
    recovered += out.recovered;
  }
  if (SingleSeedMode()) return;
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(duplicated, 0u);
  // Lost shuffle batches, sample/merge replies or barrier votes forced
  // retransmissions somewhere — and every answer still came back exact.
  EXPECT_GT(recovered, 0u);
}

TEST(ChaosTest, OlapSameSeedReplayIsByteIdentical) {
  const OlapSoakOutcome a = RunOlapChaos(19);
  const OlapSoakOutcome b = RunOlapChaos(19);
  EXPECT_EQ(a.metrics, b.metrics);  // Byte-identical, olap.* included.
  EXPECT_NE(a.metrics.find("olap.shuffle_bits"), std::string::npos);
  const OlapSoakOutcome va = RunOlapChaos(23, exec::ExecMode::kVectorized);
  const OlapSoakOutcome vb = RunOlapChaos(23, exec::ExecMode::kVectorized);
  EXPECT_EQ(va.metrics, vb.metrics);
}

TEST(ChaosTest, LinkDownMidShuffleDegradesToUnavailableNotAHang) {
  MachineConfig config;
  config.pes = 4;
  // Direct links between all PEs: the down windows below cut exactly the
  // inter-fragment pairs, with no detour route around them.
  config.topology = TopologyKind::kFullyConnected;
  config.exchange_batch_rows = 4;
  // Tight retry knobs so the attempt budgets exhaust within seconds of
  // virtual time instead of the fault-free 10-second windows.
  config.rpc_timeout_ns = 50 * sim::kNanosPerMilli;
  config.rpc_backoff_cap_ns = 400 * sim::kNanosPerMilli;
  // A zero-length placeholder window turns fault mode on from the start
  // (the snappy fault-mode timers are chosen at construction); the real
  // outage is installed mid-run, once the tables exist.
  config.fault_plan.down_windows.push_back({1, 2, 0, 0});

  PrismaDb db(config);
  CreateExchangeTables(&db);

  // Cut every link among PEs 1-3 (which host all fragments, producers and
  // consumers) for longer than any retransmission budget survives; PE 0
  // keeps the client and the GDH reachable so the failure can be reported.
  const sim::SimTime from = db.simulator().now();
  const sim::SimTime until = from + 60 * sim::kNanosPerSecond;
  net::FaultPlan outage;
  outage.down_windows = {
      {1, 2, from, until}, {1, 3, from, until}, {2, 3, from, until}};
  db.network().SetFaultPlan(outage);

  // The shuffle cannot complete: batches and acks between fragments are
  // all lost. The statement must come back as a typed Unavailable — not
  // hang — once a producer's batch-attempt budget (or the coordinator's
  // RPC budget, whichever path dies first) runs out.
  auto severed = db.Execute(kExchangeJoinSql);
  ASSERT_FALSE(severed.ok());
  EXPECT_EQ(severed.status().code(), StatusCode::kUnavailable)
      << severed.status().ToString();

  // Once the window passes the machine is whole again: the same join
  // completes normally with the full answer.
  db.simulator().RunUntil(until);
  EXPECT_EQ(MustExecute(&db, kExchangeJoinSql).tuples.size(), 30u);
}

// --------------------------------------- Recursive queries under chaos

/// Seeded graph for the recursive workload: a chain with a cycle splice,
/// so the fixpoint needs several rounds and the closure saturates inside
/// the cycle.
std::vector<std::pair<int, int>> ChaosGraph(uint64_t seed) {
  Rng rng(seed * 0x2545f4914f6cdd1dULL + 3);
  std::vector<std::pair<int, int>> edges;
  const int nodes = static_cast<int>(rng.UniformInt(5, 10));
  for (int i = 0; i + 1 < nodes; ++i) edges.push_back({i, i + 1});
  // Back edge creating a cycle somewhere in the chain.
  const int back_from = static_cast<int>(rng.UniformInt(1, nodes - 1));
  edges.push_back({back_from, static_cast<int>(rng.Uniform(back_from))});
  // A couple of random shortcuts (possible duplicates).
  for (int i = 0; i < 2; ++i) {
    edges.push_back({static_cast<int>(rng.Uniform(nodes)),
                     static_cast<int>(rng.Uniform(nodes))});
  }
  return edges;
}

constexpr char kFixpointProgram[] =
    "p(X, Y) :- edge(X, Y).\n"
    "p(X, Z) :- edge(X, Y), p(Y, Z).\n"
    "? p(X, Y).";

struct FixpointSoakOutcome {
  bool ok = false;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t retransmits = 0;
  uint64_t dup_batches = 0;
  std::string metrics;
  std::string trace;
};

/// One distributed fixpoint under a seeded lossy/duplicating/jittery
/// interconnect: small batches + tight credit turn every round's
/// all-to-all delta shuffle into many batch/ack round trips. The query
/// must terminate with the exact closure or a typed Unavailable — never
/// hang, never a duplicated derived tuple.
FixpointSoakOutcome RunFixpointChaos(uint64_t seed, bool trace = false) {
  MachineConfig config;
  config.pes = 4;
  config.exchange_batch_rows = 4;
  config.exchange_credit_window = 2;
  config.enable_tracing = trace;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 23);
  config.fault_plan.seed = seed;
  config.fault_plan.link.drop_probability = 0.01 + 0.04 * rng.NextDouble();
  config.fault_plan.link.duplicate_probability = 0.05 * rng.NextDouble();
  config.fault_plan.link.max_extra_delay_ns = rng.UniformInt(0, 200'000);

  PrismaDb db(config);
  MustExecute(&db, "CREATE TABLE edge (src INT, dst INT) FRAGMENTED BY "
                   "HASH(src) INTO 3 FRAGMENTS");
  const std::vector<std::pair<int, int>> edges = ChaosGraph(seed);
  std::string sql = "INSERT INTO edge VALUES ";
  std::vector<Tuple> oracle_in;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += StrFormat("(%d, %d)", edges[i].first, edges[i].second);
    oracle_in.push_back(
        Tuple({Value::Int(edges[i].first), Value::Int(edges[i].second)}));
  }
  MustExecute(&db, sql);

  auto answered = db.ExecutePrismalog(kFixpointProgram);
  FixpointSoakOutcome out;
  if (answered.ok()) {
    out.ok = true;
    auto oracle = exec::TransitiveClosure(oracle_in,
                                          exec::TcAlgorithm::kSeminaive);
    PRISMA_CHECK(oracle.ok());
    PRISMA_CHECK(answered->tuples.size() == oracle->size())
        << "closure diverged under seed " << seed << ": got "
        << answered->tuples.size() << " pairs, want " << oracle->size();
    for (size_t i = 0; i < oracle->size(); ++i) {
      PRISMA_CHECK(answered->tuples[i] == (*oracle)[i])
          << "pair " << i << " diverged under seed " << seed;
    }
  } else {
    // Degradation must be typed, not a hang or a wrong answer.
    PRISMA_CHECK(answered.status().code() == StatusCode::kUnavailable)
        << answered.status().ToString();
  }
  out.dropped = db.network().stats().dropped;
  out.duplicated = db.network().stats().duplicated;
  out.retransmits = db.metrics().CounterTotal("fixpoint.retransmits") +
                    db.metrics().CounterTotal("exchange.retransmits");
  out.dup_batches = db.metrics().CounterTotal("fixpoint.dup_batches") +
                    db.metrics().CounterTotal("exchange.dup_batches");
  out.metrics = db.DumpMetrics();
  if (trace) out.trace = db.DumpTrace();
  return out;
}

TEST(ChaosTest, FixpointSoakSurvives25Seeds) {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t recovered = 0;
  uint64_t answered = 0;
  for (const uint64_t seed : SoakSeeds(1, 25)) {
    PRISMA_SEED_REPRO("ChaosTest.FixpointSoakSurvives25Seeds", seed);
    const FixpointSoakOutcome out = RunFixpointChaos(seed);
    if (out.ok) ++answered;
    dropped += out.dropped;
    duplicated += out.duplicated;
    recovered += out.retransmits + out.dup_batches;
  }
  if (SingleSeedMode()) return;
  // Not a fair-weather run: faults landed on the wire, the recursion's
  // batch streams recovered from them, and most seeds still produced the
  // exact closure.
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(duplicated, 0u);
  EXPECT_GT(recovered, 0u);
  EXPECT_GT(answered, 20u);
}

TEST(ChaosTest, FixpointSameSeedReplayIsByteIdenticalIncludingTraces) {
  const FixpointSoakOutcome a = RunFixpointChaos(19, /*trace=*/true);
  const FixpointSoakOutcome b = RunFixpointChaos(19, /*trace=*/true);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.metrics, b.metrics);  // Byte-identical, fixpoint included.
  ASSERT_FALSE(a.trace.empty());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_NE(a.metrics.find("fixpoint.batches_sent"), std::string::npos);
}

// --------------------------------------- Serving layer under chaos (§15)

struct ServingSoakOutcome {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t unavailable = 0;
  uint64_t crashes = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  std::string latency_line;
  std::string metrics;
  std::string trace;
};

/// Open-loop serving workload through the admission dispatcher on the
/// lossy/crashing ChaosMachine, offered well past the machine's fault-free
/// saturation (bench_serving's sweep knees near ~100 qps at this scale).
/// The contract under fire: EVERY session statement resolves — an answer,
/// a typed Unavailable from the RPC layer, or a typed Overloaded shed at
/// admission — never a hang, and the same seed replays byte-identically.
ServingSoakOutcome RunServingChaosSoak(uint64_t seed, bool trace = false) {
  MachineConfig config = ChaosMachine(seed);
  config.enable_tracing = trace;
  PrismaDb db(config);
  PRISMA_CHECK(
      serve::WorkloadGenerator::SetupSchema(&db, /*rows=*/48, kFragments)
          .ok());

  serve::WorkloadProfile profile;
  profile.sessions = 40;
  // Well past 2x this machine's saturation for an analytics-heavy mix
  // (the dispatcher queue must actually fill): overload, not fair weather.
  profile.offered_qps = 1500;
  profile.duration_ns = sim::kNanosPerSecond / 2;
  profile.mix = {0.4, 0.1, 0.4, 0.1};
  serve::WorkloadGenerator generator(seed, profile);

  serve::Dispatcher dispatcher(&db, serve::DispatcherOptions());
  for (const serve::ArrivalEvent& event : generator.Generate()) {
    dispatcher.Submit(
        event.sql, exec::kAutoCommit,
        [](const gdh::ClientReply& reply, sim::SimTime) {
          // Typed resolution only: success, shed at admission, or an RPC
          // budget exhausted against a crashed PE. Anything else (a lexer
          // error, a wrong-answer shape) is a bug, not degradation.
          PRISMA_CHECK(reply.status.ok() ||
                       reply.status.code() == StatusCode::kOverloaded ||
                       reply.status.code() == StatusCode::kUnavailable)
              << reply.status.ToString();
        },
        event.at_ns);
  }
  dispatcher.Run();

  const serve::Dispatcher::Stats& stats = dispatcher.stats();
  PRISMA_CHECK(stats.submitted == stats.completed + stats.shed)
      << "serving soak hang under seed " << seed << ": " << stats.submitted
      << " submitted, " << stats.completed << " completed, " << stats.shed
      << " shed";
  ServingSoakOutcome out;
  out.submitted = stats.submitted;
  out.completed = stats.completed;
  out.shed = stats.shed;
  out.unavailable = stats.unavailable;
  out.crashes = db.metrics().CounterTotal("pe.crashes");
  out.dropped = db.network().stats().dropped;
  out.duplicated = db.network().stats().duplicated;
  out.latency_line = dispatcher.latency().DumpLine();
  out.metrics = db.DumpMetrics();
  if (trace) out.trace = db.DumpTrace();
  return out;
}

TEST(ChaosTest, ServingSoakShedsButNeverHangsAcross25Seeds) {
  uint64_t total_shed = 0;
  uint64_t total_completed = 0;
  uint64_t total_dropped = 0;
  for (const uint64_t seed : SoakSeeds(1, 25)) {
    PRISMA_SEED_REPRO("ChaosTest.ServingSoakShedsButNeverHangsAcross25Seeds",
                      seed);
    const ServingSoakOutcome out = RunServingChaosSoak(seed);
    EXPECT_EQ(out.crashes, 1u);  // The scheduled PE crash fired.
    EXPECT_GT(out.completed, 0u);
    total_shed += out.shed;
    total_completed += out.completed;
    total_dropped += out.dropped;
  }
  if (SingleSeedMode()) return;
  // Overload was real (admission shed), faults were real (drops landed),
  // and the machine still served the bulk of the offered statements.
  EXPECT_GT(total_shed, 0u);
  EXPECT_GT(total_dropped, 0u);
  EXPECT_GT(total_completed, total_shed / 10);
}

TEST(ChaosTest, ServingSameSeedReplayIsByteIdenticalIncludingTraces) {
  const ServingSoakOutcome a = RunServingChaosSoak(9, /*trace=*/true);
  const ServingSoakOutcome b = RunServingChaosSoak(9, /*trace=*/true);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.unavailable, b.unavailable);
  EXPECT_EQ(a.latency_line, b.latency_line);  // Exact quantiles replay too.
  EXPECT_EQ(a.metrics, b.metrics);
  ASSERT_FALSE(a.trace.empty());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.trace, b.trace);
}

// ------------------------------------------------- Presumed-abort details

TEST(ChaosTest, CommitDecisionIsPersistedBeforePhase2AndRetiredAfter) {
  MachineConfig config;
  config.pes = 4;
  PrismaDb db(config);
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));

  auto session = db.OpenSession();
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        session.Execute(StrFormat("INSERT INTO t VALUES (%d, %d)", i, i))
            .ok());
  }
  ASSERT_TRUE(session.Execute("COMMIT").ok());

  // Presumed abort: the commit decision hit the GDH's stable stream before
  // phase 2, and the end record retired it once every participant acked —
  // so the in-memory set is empty again and the log holds the C/E pair.
  EXPECT_TRUE(db.gdh().committed_decisions().empty());
  const auto& log = db.stable_store(0).ReadStream("gdh.2pc");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0][0], 'C');
  EXPECT_EQ(log[1][0], 'E');
  EXPECT_EQ(log[0].substr(2), log[1].substr(2));  // Same transaction id.
}

TEST(ChaosTest, AbortsAreNeverLogged) {
  MachineConfig config;
  config.pes = 4;
  PrismaDb db(config);
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  auto session = db.OpenSession();
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (1, 1)").ok());
  ASSERT_TRUE(session.Execute("ABORT").ok());

  // An aborted transaction writes no decision record: absence means abort.
  EXPECT_TRUE(db.stable_store(0).ReadStream("gdh.2pc").empty());
  EXPECT_TRUE(db.gdh().committed_decisions().empty());
}

TEST(ChaosTest, CrashAfterPrepareWithVoteInFlightAbortsInsteadOfLosingWrites) {
  MachineConfig config;
  config.pes = 4;
  PrismaDb db(config);
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  auto session = db.OpenSession();
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        session.Execute(StrFormat("INSERT INTO t VALUES (%d, %d)", i, i))
            .ok());
  }

  // Submit COMMIT asynchronously and stop the simulation the instant the
  // first participant's prepare (redo records + marker) reaches its WAL.
  // Its yes-vote is then committed to delivery, but the coordinator has
  // not decided yet.
  const std::vector<gdh::FragmentInfo> frags =
      db.gdh().dictionary().GetTable("t").value()->fragments;
  std::vector<size_t> wal_before;
  for (const gdh::FragmentInfo& frag : frags) {
    wal_before.push_back(
        db.stable_store(frag.pe).ReadStream(frag.name + ".wal").size());
  }
  bool replied = false;
  Status outcome;
  db.Submit("COMMIT", /*prismalog=*/false, session.txn(),
            [&](const gdh::ClientReply& reply, sim::SimTime) {
              replied = true;
              outcome = reply.status;
            });
  int prepared = -1;
  while (prepared < 0) {
    ASSERT_TRUE(db.simulator().Step()) << "drained before any prepare";
    for (size_t i = 0; i < frags.size(); ++i) {
      if (db.stable_store(frags[i].pe)
              .ReadStream(frags[i].name + ".wal")
              .size() > wal_before[i]) {
        prepared = static_cast<int>(i);
        break;
      }
    }
  }
  ASSERT_FALSE(replied);

  // Crash the prepared participant and respawn it mid-2PC. The replacement
  // recovers in doubt and inquires; the coordinator must neither answer
  // "abort" while phase 1 could still decide commit, nor log a commit
  // decision for the now-doomed transaction — either would let the client
  // see "committed" while the fragment's updates are gone.
  ASSERT_TRUE(db.CrashFragment("t", prepared).ok());
  ASSERT_TRUE(db.RecoverFragment("t", prepared).ok());
  db.Run();

  ASSERT_TRUE(replied);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(db.gdh().stats().txns_doomed, 1u);
  // No commit decision was ever logged, and no fragment kept any insert.
  EXPECT_TRUE(db.stable_store(0).ReadStream("gdh.2pc").empty());
  EXPECT_TRUE(db.gdh().committed_decisions().empty());
  EXPECT_EQ(MustExecute(&db, "SELECT id FROM t").tuples.size(), 0u);
}

TEST(ChaosTest, TxnIdsAreNotReusedAfterCoordinatorRestart) {
  MachineConfig config;
  config.pes = 4;
  PrismaDb db(config);
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  exec::TxnId max_txn = 0;
  for (int i = 0; i < 3; ++i) {
    auto session = db.OpenSession();
    ASSERT_TRUE(session.Execute("BEGIN").ok());
    ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (1, 1)").ok());
    max_txn = std::max(max_txn, session.txn());
    ASSERT_TRUE(session.Execute("ABORT").ok());
  }
  ASSERT_GT(max_txn, 0);
  // Aborts leave no decision record; only the id-reservation stream
  // remembers that these ids were handed out.
  ASSERT_TRUE(db.stable_store(0).ReadStream("gdh.2pc").empty());

  // A restarted coordinator replaying the same stable store must not hand
  // out ids again: participants' terminated-transaction records would
  // refuse the fresh transaction's writes as duplicates.
  gdh::GdhProcess::Config gdh_config;
  gdh_config.fragment_pes = {1, 2, 3};
  gdh_config.coordinator_pes = {1, 2, 3};
  gdh_config.resources[0] = {nullptr, &db.stable_store(0)};
  auto restarted = std::make_unique<gdh::GdhProcess>(std::move(gdh_config));
  gdh::GdhProcess* raw = restarted.get();
  db.runtime().Spawn(0, std::move(restarted));
  db.Run();  // OnStart replays the decision log and the id reservations.
  EXPECT_GT(raw->next_txn(), max_txn);
}

TEST(ChaosTest, DuplicatedRequestsAreAnsweredFromTheReplyCache) {
  MachineConfig config;
  config.pes = 4;
  config.fault_plan.seed = 3;
  config.fault_plan.link.duplicate_probability = 0.3;  // No drops/jitter.
  PrismaDb db(config);
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  for (int i = 0; i < 30; ++i) {
    MustExecute(&db, StrFormat("INSERT INTO t VALUES (%d, %d)", i, i));
  }
  EXPECT_EQ(MustExecute(&db, "SELECT id FROM t").tuples.size(), 30u);

  // Duplicated requests were replayed from the OFM reply caches instead of
  // re-executing (no row appeared twice above), and duplicated replies
  // were swallowed by the GDH's request accounting.
  EXPECT_GT(db.network().stats().duplicated, 0u);
  EXPECT_GT(db.metrics().CounterTotal("ofm.dup_requests"), 0u);
}

TEST(ChaosTest, InertFaultPlanLeavesMetricsIdentical) {
  auto run = [](const MachineConfig& config) {
    PrismaDb db(config);
    MustExecute(&db, "CREATE TABLE t (id INT) FRAGMENTED BY HASH(id) "
                     "INTO 2 FRAGMENTS");
    for (int i = 0; i < 10; ++i) {
      MustExecute(&db, StrFormat("INSERT INTO t VALUES (%d)", i));
    }
    MustExecute(&db, "SELECT id FROM t");
    return db.DumpMetrics();
  };
  MachineConfig plain;
  plain.pes = 4;
  MachineConfig inert = plain;
  inert.fault_plan = net::FaultPlan();  // All defaults: no faults.
  // A default-constructed plan is indistinguishable from no plan at all.
  EXPECT_EQ(run(plain), run(inert));
}

}  // namespace
}  // namespace prisma::core
