// Bad D7 citizens, all three directions: an assignment with no site
// annotation, an annotated site whose transition the table never
// declared, and a declared table entry no site exercises.
// PRISMA_STATE_MACHINE(Gear: init->kLow, kLow->kHigh, kHigh->kLow)
enum class Gear { kLow, kHigh };

struct Box {
  Gear gear = Gear::kLow;  // Unannotated init assignment.
};

void Shift(Box& box) {
  // PRISMA_TRANSITION(kHigh, kHigh, the table never declared this)
  box.gear = Gear::kHigh;
}
