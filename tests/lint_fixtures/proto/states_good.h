// Good D7 citizen: a lifecycle enum with a declared transition table and
// a tagged setter funnel. Every transition in the table is exercised by
// an annotated site in states_good.cc.
#ifndef PROTO_STATES_GOOD_H_
#define PROTO_STATES_GOOD_H_

// PRISMA_STATE_MACHINE(Phase: init->kIdle, kIdle->kRunning,
//                      kRunning->kDone)
enum class Phase { kIdle, kRunning, kDone };

struct Job {
  // PRISMA_TRANSITION(init, kIdle, jobs are born idle)
  Phase phase = Phase::kIdle;

  // PRISMA_STATE_SETTER(Phase)
  void set_phase(Phase next) { phase_ = next; }

 private:
  Phase phase_;
};

#endif  // PROTO_STATES_GOOD_H_
