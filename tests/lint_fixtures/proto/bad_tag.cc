// D0 fixtures: a typo'd silence tag and a PRISMA_HANDLES naming a mail
// kind that exists nowhere. Both used to be silent no-ops.
#include "proto/messages.h"

struct Mail {
  const char* kind;
};

// PRISMA_HANDLES(kMailTypo)
void OnMail(const Mail& mail) {
  // prisma-lint: odered - misspelled tag silences nothing
  (void)mail;
}
