// Bad D8 citizen: the counter name is a typo that the registry never
// declared, so the increment silently mints a new time series.
struct Counter {
  long value = 0;
};

Counter* GetCounter(const char* name);

void Record() {
  GetCounter("fix.typo")->value += 1;
}
