// Good D6 citizen: the pending-RPC container declares its settlement
// triad, and every declared path visibly settles (erase/clear) or
// delegates to another declared path.
#include <map>

struct PendingRpc {
  int attempts = 0;
};

// PRISMA_SETTLES(rpcs_: success=Settle, exhaustion=Expire, shed=Shed)
std::map<int, PendingRpc> rpcs_;

void Settle(int id) {
  rpcs_.erase(id);
}

void Expire(int id) {
  Settle(id);  // Exhaustion settles through the success path.
}

void Shed() {
  rpcs_.clear();
}

void Register(int id) {
  rpcs_[id] = PendingRpc{};
}
