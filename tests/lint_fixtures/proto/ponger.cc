// Good D5 citizen: the declared set and the dispatch chain agree exactly.
#include "proto/messages.h"

struct Mail {
  const char* kind;
};

// PRISMA_HANDLES(kMailPing, kMailPong)
void OnMail(const Mail& mail) {
  if (mail.kind == kMailPing) {
    return;
  } else if (mail.kind == kMailPong) {
    return;
  }
}
