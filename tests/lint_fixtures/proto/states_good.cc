#include "proto/states_good.h"

void Run(Job& job) {
  // PRISMA_TRANSITION(kIdle, kRunning, work arrived)
  job.set_phase(Phase::kRunning);
}

void Finish(Job& job) {
  // PRISMA_TRANSITION(kRunning, kDone, work drained)
  job.set_phase(Phase::kDone);
}
