// Bad D5 citizen, both directions: dispatches kMailPing without declaring
// it, and declares kMailPong without ever dispatching it (stale contract).
#include "proto/messages.h"

struct Mail {
  const char* kind;
};

// PRISMA_HANDLES(kMailPong)
void OnMail(const Mail& mail) {
  if (mail.kind == kMailPing) {
    return;
  }
}
