// Good D8 citizen: every counter and span literal appears in the
// fixture registry at obs/metric_names.h.
struct Counter {
  long value = 0;
};

Counter* GetCounter(const char* name);
void Span(const char* category, const char* name, long start, long end);

void Record() {
  GetCounter("fix.good")->value += 1;
  Span("fixcat", "fixspan", 0, 1);
}
