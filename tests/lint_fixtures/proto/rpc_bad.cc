// Bad D6 citizens: `orphans_` registers RPCs with no settlement contract
// at all, and `leaky_` declares a triad whose shed path never actually
// settles anything (the RPC leaks).
#include <map>

struct PendingRpc {
  int attempts = 0;
};

std::map<int, PendingRpc> orphans_;

// PRISMA_SETTLES(leaky_: success=SettleLeaky, exhaustion=ExpireLeaky,
//                shed=ShedLeaky)
std::map<int, PendingRpc> leaky_;

void Register(int id) {
  orphans_[id] = PendingRpc{};
}

void SettleLeaky(int id) {
  leaky_.erase(id);
}

void ExpireLeaky(int id) {
  SettleLeaky(id);
}

void ShedLeaky() {
  // Forgets to clear leaky_ — and calls no declared settle path.
}

void RegisterLeaky(int id) {
  leaky_[id] = PendingRpc{};
}
