// Miniature wire protocol for the D5 fixtures. kMailPing and kMailPong
// are claimed by ponger.cc; kMailOrphan is deliberately claimed by no
// handler — the exhaustiveness case of adding a new mail kind and
// forgetting to route it anywhere (golden D5 finding).
#ifndef PROTO_MESSAGES_H_
#define PROTO_MESSAGES_H_

inline constexpr char kMailPing[] = "ping";
inline constexpr char kMailPong[] = "pong";
inline constexpr char kMailOrphan[] = "orphan";

#endif  // PROTO_MESSAGES_H_
