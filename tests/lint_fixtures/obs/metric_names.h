// Fixture metric-name registry (D8). The `fix.dead` entry is deliberately
// unused by any fixture so the dead-entry direction of the rule fires.
#ifndef OBS_METRIC_NAMES_H_
#define OBS_METRIC_NAMES_H_

inline constexpr const char* kFixtureMetricNames[] = {
    // PRISMA_METRICS_BEGIN
    "fix.dead",
    "fix.good",
    // PRISMA_METRICS_END
};

inline constexpr const char* kFixtureSpanNames[] = {
    // PRISMA_SPANS_BEGIN
    "fixcat",
    "fixspan",
    // PRISMA_SPANS_END
};

#endif  // OBS_METRIC_NAMES_H_
