// Fixture: iteration over an unordered container in a file on the
// columnar wire surface (it includes common/column_batch.h). The order
// rows are appended to a batch becomes frame bytes on the interconnect,
// so both loop forms must produce a D2 diagnostic.
#include <string>
#include <unordered_set>

#include "common/column_batch.h"

namespace fixture {

class FrameBuilder {
 public:
  void AppendAll() {
    for (const std::string& row : pending_) {
      Append(row);
    }
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      Append(*it);
    }
  }

 private:
  void Append(const std::string& row);
  std::unordered_set<std::string> pending_;
};

}  // namespace fixture
