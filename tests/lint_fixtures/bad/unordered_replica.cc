// Fixture: a file on the replication surface (gdh/replication.h) that
// picks a failover order by iterating an unordered container. Both the
// range-for and the iterator loop must produce a D2 diagnostic.
#include <string>
#include <unordered_map>

#include "gdh/replication.h"

namespace fixture {

class FailoverPlanner {
 public:
  void ShedStale() {
    for (const auto& [fragment, state] : states_) {
      MarkStale(fragment, state);
    }
    for (auto it = states_.begin(); it != states_.end(); ++it) {
      MarkStale(it->first, it->second);
    }
  }

 private:
  void MarkStale(const std::string& fragment, int state);
  std::unordered_map<std::string, int> states_;
};

}  // namespace fixture
