// Fixture: iteration over an unordered container in a file on the
// observable surface (it includes pool/runtime.h). Both loop forms must
// produce a D2 diagnostic.
#include <string>
#include <unordered_map>

#include "pool/runtime.h"

namespace fixture {

class Broadcaster {
 public:
  void Flush() {
    for (const auto& [key, value] : peers_) {
      Send(key, value);
    }
    for (auto it = peers_.begin(); it != peers_.end(); ++it) {
      Send(it->first, it->second);
    }
  }

 private:
  void Send(const std::string& key, int value);
  std::unordered_map<std::string, int> peers_;
};

}  // namespace fixture
