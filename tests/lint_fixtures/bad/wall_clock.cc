// Fixture: nondeterminism sources outside src/sim. Every marked line must
// produce exactly one D1 diagnostic.
#include <chrono>
#include <map>
#include <mutex>
#include <random>

namespace fixture {

long Now() {
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

int Roll() { return rand() % 6; }

int Entropy() {
  std::random_device device;
  return static_cast<int>(device());
}

std::mutex guard;

std::map<const char*, int> by_address;

}  // namespace fixture
