// Fixture: a (void) discard with no trailing reason comment must produce
// a D4 diagnostic.
namespace fixture {

struct Status {
  bool ok() const { return true; }
};

Status DoWork();

void Caller() {
  (void)DoWork();
}

}  // namespace fixture
