// Fixture: holding a pointer to another file's process class. Both the
// constructor parameter and the member must produce a D3 diagnostic.
#include "procs/widget.h"

namespace fixture {

class Intruder {
 public:
  explicit Intruder(Widget* victim) : victim_(victim) {}

 private:
  Widget* victim_;
};

}  // namespace fixture
