#ifndef FIXTURE_PROCS_WIDGET_H_
#define FIXTURE_PROCS_WIDGET_H_

// Fixture: a POOL-X process class. Its own header/cc pair may name it;
// any other file taking a Widget pointer or reference trips D3.
namespace pool {
class Process {};
}  // namespace pool

namespace fixture {

class Widget : public pool::Process {
 public:
  int state() const { return state_; }

 private:
  int state_ = 0;
};

}  // namespace fixture

#endif  // FIXTURE_PROCS_WIDGET_H_
