// Fixture: every would-be finding below is silenced the sanctioned way.
// The analyzer must report nothing for this file.
#include <string>
#include <unordered_map>

#include "pool/runtime.h"

namespace fixture {

struct Status {
  bool ok() const { return true; }
};

Status DoWork();

class Quiet {
 public:
  void Drain() {
    // prisma-lint: ordered - values are summed; the result is independent
    for (const auto& [key, value] : peers_) {
      total_ += value;
    }
  }

  long Stamp() {
    // prisma-lint: nondet - fixture demonstrating the approved escape hatch
    return time(nullptr);
  }

  void Fire() {
    (void)DoWork();  // Best-effort; failure is handled by the retry timer.
    // prisma-lint: unused-status - fixture for the annotation form
    (void)DoWork();
  }

 private:
  std::unordered_map<std::string, int> peers_;
  long total_ = 0;
};

}  // namespace fixture
