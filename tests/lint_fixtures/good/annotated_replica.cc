// Fixture: a file on the replication surface (gdh/replication.h) whose
// unordered iteration carries the sanctioned annotation. The analyzer
// must report nothing for this file.
#include <string>
#include <unordered_map>

#include "gdh/replication.h"

namespace fixture {

class ResyncAccounting {
 public:
  long WireBits() {
    // prisma-lint: ordered - bits are summed; the total is order-free
    for (const auto& [fragment, bits] : wire_bits_) {
      total_ += bits;
    }
    return total_;
  }

 private:
  std::unordered_map<std::string, long> wire_bits_;
  long total_ = 0;
};

}  // namespace fixture
