// Fixture: a file on the columnar wire surface (common/column_batch.h)
// whose unordered iteration carries the sanctioned annotation. The
// analyzer must report nothing for this file.
#include <string>
#include <unordered_map>

#include "common/column_batch.h"

namespace fixture {

class QuietFrameBuilder {
 public:
  long DistinctBytes() {
    // prisma-lint: ordered - sizes are summed; the total is order-free
    for (const auto& [row, size] : sizes_) {
      total_ += size;
    }
    return total_;
  }

 private:
  std::unordered_map<std::string, long> sizes_;
  long total_ = 0;
};

}  // namespace fixture
