// Fixture: files under sim/ own the simulation's clock and PRNG; D1 does
// not apply to them. The analyzer must report nothing for this file.
#include <chrono>

namespace fixture {

long RealNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
