#ifndef PRISMA_TESTS_SOAK_REPRO_H_
#define PRISMA_TESTS_SOAK_REPRO_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/str_util.h"

namespace prisma {

/// Seeds a soak loop should run: [from, to] normally, or only $PRISMA_SEED
/// when that environment variable is set — the single-seed repro mode the
/// failure banner below points at.
inline std::vector<uint64_t> SoakSeeds(uint64_t from, uint64_t to) {
  if (const char* env = std::getenv("PRISMA_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  std::vector<uint64_t> seeds;
  for (uint64_t seed = from; seed <= to; ++seed) seeds.push_back(seed);
  return seeds;
}

/// True when $PRISMA_SEED narrowed the soak to one seed: aggregate
/// assertions over the full seed range (total drops > 0, ...) don't hold
/// for a single iteration and should be skipped.
inline bool SingleSeedMode() { return std::getenv("PRISMA_SEED") != nullptr; }

/// RAII for one soak iteration: any failure inside the scope — a gtest
/// assertion (via ScopedTrace) or a PRISMA_CHECK abort deep inside the
/// machine (via ScopedFailureContext) — prints the failing seed and a
/// one-line command that reruns exactly that iteration.
class SeedRepro {
 public:
  SeedRepro(const char* test_filter, uint64_t seed, const char* file, int line)
      : banner_(StrFormat("failing seed: %llu\nrepro: PRISMA_SEED=%llu "
                          "ctest -R %s --output-on-failure",
                          static_cast<unsigned long long>(seed),
                          static_cast<unsigned long long>(seed), test_filter)),
        context_(banner_),
        trace_(file, line, banner_.c_str()) {}

 private:
  std::string banner_;
  ScopedFailureContext context_;
  testing::ScopedTrace trace_;
};

}  // namespace prisma

/// Declares the repro scope for one iteration of a seeded soak loop.
/// `test_filter` must match the enclosing test's ctest name.
#define PRISMA_SEED_REPRO(test_filter, seed) \
  ::prisma::SeedRepro prisma_seed_repro_scope(test_filter, seed, __FILE__, \
                                              __LINE__)

#endif  // PRISMA_TESTS_SOAK_REPRO_H_
