#include <gtest/gtest.h>

#include <memory>

#include "algebra/expr.h"
#include "common/rng.h"
#include "exec/expr_compiler.h"
#include "exec/expr_eval.h"

namespace prisma::exec {
namespace {

using algebra::BinaryOp;
using algebra::Col;
using algebra::Expr;
using algebra::Lit;
using algebra::UnaryOp;

Schema TestSchema() {
  return Schema({{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString},
                 {"b", DataType::kBool},
                 {"n", DataType::kInt64}});  // Column that often holds NULL.
}

Tuple TestTuple() {
  return Tuple({Value::Int(10), Value::Double(2.5), Value::String("abc"),
                Value::Bool(true), Value::Null()});
}

std::unique_ptr<Expr> Bound(std::unique_ptr<Expr> e) {
  auto status = e->Bind(TestSchema());
  EXPECT_TRUE(status.ok()) << status.ToString();
  return e;
}

// ------------------------------------------------------------- Binding

TEST(ExprBindTest, ResolvesColumnsAndTypes) {
  auto e = Expr::Binary(BinaryOp::kAdd, Col("i"), Col("i"));
  ASSERT_TRUE(e->Bind(TestSchema()).ok());
  EXPECT_EQ(e->result_type(), DataType::kInt64);

  auto m = Expr::Binary(BinaryOp::kMul, Col("i"), Col("d"));
  ASSERT_TRUE(m->Bind(TestSchema()).ok());
  EXPECT_EQ(m->result_type(), DataType::kDouble);

  auto c = Expr::Binary(BinaryOp::kLt, Col("s"), Lit("zzz"));
  ASSERT_TRUE(c->Bind(TestSchema()).ok());
  EXPECT_EQ(c->result_type(), DataType::kBool);
}

TEST(ExprBindTest, RejectsUnknownColumn) {
  auto e = Col("nope");
  EXPECT_EQ(e->Bind(TestSchema()).code(), StatusCode::kNotFound);
}

TEST(ExprBindTest, RejectsTypeErrors) {
  EXPECT_FALSE(Expr::Binary(BinaryOp::kAdd, Col("i"), Col("s"))
                   ->Bind(TestSchema())
                   .ok());
  EXPECT_FALSE(Expr::Binary(BinaryOp::kLt, Col("i"), Col("s"))
                   ->Bind(TestSchema())
                   .ok());
  EXPECT_FALSE(Expr::Binary(BinaryOp::kAnd, Col("i"), Col("b"))
                   ->Bind(TestSchema())
                   .ok());
  EXPECT_FALSE(Expr::Unary(UnaryOp::kNot, Col("i"))->Bind(TestSchema()).ok());
  EXPECT_FALSE(Expr::Unary(UnaryOp::kNeg, Col("s"))->Bind(TestSchema()).ok());
  EXPECT_FALSE(Expr::Binary(BinaryOp::kMod, Col("d"), Lit(int64_t{2}))
                   ->Bind(TestSchema())
                   .ok());
}

TEST(ExprBindTest, StringConcatViaPlus) {
  auto e = Expr::Binary(BinaryOp::kAdd, Col("s"), Lit("def"));
  ASSERT_TRUE(e->Bind(TestSchema()).ok());
  EXPECT_EQ(e->result_type(), DataType::kString);
}

// ------------------------------------------------------------ Interpreter

TEST(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(EvalExpr(*Bound(Expr::Binary(BinaryOp::kAdd, Col("i"), Lit(int64_t{5}))),
                     TestTuple())
                .value(),
            Value::Int(15));
  EXPECT_EQ(EvalExpr(*Bound(Expr::Binary(BinaryOp::kMul, Col("i"), Col("d"))),
                     TestTuple())
                .value(),
            Value::Double(25.0));
  EXPECT_EQ(EvalExpr(*Bound(Expr::Binary(BinaryOp::kMod, Col("i"), Lit(int64_t{3}))),
                     TestTuple())
                .value(),
            Value::Int(1));
  EXPECT_EQ(EvalExpr(*Bound(Expr::Unary(UnaryOp::kNeg, Col("d"))), TestTuple())
                .value(),
            Value::Double(-2.5));
}

TEST(ExprEvalTest, IntegerDivisionTruncates) {
  auto e = Bound(Expr::Binary(BinaryOp::kDiv, Col("i"), Lit(int64_t{3})));
  EXPECT_EQ(EvalExpr(*e, TestTuple()).value(), Value::Int(3));
}

TEST(ExprEvalTest, DivisionByZeroFails) {
  auto e = Bound(Expr::Binary(BinaryOp::kDiv, Col("i"), Lit(int64_t{0})));
  EXPECT_EQ(EvalExpr(*e, TestTuple()).status().code(),
            StatusCode::kInvalidArgument);
  auto m = Bound(Expr::Binary(BinaryOp::kMod, Col("i"), Lit(int64_t{0})));
  EXPECT_FALSE(EvalExpr(*m, TestTuple()).ok());
}

TEST(ExprEvalTest, Comparisons) {
  EXPECT_EQ(EvalExpr(*Bound(Expr::Binary(BinaryOp::kGt, Col("i"), Lit(int64_t{9}))),
                     TestTuple())
                .value(),
            Value::Bool(true));
  // Mixed INT/DOUBLE comparison.
  EXPECT_EQ(EvalExpr(*Bound(Expr::Binary(BinaryOp::kLt, Col("d"), Col("i"))),
                     TestTuple())
                .value(),
            Value::Bool(true));
  EXPECT_EQ(EvalExpr(*Bound(Expr::Binary(BinaryOp::kEq, Col("s"), Lit("abc"))),
                     TestTuple())
                .value(),
            Value::Bool(true));
}

TEST(ExprEvalTest, NullPropagation) {
  // n is NULL: arithmetic and comparisons yield NULL.
  EXPECT_TRUE(EvalExpr(*Bound(Expr::Binary(BinaryOp::kAdd, Col("n"), Col("i"))),
                       TestTuple())
                  ->is_null());
  EXPECT_TRUE(EvalExpr(*Bound(Expr::Binary(BinaryOp::kEq, Col("n"), Col("i"))),
                       TestTuple())
                  ->is_null());
  EXPECT_TRUE(EvalExpr(*Bound(Expr::Unary(UnaryOp::kNeg, Col("n"))),
                       TestTuple())
                  ->is_null());
  // IS NULL is never NULL.
  EXPECT_EQ(EvalExpr(*Bound(Expr::Unary(UnaryOp::kIsNull, Col("n"))),
                     TestTuple())
                .value(),
            Value::Bool(true));
  EXPECT_EQ(EvalExpr(*Bound(Expr::Unary(UnaryOp::kIsNull, Col("i"))),
                     TestTuple())
                .value(),
            Value::Bool(false));
}

TEST(ExprEvalTest, KleeneLogic) {
  auto null_pred = [] {
    return Expr::Binary(BinaryOp::kEq, Col("n"), Lit(int64_t{1}));
  };
  auto true_pred = [] {
    return Expr::Binary(BinaryOp::kEq, Col("i"), Lit(int64_t{10}));
  };
  auto false_pred = [] {
    return Expr::Binary(BinaryOp::kEq, Col("i"), Lit(int64_t{11}));
  };
  // FALSE AND NULL = FALSE.
  EXPECT_EQ(EvalExpr(*Bound(Expr::Binary(BinaryOp::kAnd, false_pred(),
                                         null_pred())),
                     TestTuple())
                .value(),
            Value::Bool(false));
  // TRUE AND NULL = NULL.
  EXPECT_TRUE(EvalExpr(*Bound(Expr::Binary(BinaryOp::kAnd, true_pred(),
                                           null_pred())),
                       TestTuple())
                  ->is_null());
  // TRUE OR NULL = TRUE.
  EXPECT_EQ(EvalExpr(*Bound(Expr::Binary(BinaryOp::kOr, true_pred(),
                                         null_pred())),
                     TestTuple())
                .value(),
            Value::Bool(true));
  // FALSE OR NULL = NULL.
  EXPECT_TRUE(EvalExpr(*Bound(Expr::Binary(BinaryOp::kOr, false_pred(),
                                           null_pred())),
                       TestTuple())
                  ->is_null());
  // NULL maps to false under predicate semantics.
  EXPECT_FALSE(EvalPredicate(*Bound(null_pred()), TestTuple()).value());
}

TEST(ExprEvalTest, StringConcat) {
  auto e = Bound(Expr::Binary(BinaryOp::kAdd, Col("s"), Lit("def")));
  EXPECT_EQ(EvalExpr(*e, TestTuple()).value(), Value::String("abcdef"));
}

// -------------------------------------------------------------- Compiler

TEST(ExprCompilerTest, CompilesAndEvaluates) {
  auto e = Bound(Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kGt, Col("i"), Lit(int64_t{5})),
      Expr::Binary(BinaryOp::kLt, Col("d"), Lit(3.0))));
  auto compiled = CompileExpr(*e);
  ASSERT_TRUE(compiled.ok());
  EXPECT_GT(compiled->num_instructions(), 4u);
  EXPECT_EQ(compiled->Eval(TestTuple()).value(), Value::Bool(true));
  EXPECT_TRUE(compiled->EvalPredicate(TestTuple()).value());
}

TEST(ExprCompilerTest, TypeSpecializedArithmetic) {
  auto e = Bound(Expr::Binary(BinaryOp::kAdd, Col("i"), Col("d")));
  auto compiled = CompileExpr(*e);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->result_type(), DataType::kDouble);
  EXPECT_EQ(compiled->Eval(TestTuple()).value(), Value::Double(12.5));
  // Disassembly mentions the int->double widening.
  EXPECT_NE(compiled->ToString().find("i2d"), std::string::npos);
}

TEST(ExprCompilerTest, ConcatUsesScratch) {
  auto e = Bound(Expr::Binary(
      BinaryOp::kAdd, Expr::Binary(BinaryOp::kAdd, Col("s"), Lit("-")),
      Col("s")));
  auto compiled = CompileExpr(*e);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->Eval(TestTuple()).value(), Value::String("abc-abc"));
  // Reusable across calls.
  EXPECT_EQ(compiled->Eval(TestTuple()).value(), Value::String("abc-abc"));
}

TEST(ExprCompilerTest, RuntimeErrorsSurface) {
  auto e = Bound(Expr::Binary(BinaryOp::kDiv, Col("i"), Col("n")));
  auto compiled = CompileExpr(*e);
  ASSERT_TRUE(compiled.ok());
  // NULL divisor -> NULL, not error.
  EXPECT_TRUE(compiled->Eval(TestTuple())->is_null());

  auto z = Bound(Expr::Binary(BinaryOp::kDiv, Col("i"), Lit(int64_t{0})));
  auto zc = CompileExpr(*z);
  ASSERT_TRUE(zc.ok());
  EXPECT_EQ(zc->Eval(TestTuple()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExprCompilerTest, StaticNullFoldsToNull) {
  auto e = Bound(Expr::Binary(BinaryOp::kAdd, Col("i"),
                              Expr::Literal(Value::Null())));
  auto compiled = CompileExpr(*e);
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled->Eval(TestTuple())->is_null());
}

// ------------------------------------------ Interpreter/compiler agreement

/// Generates random well-typed expressions and checks that the compiled
/// program agrees with the tree-walking interpreter on random tuples —
/// the central correctness property of the generative approach (E4).
class ExprAgreementTest : public ::testing::TestWithParam<uint64_t> {};

std::unique_ptr<Expr> RandomNumeric(Rng& rng, int depth);
std::unique_ptr<Expr> RandomBool(Rng& rng, int depth);

std::unique_ptr<Expr> RandomNumeric(Rng& rng, int depth) {
  if (depth <= 0 || rng.NextBool(0.3)) {
    switch (rng.Uniform(4)) {
      case 0:
        return Col("i");
      case 1:
        return Col("d");
      case 2:
        return Col("n");
      default:
        return rng.NextBool(0.5)
                   ? Lit(rng.UniformInt(-20, 20))
                   : Lit(static_cast<double>(rng.UniformInt(-200, 200)) / 10.0);
    }
  }
  const BinaryOp ops[] = {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul};
  return Expr::Binary(ops[rng.Uniform(3)], RandomNumeric(rng, depth - 1),
                      RandomNumeric(rng, depth - 1));
}

std::unique_ptr<Expr> RandomBool(Rng& rng, int depth) {
  if (depth <= 0 || rng.NextBool(0.25)) {
    const BinaryOp cmps[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                             BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
    return Expr::Binary(cmps[rng.Uniform(6)], RandomNumeric(rng, depth),
                        RandomNumeric(rng, depth));
  }
  switch (rng.Uniform(4)) {
    case 0:
      return Expr::Binary(BinaryOp::kAnd, RandomBool(rng, depth - 1),
                          RandomBool(rng, depth - 1));
    case 1:
      return Expr::Binary(BinaryOp::kOr, RandomBool(rng, depth - 1),
                          RandomBool(rng, depth - 1));
    case 2:
      return Expr::Unary(UnaryOp::kNot, RandomBool(rng, depth - 1));
    default:
      return Expr::Unary(UnaryOp::kIsNull, RandomNumeric(rng, depth - 1));
  }
}

Tuple RandomTuple(Rng& rng) {
  return Tuple({rng.NextBool(0.15) ? Value::Null()
                                   : Value::Int(rng.UniformInt(-10, 10)),
                rng.NextBool(0.15)
                    ? Value::Null()
                    : Value::Double(static_cast<double>(rng.UniformInt(-50, 50)) / 4.0),
                Value::String(rng.NextBool(0.5) ? "x" : "yy"),
                Value::Bool(rng.NextBool(0.5)),
                rng.NextBool(0.5) ? Value::Null()
                                  : Value::Int(rng.UniformInt(0, 5))});
}

TEST_P(ExprAgreementTest, CompiledMatchesInterpreted) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    auto expr = RandomBool(rng, 4);
    ASSERT_TRUE(expr->Bind(TestSchema()).ok()) << expr->ToString();
    auto compiled = CompileExpr(*expr);
    ASSERT_TRUE(compiled.ok()) << expr->ToString();
    for (int i = 0; i < 25; ++i) {
      const Tuple t = RandomTuple(rng);
      auto iv = EvalExpr(*expr, t);
      auto cv = compiled->Eval(t);
      ASSERT_EQ(iv.ok(), cv.ok()) << expr->ToString() << " on " << t.ToString();
      if (!iv.ok()) continue;
      EXPECT_EQ(iv->is_null(), cv->is_null())
          << expr->ToString() << " on " << t.ToString();
      if (!iv->is_null()) {
        EXPECT_EQ(*iv, *cv) << expr->ToString() << " on " << t.ToString();
      }
      // Predicate semantics agree too.
      auto ip = EvalPredicate(*expr, t);
      auto cp = compiled->EvalPredicate(t);
      ASSERT_EQ(ip.ok(), cp.ok());
      if (ip.ok()) {
        EXPECT_EQ(*ip, *cp);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----------------------------------------------------------- Expr helpers

TEST(ExprUtilTest, SplitAndCombineConjuncts) {
  auto e = Bound(And(
      Expr::Binary(BinaryOp::kGt, Col("i"), Lit(int64_t{1})),
      And(Expr::Binary(BinaryOp::kLt, Col("i"), Lit(int64_t{9})),
          Expr::Binary(BinaryOp::kEq, Col("s"), Lit("x")))));
  auto conjuncts = algebra::SplitConjuncts(*e);
  EXPECT_EQ(conjuncts.size(), 3u);
  auto recombined = algebra::CombineConjuncts(std::move(conjuncts));
  ASSERT_NE(recombined, nullptr);
  // Same evaluation on a sample tuple.
  ASSERT_TRUE(recombined->Bind(TestSchema()).ok());
  EXPECT_EQ(EvalPredicate(*e, TestTuple()).value(),
            EvalPredicate(*recombined, TestTuple()).value());
  EXPECT_EQ(algebra::CombineConjuncts({}), nullptr);
}

TEST(ExprUtilTest, CloneAndEquals) {
  auto e = Bound(Expr::Binary(BinaryOp::kGe, Col("d"), Lit(1.5)));
  auto c = e->Clone();
  EXPECT_TRUE(e->Equals(*c));
  auto other = Bound(Expr::Binary(BinaryOp::kGe, Col("d"), Lit(2.5)));
  EXPECT_FALSE(e->Equals(*other));
}

TEST(ExprUtilTest, CollectColumnsAndConstness) {
  auto e = Bound(Expr::Binary(BinaryOp::kAdd, Col("i"),
                              Expr::Binary(BinaryOp::kMul, Col("d"), Col("i"))));
  std::vector<size_t> cols;
  e->CollectColumnIndexes(&cols);
  EXPECT_EQ(cols, (std::vector<size_t>{0, 1, 0}));
  EXPECT_FALSE(e->IsConstant());
  EXPECT_TRUE(Lit(int64_t{3})->IsConstant());
}

}  // namespace
}  // namespace prisma::exec
