// Serving-layer units (DESIGN.md §15): statement normalization, the
// shared plan cache, the admission dispatcher's hysteresis / FIFO /
// concurrency-cap / typed-shedding contracts, and the workload
// generator's determinism.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/prisma_db.h"
#include "gdh/plan_cache.h"
#include "obs/metrics.h"
#include "serve/dispatcher.h"
#include "serve/workload.h"
#include "sql/normalize.h"

namespace prisma {
namespace {

using core::MachineConfig;
using core::PrismaDb;
using gdh::PlanCache;
using serve::AdmitState;
using serve::ArrivalEvent;
using serve::Dispatcher;
using serve::DispatcherOptions;
using serve::WorkloadGenerator;
using serve::WorkloadProfile;

// ----------------------------------------------------------- Normalization

TEST(NormalizeTest, FormattingAndCaseFoldIntoOneFingerprint) {
  auto a = sql::NormalizeStatement(
      "select  name FROM emp WHERE dept = 'sales'");
  auto b = sql::NormalizeStatement("SELECT name FROM emp WHERE dept='eng'");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->fingerprint, "SELECT NAME FROM EMP WHERE DEPT = ?");
  EXPECT_EQ(a->fingerprint, b->fingerprint);
  ASSERT_EQ(a->params.size(), 1u);
  ASSERT_EQ(b->params.size(), 1u);
  EXPECT_NE(a->params[0], b->params[0]);
}

TEST(NormalizeTest, LiteralsExtractInOrderWithTypeTags) {
  auto n = sql::NormalizeStatement(
      "SELECT v FROM t WHERE id = 42 AND name = '42' AND w > 1.5");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->fingerprint,
            "SELECT V FROM T WHERE ID = ? AND NAME = ? AND W > ?");
  ASSERT_EQ(n->params.size(), 3u);
  EXPECT_EQ(n->params[0], "42");
  // The string literal is quote-prefixed so '42' never collides with 42.
  EXPECT_EQ(n->params[1], "'42");
  EXPECT_NE(n->params[0], n->params[1]);
}

TEST(NormalizeTest, ExplainFingerprintsDoNotStartWithSelect) {
  auto n = sql::NormalizeStatement("EXPLAIN SELECT v FROM t");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->fingerprint.rfind("SELECT", 0), std::string::npos);
}

// -------------------------------------------------------------- Plan cache

PlanCache::Key MakeKey(const std::string& fingerprint,
                       std::vector<std::string> params = {}) {
  PlanCache::Key key;
  key.fingerprint = fingerprint;
  key.params = std::move(params);
  return key;
}

std::shared_ptr<const PlanCache::Entry> MakeEntry() {
  // Insert drops entries without a split plan (nothing worth caching), so
  // the fixture carries an empty-but-present one.
  auto entry = std::make_shared<PlanCache::Entry>();
  entry->split = std::make_shared<const gdh::DistributedPlan>();
  return entry;
}

TEST(PlanCacheTest, HitMissAndCounters) {
  obs::MetricsRegistry metrics;
  PlanCache cache(/*capacity=*/4);
  cache.AttachMetrics(&metrics);
  const PlanCache::Key key = MakeKey("SELECT V FROM T WHERE ID = ?", {"1"});
  EXPECT_EQ(cache.Lookup(key), nullptr);
  cache.Insert(key, MakeEntry());
  EXPECT_NE(cache.Lookup(key), nullptr);
  // Same shape, different literal: distinct plan, distinct entry.
  EXPECT_EQ(cache.Lookup(MakeKey("SELECT V FROM T WHERE ID = ?", {"2"})),
            nullptr);
  // Same shape + literal, different exec mode: distinct entry.
  PlanCache::Key vectorized = key;
  vectorized.exec_mode = exec::ExecMode::kVectorized;
  EXPECT_EQ(cache.Lookup(vectorized), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(metrics.CounterValue("query.plan_cache.hit"), 1u);
  EXPECT_EQ(metrics.CounterValue("query.plan_cache.miss"), 3u);
}

TEST(PlanCacheTest, FifoEvictionAtCapacity) {
  PlanCache cache(/*capacity=*/2);
  cache.Insert(MakeKey("A"), MakeEntry());
  cache.Insert(MakeKey("B"), MakeEntry());
  cache.Insert(MakeKey("C"), MakeEntry());  // Evicts A (oldest).
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(MakeKey("A")), nullptr);
  EXPECT_NE(cache.Lookup(MakeKey("B")), nullptr);
  EXPECT_NE(cache.Lookup(MakeKey("C")), nullptr);
}

TEST(PlanCacheTest, InvalidateClearsAndBumpsEpoch) {
  obs::MetricsRegistry metrics;
  PlanCache cache(/*capacity=*/4);
  cache.AttachMetrics(&metrics);
  cache.Insert(MakeKey("A"), MakeEntry());
  cache.Insert(MakeKey("B"), MakeEntry());
  EXPECT_EQ(cache.epoch(), 0u);
  cache.Invalidate("ddl");
  EXPECT_EQ(cache.epoch(), 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(MakeKey("A")), nullptr);
  EXPECT_EQ(metrics.CounterValue("query.plan_cache.invalidate",
                                 {{"reason", "ddl"}}),
            2u);
}

TEST(PlanCacheTest, CapacityZeroDisables) {
  PlanCache cache(/*capacity=*/0);
  cache.Insert(MakeKey("A"), MakeEntry());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(MakeKey("A")), nullptr);
}

// ------------------------------------------------------ Admission hysteresis

TEST(DispatcherTest, HysteresisHoldsInsideTheDeadBand) {
  DispatcherOptions options;
  options.backlog_high = 100;
  options.backlog_low = 20;
  // Rising through the dead band: still open.
  EXPECT_EQ(Dispatcher::NextState(AdmitState::kOpen, 0, options),
            AdmitState::kOpen);
  EXPECT_EQ(Dispatcher::NextState(AdmitState::kOpen, 99, options),
            AdmitState::kOpen);
  // At/above high: sheds.
  EXPECT_EQ(Dispatcher::NextState(AdmitState::kOpen, 100, options),
            AdmitState::kShedding);
  // Falling back into the dead band: STAYS shedding — no flap.
  EXPECT_EQ(Dispatcher::NextState(AdmitState::kShedding, 99, options),
            AdmitState::kShedding);
  EXPECT_EQ(Dispatcher::NextState(AdmitState::kShedding, 21, options),
            AdmitState::kShedding);
  // Only at/below low does admission reopen.
  EXPECT_EQ(Dispatcher::NextState(AdmitState::kShedding, 20, options),
            AdmitState::kOpen);
  // And the reopened state tolerates the dead band again.
  EXPECT_EQ(Dispatcher::NextState(AdmitState::kOpen, 21, options),
            AdmitState::kOpen);
}

// --------------------------------------------------- Dispatcher end-to-end

std::unique_ptr<PrismaDb> MakeServingDb(MachineConfig config = {}) {
  config.pes = 4;
  auto db = std::make_unique<PrismaDb>(config);
  EXPECT_TRUE(WorkloadGenerator::SetupSchema(db.get(), /*rows=*/64,
                                             /*fragments=*/2)
                  .ok());
  return db;
}

TEST(DispatcherTest, EveryStatementResolves) {
  auto db = MakeServingDb();
  Dispatcher dispatcher(db.get(), DispatcherOptions());
  int replies = 0;
  for (int i = 0; i < 20; ++i) {
    dispatcher.Submit(
        StrFormat("SELECT v FROM item WHERE id = %d", i % 64),
        exec::kAutoCommit,
        [&](const gdh::ClientReply& reply, sim::SimTime) {
          EXPECT_TRUE(reply.status.ok()) << reply.status.ToString();
          ++replies;
        },
        /*delay=*/i * 100'000);
  }
  dispatcher.Run();
  EXPECT_EQ(replies, 20);
  EXPECT_EQ(dispatcher.stats().completed, 20u);
  EXPECT_EQ(dispatcher.stats().shed, 0u);
  EXPECT_EQ(dispatcher.latency().count(), 20u);
  EXPECT_EQ(db->metrics().CounterValue("serve.admitted"), 20u);
  EXPECT_EQ(db->metrics().CounterValue("serve.completed"), 20u);
}

TEST(DispatcherTest, FullQueueShedsWithTypedOverloaded) {
  auto db = MakeServingDb();
  // Schema setup already ran statements; shed traffic must add none.
  const uint64_t statements_before =
      db->metrics().CounterValue("gdh.statements");
  DispatcherOptions options;
  options.queue_capacity = 0;  // Every auto-commit arrival finds it full.
  Dispatcher dispatcher(db.get(), options);
  int shed = 0;
  dispatcher.Submit("SELECT v FROM item WHERE id = 1", exec::kAutoCommit,
                    [&](const gdh::ClientReply& reply, sim::SimTime) {
                      EXPECT_EQ(reply.status.code(), StatusCode::kOverloaded);
                      ++shed;
                    });
  dispatcher.Run();
  EXPECT_EQ(shed, 1);
  EXPECT_EQ(dispatcher.stats().shed, 1u);
  EXPECT_EQ(dispatcher.stats().completed, 0u);
  EXPECT_EQ(db->metrics().CounterValue("serve.shed"), 1u);
  // Shed statements never reach the database.
  EXPECT_EQ(db->metrics().CounterValue("gdh.statements"), statements_before);
}

TEST(DispatcherTest, ConcurrencyCapIsHonoredAndQueueIsFifo) {
  MachineConfig config;
  config.coordinator_pes = {0};  // One coordinator PE...
  auto db = MakeServingDb(config);
  DispatcherOptions options;
  options.per_pe_concurrency = 1;  // ...times one = a cap of exactly 1.
  Dispatcher dispatcher(db.get(), options);
  std::vector<int> completion_order;
  for (int i = 0; i < 6; ++i) {
    dispatcher.Submit("SELECT grp, COUNT(*) AS n FROM item GROUP BY grp",
                      exec::kAutoCommit,
                      [&, i](const gdh::ClientReply& reply, sim::SimTime) {
                        EXPECT_TRUE(reply.status.ok());
                        completion_order.push_back(i);
                      });
  }
  dispatcher.Run();
  EXPECT_EQ(dispatcher.stats().peak_in_flight, 1u);
  // The first arrival dispatched straight through; the other five queued.
  EXPECT_EQ(dispatcher.stats().peak_queue, 5u);
  // FIFO: simultaneous arrivals complete in submission order.
  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(DispatcherTest, InTransactionStatementsBypassShedding) {
  auto db = MakeServingDb();
  auto begun = db->Execute("BEGIN");
  ASSERT_TRUE(begun.ok());
  const exec::TxnId txn = begun->txn;
  ASSERT_NE(txn, exec::kAutoCommit);

  DispatcherOptions options;
  options.queue_capacity = 0;  // Sheds every new statement...
  Dispatcher dispatcher(db.get(), options);
  int replies = 0;
  dispatcher.Submit("UPDATE item SET v = v + 1 WHERE id = 3", txn,
                    [&](const gdh::ClientReply& reply, sim::SimTime) {
                      EXPECT_TRUE(reply.status.ok())
                          << reply.status.ToString();
                      ++replies;
                    });
  dispatcher.Run();
  dispatcher.Submit("COMMIT", txn,
                    [&](const gdh::ClientReply& reply, sim::SimTime) {
                      EXPECT_TRUE(reply.status.ok());
                      ++replies;
                    });
  dispatcher.Run();
  // ...but the in-transaction statements went through: locks were held,
  // refusing them could only delay 2PC settlement.
  EXPECT_EQ(replies, 2);
  EXPECT_EQ(dispatcher.stats().shed, 0u);
  EXPECT_EQ(dispatcher.stats().completed, 2u);
  auto check = db->Execute("SELECT v FROM item WHERE id = 3");
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->tuples.size(), 1u);
  EXPECT_EQ(check->tuples[0].at(0).int_value(), 3 % 100 + 1);
}

// ------------------------------------------------------- Workload generator

TEST(WorkloadTest, SameSeedSameSchedule) {
  WorkloadProfile profile;
  profile.sessions = 16;
  profile.offered_qps = 2000;
  profile.duration_ns = sim::kNanosPerSecond / 10;
  const WorkloadGenerator a(7, profile);
  const WorkloadGenerator b(7, profile);
  const std::vector<ArrivalEvent> sa = a.Generate();
  const std::vector<ArrivalEvent> sb = b.Generate();
  ASSERT_FALSE(sa.empty());
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].at_ns, sb[i].at_ns);
    EXPECT_EQ(sa[i].session, sb[i].session);
    EXPECT_EQ(sa[i].sql, sb[i].sql);
  }
  const std::vector<ArrivalEvent> sc = WorkloadGenerator(8, profile).Generate();
  bool differs = sc.size() != sa.size();
  for (size_t i = 0; !differs && i < sa.size(); ++i) {
    differs = sa[i].at_ns != sc[i].at_ns || sa[i].sql != sc[i].sql;
  }
  EXPECT_TRUE(differs) << "different seeds produced the same schedule";
}

TEST(WorkloadTest, SchedulesAreSortedAndBounded) {
  for (const auto arrival :
       {serve::ArrivalProcess::kPoisson, serve::ArrivalProcess::kBursty}) {
    WorkloadProfile profile;
    profile.sessions = 8;
    profile.arrival = arrival;
    profile.offered_qps = 4000;
    profile.duration_ns = sim::kNanosPerSecond / 10;
    const std::vector<ArrivalEvent> schedule =
        WorkloadGenerator(3, profile).Generate();
    ASSERT_FALSE(schedule.empty());
    for (size_t i = 0; i < schedule.size(); ++i) {
      EXPECT_GE(schedule[i].at_ns, 0);
      EXPECT_LT(schedule[i].at_ns, profile.duration_ns);
      if (i > 0) EXPECT_GE(schedule[i].at_ns, schedule[i - 1].at_ns);
      EXPECT_FALSE(schedule[i].sql.empty());
    }
  }
}

TEST(WorkloadTest, MixWeightsSelectStatementShapes) {
  WorkloadProfile profile;
  profile.sessions = 4;
  profile.offered_qps = 4000;
  profile.duration_ns = sim::kNanosPerSecond / 10;
  profile.mix = {0, 0, 1.0, 0};  // Group-by only.
  for (const ArrivalEvent& event : WorkloadGenerator(5, profile).Generate()) {
    EXPECT_EQ(event.kind, serve::QueryKind::kGroupBy);
    EXPECT_NE(event.sql.find("GROUP BY"), std::string::npos);
  }
}

}  // namespace
}  // namespace prisma
