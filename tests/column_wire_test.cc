// Round-trip fuzz harness for the column-encoded tuple-batch wire format
// (DESIGN.md §12.2). For seeded random batches over every Value type and
// NULL pattern — including ragged batches whose row count is not a
// multiple of the bitmap word — the format must satisfy:
//
//   1. decode(encode(batch)) reproduces the original tuples exactly;
//   2. encode(decode(encode(batch))) is byte-stable (canonical encoding);
//   3. every truncation of a valid frame fails with a typed Status, and
//      corrupted tag bytes fail with a typed Status — never a crash.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/column_batch.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/str_util.h"
#include "common/tuple.h"
#include "common/value.h"

namespace prisma {
namespace {

/// Which NULL pattern a generated column uses.
enum class NullPattern { kNone, kAll, kAlternating, kRandom };

Value RandomTypedValue(Rng& rng, DataType type) {
  switch (type) {
    case DataType::kBool:
      return Value::Bool(rng.Uniform(2) == 1);
    case DataType::kInt64: {
      // Mix magnitudes so frame-of-reference picks every delta width
      // (0, 1, 2, 4 and 8 bytes) across seeds.
      switch (rng.Uniform(5)) {
        case 0: return Value::Int(static_cast<int64_t>(rng.Uniform(2)));
        case 1: return Value::Int(rng.UniformInt(-120, 120));
        case 2: return Value::Int(rng.UniformInt(-30000, 30000));
        case 3: return Value::Int(rng.UniformInt(-2000000000, 2000000000));
        default:
          return Value::Int(static_cast<int64_t>(rng.Next()));
      }
    }
    case DataType::kDouble:
      return Value::Double(static_cast<double>(rng.UniformInt(-1000, 1000)) /
                           8.0);
    case DataType::kString: {
      std::string s;
      const size_t len = rng.Uniform(12);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng.Uniform(26)));
      }
      return Value::String(std::move(s));
    }
    case DataType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

bool IsNullAt(NullPattern pattern, Rng& rng, size_t row) {
  switch (pattern) {
    case NullPattern::kNone: return false;
    case NullPattern::kAll: return true;
    case NullPattern::kAlternating: return row % 2 == 0;
    case NullPattern::kRandom: return rng.Uniform(4) == 0;
  }
  return false;
}

/// A seeded batch: 1-5 columns, each with its own type (or mixed-type,
/// which must fall back to the boxed encoding) and NULL pattern; row
/// counts deliberately straddle multiples of 8 so the null bitmap's final
/// partial byte is exercised.
std::vector<Tuple> RandomBatchTuples(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 3);
  const size_t rows = rng.Uniform(40);  // Includes 0, 7, 8, 9, ...
  const size_t cols = 1 + rng.Uniform(5);
  struct ColSpec {
    bool mixed;
    DataType type;
    NullPattern pattern;
  };
  std::vector<ColSpec> specs;
  static constexpr DataType kTypes[] = {DataType::kBool, DataType::kInt64,
                                        DataType::kDouble, DataType::kString};
  static constexpr NullPattern kPatterns[] = {
      NullPattern::kNone, NullPattern::kAll, NullPattern::kAlternating,
      NullPattern::kRandom};
  for (size_t c = 0; c < cols; ++c) {
    ColSpec spec;
    spec.mixed = rng.Uniform(5) == 0;
    spec.type = kTypes[rng.Uniform(4)];
    spec.pattern = kPatterns[rng.Uniform(4)];
    specs.push_back(spec);
  }
  std::vector<Tuple> tuples;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> values;
    for (const ColSpec& spec : specs) {
      if (IsNullAt(spec.pattern, rng, r)) {
        values.push_back(Value::Null());
      } else {
        const DataType type =
            spec.mixed ? kTypes[rng.Uniform(4)] : spec.type;
        values.push_back(RandomTypedValue(rng, type));
      }
    }
    tuples.emplace_back(std::move(values));
  }
  return tuples;
}

std::string Render(const std::vector<Tuple>& tuples) {
  std::string out;
  for (const Tuple& t : tuples) {
    out += t.ToString();
    out += '\n';
  }
  return out;
}

TEST(ColumnWireTest, RoundTripAndByteStabilityAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    SCOPED_TRACE(StrFormat("seed=%llu",
                           static_cast<unsigned long long>(seed)));
    const std::vector<Tuple> tuples = RandomBatchTuples(seed);
    const ColumnBatch batch = ColumnBatch::FromTuples(tuples);
    ASSERT_EQ(batch.num_rows(), tuples.size());

    const std::string frame = SerializeColumnBatch(batch);
    auto decoded = DeserializeColumnBatch(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded->num_rows(), tuples.size());

    // 1. Exact tuple-level round trip (types and NULLs included).
    EXPECT_EQ(Render(decoded->ToTuples()), Render(tuples));

    // 2. Canonical: re-encoding the decoded batch is byte-identical.
    EXPECT_EQ(SerializeColumnBatch(*decoded), frame);
  }
}

TEST(ColumnWireTest, EveryTruncationFailsWithTypedStatus) {
  // A small but fully featured batch: every type, NULLs, a ragged tail.
  const std::vector<Tuple> tuples = RandomBatchTuples(7);
  ASSERT_FALSE(tuples.empty());
  const std::string frame =
      SerializeColumnBatch(ColumnBatch::FromTuples(tuples));
  for (size_t len = 0; len < frame.size(); ++len) {
    SCOPED_TRACE(StrFormat("prefix_len=%zu of %zu", len, frame.size()));
    auto result = DeserializeColumnBatch(frame.substr(0, len));
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().code() == StatusCode::kOutOfRange ||
                result.status().code() == StatusCode::kInvalidArgument)
        << result.status().ToString();
  }
}

TEST(ColumnWireTest, CorruptedBytesNeverCrash) {
  // Flipping any single byte must yield either a typed error or a clean
  // decode of different content — never a crash or hang. (Payload bytes
  // legitimately decode to altered values; header/tag bytes must fail.)
  const std::vector<Tuple> tuples = RandomBatchTuples(11);
  const std::string frame =
      SerializeColumnBatch(ColumnBatch::FromTuples(tuples));
  for (size_t pos = 0; pos < frame.size(); ++pos) {
    for (const uint8_t delta : {uint8_t{1}, uint8_t{0x80}, uint8_t{0xff}}) {
      std::string corrupt = frame;
      corrupt[pos] = static_cast<char>(
          static_cast<uint8_t>(corrupt[pos]) ^ delta);
      auto result = DeserializeColumnBatch(corrupt);
      if (result.ok()) {
        // Whatever decoded must still be internally consistent.
        EXPECT_EQ(result->ToTuples().size(), result->num_rows());
      } else {
        EXPECT_TRUE(result.status().code() == StatusCode::kOutOfRange ||
                    result.status().code() == StatusCode::kInvalidArgument)
            << result.status().ToString();
      }
    }
  }
}

TEST(ColumnWireTest, CorruptColumnEncodingTagFails) {
  // Frame layout starts: u32 rows, u32 cols, then column 0's u8 enc tag
  // (0 = typed, 1 = boxed). Any other tag value is a typed error.
  std::vector<Tuple> tuples;
  tuples.emplace_back(std::vector<Value>{Value::Int(42)});
  std::string frame = SerializeColumnBatch(ColumnBatch::FromTuples(tuples));
  ASSERT_GT(frame.size(), 8u);
  frame[8] = 7;  // Invalid enc tag.
  auto result = DeserializeColumnBatch(frame);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ColumnWireTest, EmptyAndRaggedBatches) {
  // Zero rows.
  const ColumnBatch empty = ColumnBatch::FromTuples(std::vector<Tuple>{});
  const std::string empty_frame = SerializeColumnBatch(empty);
  auto empty_decoded = DeserializeColumnBatch(empty_frame);
  ASSERT_TRUE(empty_decoded.ok());
  EXPECT_EQ(empty_decoded->num_rows(), 0u);
  EXPECT_EQ(SerializeColumnBatch(*empty_decoded), empty_frame);

  // Chunking leaves a ragged final batch; each chunk round-trips.
  std::vector<Tuple> tuples;
  for (int i = 0; i < 21; ++i) {
    tuples.emplace_back(std::vector<Value>{
        Value::Int(i), i % 3 == 0 ? Value::Null() : Value::String("x")});
  }
  const std::vector<ColumnBatch> chunks = ColumnBatch::Chunk(tuples, 8);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks.back().num_rows(), 5u);
  std::vector<Tuple> reassembled;
  for (const ColumnBatch& chunk : chunks) {
    auto decoded = DeserializeColumnBatch(SerializeColumnBatch(chunk));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    for (Tuple& t : decoded->ToTuples()) reassembled.push_back(std::move(t));
  }
  EXPECT_EQ(Render(reassembled), Render(tuples));
}

}  // namespace
}  // namespace prisma
