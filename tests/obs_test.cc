#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/prisma_db.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "obs/trace.h"

namespace prisma {
namespace {

// ----------------------------------------------------------------- Metrics

TEST(MetricsTest, CounterGaugeBasics) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("test.counter");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  EXPECT_EQ(registry.CounterValue("test.counter"), 42u);
  EXPECT_EQ(registry.CounterValue("missing"), 0u);

  obs::Gauge* g = registry.GetGauge("test.gauge");
  g->Set(7);
  g->Add(-3);
  EXPECT_EQ(g->value(), 4);
  EXPECT_EQ(registry.GaugeValue("test.gauge"), 4);
}

TEST(MetricsTest, GetIsIdempotentWithStablePointers) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("c", {{"pe", "3"}});
  // Force map growth, then re-fetch: same instance.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler", {{"i", std::to_string(i)}});
  }
  EXPECT_EQ(registry.GetCounter("c", {{"pe", "3"}}), a);
}

TEST(MetricsTest, CanonicalKeySortsLabels) {
  const obs::Labels ab = {{"a", "1"}, {"b", "2"}};
  const obs::Labels ba = {{"b", "2"}, {"a", "1"}};
  EXPECT_EQ(obs::MetricsRegistry::Key("m", ab),
            obs::MetricsRegistry::Key("m", ba));
  EXPECT_EQ(obs::MetricsRegistry::Key("m", ab), "m{a=1,b=2}");
  EXPECT_EQ(obs::MetricsRegistry::Key("m", {}), "m");
}

TEST(MetricsTest, CounterTotalSumsAcrossLabelSets) {
  obs::MetricsRegistry registry;
  registry.GetCounter("ofm.scans", {{"fragment", "emp#0"}})->Increment(10);
  registry.GetCounter("ofm.scans", {{"fragment", "emp#1"}})->Increment(5);
  registry.GetCounter("ofm.scansuffix")->Increment(99);  // Different name.
  EXPECT_EQ(registry.CounterTotal("ofm.scans"), 15u);
}

TEST(MetricsTest, HistogramBucketsAndQuantiles) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.mean(), 50);
  // Quantiles are bucket upper bounds: deterministic, monotone.
  EXPECT_LE(h.ApproxQuantile(0.5), h.ApproxQuantile(0.99));
  EXPECT_GE(h.ApproxQuantile(0.99), 100);
}

TEST(MetricsTest, DumpTextIsSortedAndDeterministic) {
  auto fill = [](obs::MetricsRegistry* r) {
    r->GetCounter("z.last")->Increment(3);
    r->GetGauge("a.first")->Set(-5);
    r->GetHistogram("m.middle")->Record(1000);
    r->GetCounter("m.counter", {{"pe", "1"}})->Increment();
  };
  obs::MetricsRegistry r1, r2;
  fill(&r2);  // Insertion order differs from dump order.
  fill(&r1);
  const std::string text = r1.DumpText();
  EXPECT_EQ(text, r2.DumpText());
  EXPECT_EQ(r1.DumpJson(), r2.DumpJson());
  // Sorted by canonical key: gauge a.first before m.*, counter z.last last.
  EXPECT_LT(text.find("a.first"), text.find("m.counter"));
  EXPECT_LT(text.find("m.counter"), text.find("z.last"));
  EXPECT_NE(text.find("counter z.last 3"), std::string::npos);
  EXPECT_NE(text.find("gauge a.first -5"), std::string::npos);
}

// ------------------------------------------------------------------ Tracer

TEST(TracerTest, DisabledRecordsNothing) {
  obs::Tracer tracer;
  tracer.Span("cat", "work", 0, 100, 1, 2);
  tracer.Instant("cat", "tick", 50, 1, 2);
  EXPECT_EQ(tracer.num_events(), 0u);
  EXPECT_EQ(tracer.DumpJson(), "{\"traceEvents\":[]}");
}

TEST(TracerTest, SpanAndInstantSerializeAsTraceEvents) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  tracer.Span("pool", "handler", 1500, 3500, 2, 7, "kind", "exec_plan");
  tracer.Instant("net", "drop", 4000, 0, -1);
  ASSERT_EQ(tracer.num_events(), 2u);
  const std::string json = tracer.DumpJson();
  // Fixed-point microseconds from integer math: 1500ns -> 1.500us.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2,\"tid\":7"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"kind\":\"exec_plan\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":-1"), std::string::npos);
}

TEST(TracerTest, EscapesJsonStrings) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  tracer.Instant("c", "quote\"back\\slash\nnewline", 0, 0, 0);
  const std::string json = tracer.DumpJson();
  EXPECT_NE(json.find("quote\\\"back\\\\slash\\nnewline"),
            std::string::npos);
}

// ----------------------------------------------------------- Query profile

TEST(QueryProfileTest, FormatNsIsCompactIntegerMath) {
  EXPECT_EQ(obs::FormatNs(875), "875ns");
  EXPECT_EQ(obs::FormatNs(12345), "12.345us");
  EXPECT_EQ(obs::FormatNs(3210000), "3.210ms");
  EXPECT_EQ(obs::FormatNs(1500000000), "1.500s");
}

TEST(QueryProfileTest, MergeSumsNodeWiseAndCountsInvocations) {
  obs::OperatorProfile a;
  a.op = "Select";
  a.rows = 10;
  a.bytes = 100;
  a.total_ns = 1000;
  a.children.push_back({"Scan(emp#0)", 50, 500, 0, 900, 1, {}});

  obs::OperatorProfile b = a;
  b.rows = 4;
  b.children[0].rows = 20;

  obs::MergeProfile(&a, b);
  EXPECT_EQ(a.rows, 14u);
  EXPECT_EQ(a.invocations, 2u);
  EXPECT_EQ(a.children[0].rows, 70u);
  EXPECT_EQ(a.children[0].total_ns, 1800);
}

TEST(QueryProfileTest, RenderShowsRowsAndTimes) {
  obs::OperatorProfile root;
  root.op = "Join";
  root.rows = 12;
  root.bytes = 480;
  root.total_ns = 5000;
  root.children.push_back({"Scan(a)", 6, 120, 0, 2000, 1, {}});
  root.children.push_back({"Scan(b)", 6, 120, 0, 1000, 1, {}});
  std::vector<std::string> lines;
  obs::RenderProfile(root, 0, &lines);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("Join rows=12 bytes=480"), std::string::npos);
  // Self time = 5000 - 2000 - 1000.
  EXPECT_NE(lines[0].find("self=2.000us"), std::string::npos);
  EXPECT_NE(lines[1].find("  Scan(a)"), std::string::npos);
}

// ------------------------------------------- End-to-end through the machine

core::MachineConfig SmallMachine(bool tracing = false) {
  core::MachineConfig config;
  config.pes = 8;
  config.enable_tracing = tracing;
  return config;
}

void LoadEmp(core::PrismaDb* db, int rows = 24) {
  ASSERT_TRUE(db->Execute("CREATE TABLE emp (id INT, dept STRING, salary "
                          "INT) FRAGMENTED BY HASH(id) INTO 4 FRAGMENTS")
                  .ok());
  const char* depts[] = {"sales", "eng", "hr"};
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE(db->Execute(StrFormat("INSERT INTO emp VALUES (%d, '%s', %d)",
                                      i, depts[i % 3], 1000 + i))
                    .ok());
  }
}

TEST(ObservabilityEndToEnd, ExplainAnalyzeReturnsPerOperatorProfile) {
  core::PrismaDb db(SmallMachine());
  LoadEmp(&db);
  auto result =
      db.Execute("EXPLAIN ANALYZE SELECT dept, COUNT(*) FROM emp "
                 "WHERE salary >= 1005 GROUP BY dept");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->schema.num_columns(), 1u);
  EXPECT_EQ(result->schema.column(0).name, "plan");
  std::string all;
  for (const Tuple& t : result->tuples) {
    all += t.at(0).string_value();
    all += '\n';
  }
  // Measured figures, not estimates: row counts and simulated ns.
  EXPECT_NE(all.find("global plan"), std::string::npos);
  EXPECT_NE(all.find("rows="), std::string::npos);
  EXPECT_NE(all.find("total="), std::string::npos);
  EXPECT_NE(all.find("part 0"), std::string::npos);
  // The fragment profiles were merged over 4 fragments.
  EXPECT_NE(all.find("x4"), std::string::npos);

  // Plain EXPLAIN still returns the unexecuted plan (no measurements).
  auto plain = db.Execute("EXPLAIN SELECT * FROM emp");
  ASSERT_TRUE(plain.ok());
  std::string plain_text;
  for (const Tuple& t : plain->tuples) plain_text += t.at(0).string_value();
  EXPECT_EQ(plain_text.find("rows="), std::string::npos);
}

TEST(ObservabilityEndToEnd, MetricsCoverEveryLayer) {
  core::PrismaDb db(SmallMachine());
  LoadEmp(&db);
  ASSERT_TRUE(db.Execute("SELECT * FROM emp WHERE salary > 1010").ok());
  obs::MetricsRegistry& m = db.metrics();
  // net: messages crossed links and were delivered.
  EXPECT_GT(m.CounterValue("net.messages_sent"), 0u);
  EXPECT_GT(m.CounterValue("net.messages_delivered"), 0u);
  const obs::Histogram* latency = m.FindHistogram("net.latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->count(), 0u);
  // pool: handlers ran, PEs were charged.
  EXPECT_GT(m.CounterValue("pool.handlers_executed"), 0u);
  EXPECT_GT(m.CounterTotal("pe.cpu_ns"), 0u);
  EXPECT_GT(m.CounterValue("pool.mail_sent", {{"kind", "exec_plan"}}), 0u);
  // gdh: statements routed, coordinators spawned, 2PC ran for inserts.
  EXPECT_GT(m.CounterValue("gdh.statements"), 0u);
  EXPECT_GT(m.CounterValue("gdh.selects_spawned"), 0u);
  EXPECT_GT(m.CounterValue("gdh.txns_committed"), 0u);
  // ofm: fragments scanned tuples and wrote WAL records.
  EXPECT_GT(m.CounterTotal("ofm.tuples_scanned"), 0u);
  EXPECT_GT(m.CounterTotal("ofm.wal_records"), 0u);
  // Dump includes synced gauges and is non-trivial.
  const std::string text = db.DumpMetrics();
  EXPECT_NE(text.find("gauge sim.now_ns"), std::string::npos);
  EXPECT_NE(text.find("pe.busy_ns"), std::string::npos);
  EXPECT_NE(text.find("counter net.messages_sent"), std::string::npos);
}

TEST(ObservabilityEndToEnd, PerQueryScopedMetrics) {
  core::PrismaDb db(SmallMachine());
  LoadEmp(&db);
  uint64_t id = 0;
  bool replied = false;
  id = db.Submit("SELECT * FROM emp", /*prismalog=*/false, exec::kAutoCommit,
                 [&](const gdh::ClientReply&, sim::SimTime) {
                   replied = true;
                 });
  db.Run();
  ASSERT_TRUE(replied);
  const obs::Labels q = {{"query", std::to_string(id)}};
  EXPECT_EQ(db.metrics().CounterValue("query.tuples_gathered", q), 24u);
  EXPECT_GT(db.metrics().CounterValue("query.fragments_contacted", q), 0u);
  EXPECT_GT(db.metrics().GaugeValue("query.response_ns", q), 0);
}

std::vector<std::string> GoldenStatements() {
  return {
      "CREATE TABLE emp (id INT, dept STRING, salary INT) "
      "FRAGMENTED BY HASH(id) INTO 4 FRAGMENTS",
      "INSERT INTO emp VALUES (1, 'eng', 1000), (2, 'hr', 1200)",
      "INSERT INTO emp VALUES (3, 'eng', 1400)",
      "SELECT dept, SUM(salary) FROM emp GROUP BY dept",
      "SELECT * FROM emp WHERE id = 2",
  };
}

TEST(ObservabilityEndToEnd, TraceIsByteIdenticalAcrossSameSeedRuns) {
  auto run = [] {
    core::PrismaDb db(SmallMachine(/*tracing=*/true));
    for (const std::string& sql : GoldenStatements()) {
      auto r = db.Execute(sql);
      EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    }
    return std::make_pair(db.DumpTrace(), db.DumpMetrics());
  };
  const auto [trace1, metrics1] = run();
  const auto [trace2, metrics2] = run();
  EXPECT_GT(trace1.size(), 2000u);  // Real content, not an empty shell.
  EXPECT_EQ(trace1, trace2);
  EXPECT_EQ(metrics1, metrics2);
  // It is a trace_event document with the layers' categories present.
  EXPECT_EQ(trace1.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace1.find("\"cat\":\"net\""), std::string::npos);
  EXPECT_NE(trace1.find("\"cat\":\"pool\""), std::string::npos);
  EXPECT_NE(trace1.find("\"cat\":\"gdh\""), std::string::npos);
  EXPECT_NE(trace1.find("\"name\":\"2pc.prepare\""), std::string::npos);
}

TEST(ObservabilityEndToEnd, SameQueryTwiceYieldsIdenticalTraceSegments) {
  // The golden-query check: run one query, snapshot the trace, clear,
  // run the identical query again — the two segments must describe the
  // same work (same event count and structure; timestamps differ only by
  // the virtual start offset, so compare counts and names).
  core::PrismaDb db(SmallMachine(/*tracing=*/true));
  LoadEmp(&db, 12);
  db.tracer().Clear();
  ASSERT_TRUE(db.Execute("SELECT COUNT(*) FROM emp").ok());
  const size_t events_first = db.tracer().num_events();
  db.tracer().Clear();
  ASSERT_TRUE(db.Execute("SELECT COUNT(*) FROM emp").ok());
  EXPECT_EQ(db.tracer().num_events(), events_first);
  EXPECT_GT(events_first, 0u);
}

// -------------------------------------------------------- LatencyHistogram

TEST(LatencyHistogramTest, ExactQuantilesOnKnownDistribution) {
  obs::LatencyHistogram h;
  // 1..1000 in scrambled order: nearest-rank quantiles are exact values,
  // not bucket boundaries.
  for (int64_t v = 1000; v >= 1; --v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.sum(), 1000 * 1001 / 2);
  EXPECT_EQ(h.P50(), 500);
  EXPECT_EQ(h.P99(), 990);
  EXPECT_EQ(h.P999(), 999);
  EXPECT_EQ(h.Quantile(0.0), 1);
  EXPECT_EQ(h.Quantile(1.0), 1000);
}

TEST(LatencyHistogramTest, DuplicatesAndSmallCounts) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.P50(), 0);  // Empty histogram reads zero.
  h.Record(7);
  EXPECT_EQ(h.P50(), 7);
  EXPECT_EQ(h.P999(), 7);  // A single sample is every quantile.
  for (int i = 0; i < 9; ++i) h.Record(7);
  h.Record(100);
  // 10x value 7, 1x value 100: p50 is 7, only the extreme tail sees 100.
  EXPECT_EQ(h.P50(), 7);
  EXPECT_EQ(h.Quantile(10.0 / 11.0), 7);
  EXPECT_EQ(h.P999(), 100);
}

TEST(LatencyHistogramTest, MergeMatchesRecordingIntoOne) {
  obs::LatencyHistogram a;
  obs::LatencyHistogram b;
  obs::LatencyHistogram all;
  for (int64_t v = 1; v <= 60; ++v) {
    ((v % 3 == 0) ? a : b).Record(v * 10);
    all.Record(v * 10);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.Quantile(q), all.Quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(a.DumpLine(), all.DumpLine());
}

}  // namespace
}  // namespace prisma
