#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "exec/executor.h"
#include "prismalog/engine.h"
#include "prismalog/parser.h"
#include "storage/relation.h"

namespace prisma::prismalog {
namespace {

// ----------------------------------------------------------------- Parser

TEST(PlogParserTest, FactsRulesAndQuery) {
  auto program = ParsePrismalog(
      "edge(a, b).\n"
      "edge(b, c).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- edge(X, Y), path(Y, Z).\n"
      "? path(a, X).\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->rules.size(), 4u);
  EXPECT_TRUE(program->rules[0].IsFact());
  EXPECT_FALSE(program->rules[2].IsFact());
  ASSERT_TRUE(program->query.has_value());
  EXPECT_EQ(program->query->predicate, "path");
  EXPECT_TRUE(program->query->args[1].is_variable());
  EXPECT_EQ(program->query->args[0].constant, Value::String("a"));
}

TEST(PlogParserTest, ComparisonsNegationAndNumbers) {
  auto program = ParsePrismalog(
      "rich(N) :- account(N, B), B >= 1000, not broke(N).\n"
      "cold(T) :- reading(T), T < -5.\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const Rule& r = program->rules[0];
  ASSERT_EQ(r.body.size(), 3u);
  EXPECT_EQ(r.body[1].kind, BodyElem::Kind::kComparison);
  EXPECT_EQ(r.body[1].cmp_op, algebra::BinaryOp::kGe);
  EXPECT_TRUE(r.body[2].negated);
  // Negative numeric constant.
  EXPECT_EQ(program->rules[1].body[1].cmp_rhs.constant, Value::Int(-5));
}

TEST(PlogParserTest, QueryDashForm) {
  auto program = ParsePrismalog("?- p(X).");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->query.has_value());
}

TEST(PlogParserTest, Errors) {
  EXPECT_FALSE(ParsePrismalog("p(X).").ok());             // Variable fact.
  EXPECT_FALSE(ParsePrismalog("P(x) :- q(x).").ok());     // Upper-case pred.
  EXPECT_FALSE(ParsePrismalog("p(a) :- q(a)").ok());      // Missing period.
  EXPECT_FALSE(ParsePrismalog("p().").ok());              // Nullary.
  EXPECT_FALSE(ParsePrismalog("? p(X). ? q(X).").ok());   // Two queries.
}

// ----------------------------------------------------------------- Engine

class FakeCatalog : public sql::CatalogReader {
 public:
  StatusOr<Schema> GetTableSchema(const std::string& table) const override {
    auto it = schemas_.find(table);
    if (it == schemas_.end()) return NotFoundError("no table " + table);
    return it->second;
  }
  void Add(const std::string& name, Schema schema) {
    schemas_[name] = std::move(schema);
  }

 private:
  std::map<std::string, Schema> schemas_;
};

class PlogEngineTest : public ::testing::Test {
 protected:
  PlogEngineTest()
      : parent_("parent", Schema({{"child_of", DataType::kString},
                                  {"who", DataType::kString}})),
        account_("account", Schema({{"owner", DataType::kString},
                                    {"balance", DataType::kInt64}})) {
    // tom -> bob -> ann -> sue, tom -> liz.
    AddParent("tom", "bob");
    AddParent("tom", "liz");
    AddParent("bob", "ann");
    AddParent("ann", "sue");
    account_.Insert(Tuple({Value::String("bob"), Value::Int(5000)})).value();
    account_.Insert(Tuple({Value::String("liz"), Value::Int(10)})).value();
    catalog_.Add("parent", parent_.schema());
    catalog_.Add("account", account_.schema());
    resolver_.Register("parent", &parent_);
    resolver_.Register("account", &account_);
  }

  void AddParent(const std::string& a, const std::string& b) {
    parent_.Insert(Tuple({Value::String(a), Value::String(b)})).value();
  }

  StatusOr<QueryResult> Query(const std::string& text,
                              EngineOptions options = {}) {
    ASSIGN_OR_RETURN(Program program, ParsePrismalog(text));
    Engine engine(&resolver_, &catalog_, options);
    auto result = engine.Run(program);
    last_stats_ = engine.stats();
    return result;
  }

  std::set<std::string> Names(const QueryResult& r, size_t col = 0) {
    std::set<std::string> out;
    for (const Tuple& t : r.tuples) out.insert(t.at(col).string_value());
    return out;
  }

  storage::Relation parent_;
  storage::Relation account_;
  FakeCatalog catalog_;
  exec::MapTableResolver resolver_;
  EvalStats last_stats_;
};

TEST_F(PlogEngineTest, NonRecursiveRuleOverBaseTable) {
  auto result = Query(
      "grandparent(X, Z) :- parent(X, Y), parent(Y, Z).\n"
      "? grandparent(X, Y).");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->schema.num_columns(), 2u);
  EXPECT_EQ(result->tuples.size(), 2u);  // tom->ann, bob->sue.
  EXPECT_EQ(Names(*result), (std::set<std::string>{"bob", "tom"}));
}

TEST_F(PlogEngineTest, RecursiveAncestorViaTcOperator) {
  auto result = Query(
      "ancestor(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n"
      "? ancestor(tom, X).");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Names(*result),
            (std::set<std::string>{"bob", "liz", "ann", "sue"}));
  // The linear-recursion pair was routed to the TC operator (§2.5).
  EXPECT_TRUE(last_stats_.used_tc_operator);
}

TEST_F(PlogEngineTest, RecursionWithoutTcShortcutAgrees) {
  EngineOptions no_tc;
  no_tc.use_tc_operator = false;
  auto with = Query(
      "ancestor(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n"
      "? ancestor(X, Y).");
  auto without = Query(
      "ancestor(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n"
      "? ancestor(X, Y).",
      no_tc);
  ASSERT_TRUE(with.ok() && without.ok());
  EXPECT_FALSE(last_stats_.used_tc_operator);
  EXPECT_EQ(with->tuples, without->tuples);
  EXPECT_EQ(with->tuples.size(), 7u);
}

TEST_F(PlogEngineTest, RightLinearRecursionAlsoUsesTc) {
  auto result = Query(
      "reach(X, Y) :- parent(X, Y).\n"
      "reach(X, Z) :- reach(X, Y), parent(Y, Z).\n"
      "? reach(X, sue).");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(last_stats_.used_tc_operator);
  EXPECT_EQ(Names(*result), (std::set<std::string>{"tom", "bob", "ann"}));
}

TEST_F(PlogEngineTest, ComparisonBuiltins) {
  auto result = Query(
      "rich(N) :- account(N, B), B >= 1000.\n"
      "? rich(X).");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Names(*result), (std::set<std::string>{"bob"}));
}

TEST_F(PlogEngineTest, StratifiedNegation) {
  auto result = Query(
      "has_child(X) :- parent(X, Y).\n"
      "leaf(X) :- parent(Y, X), not has_child(X).\n"
      "? leaf(X).");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Names(*result), (std::set<std::string>{"liz", "sue"}));
  EXPECT_GE(last_stats_.num_strata, 2);
}

TEST_F(PlogEngineTest, UnstratifiableProgramRejected) {
  auto result = Query(
      "p(X) :- parent(X, Y), not q(X).\n"
      "q(X) :- parent(X, Y), not p(X).\n"
      "? p(X).");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("stratifiable"),
            std::string::npos);
}

TEST_F(PlogEngineTest, FactsInProgram) {
  auto result = Query(
      "likes(alice, databases).\n"
      "likes(bob, networks).\n"
      "likes(X, prisma) :- likes(X, databases).\n"
      "? likes(X, prisma).");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Names(*result), (std::set<std::string>{"alice"}));
}

TEST_F(PlogEngineTest, GroundQueryAnswersBool) {
  auto yes = Query(
      "ancestor(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n"
      "? ancestor(tom, sue).");
  ASSERT_TRUE(yes.ok());
  ASSERT_EQ(yes->tuples.size(), 1u);
  EXPECT_EQ(yes->tuples[0].at(0), Value::Bool(true));

  auto no = Query(
      "ancestor(X, Y) :- parent(X, Y).\n"
      "? ancestor(sue, tom).");
  ASSERT_TRUE(no.ok());
  EXPECT_EQ(no->tuples[0].at(0), Value::Bool(false));
}

TEST_F(PlogEngineTest, RepeatedQueryVariable) {
  // self(X, X) pattern: who is their own ancestor? (none, acyclic).
  auto result = Query(
      "ancestor(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n"
      "? ancestor(X, X).");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tuples.empty());
}

TEST_F(PlogEngineTest, MutualRecursionEvaluates) {
  // Even/odd distance from tom, via mutual recursion (one SCC, 2 preds).
  auto result = Query(
      "even(tom).\n"
      "odd(Y) :- even(X), parent(X, Y).\n"
      "even(Y) :- odd(X), parent(X, Y).\n"
      "? odd(X).");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Odd depth: bob, liz (1), sue (3).
  EXPECT_EQ(Names(*result), (std::set<std::string>{"bob", "liz", "sue"}));
  EXPECT_FALSE(last_stats_.used_tc_operator);
}

TEST_F(PlogEngineTest, SemanticErrors) {
  // Unknown predicate (not EDB, no rules).
  EXPECT_FALSE(Query("p(X) :- ghost(X). ? p(X).").ok());
  // Arity mismatch with the base table.
  EXPECT_FALSE(Query("p(X) :- parent(X). ? p(X).").ok());
  // Inconsistent arity across uses.
  EXPECT_FALSE(Query("p(X) :- parent(X, Y). p(X, Y) :- parent(X, Y). "
                     "? p(X).")
                   .ok());
  // Not range-restricted: head variable unbound.
  EXPECT_FALSE(Query("p(X, W) :- parent(X, Y). ? p(X, W).").ok());
  // Negated variable unbound.
  EXPECT_FALSE(Query("p(X) :- parent(X, Y), not account(Z, B). ? p(X).").ok());
  // Rule head collides with a base table.
  EXPECT_FALSE(Query("parent(X, Y) :- account(X, Y). ? parent(X, Y).").ok());
  // No query.
  EXPECT_FALSE(Query("p(X) :- parent(X, Y).").ok());
}

TEST_F(PlogEngineTest, EvaluatePredicateExposesFullExtension) {
  auto program = ParsePrismalog(
      "ancestor(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n"
      "? ancestor(X, Y).");
  ASSERT_TRUE(program.ok());
  Engine engine(&resolver_, &catalog_);
  auto ext = engine.EvaluatePredicate(*program, "ancestor");
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ(ext->size(), 7u);
  // EDB predicates work too.
  auto edb = engine.EvaluatePredicate(*program, "parent");
  ASSERT_TRUE(edb.ok());
  EXPECT_EQ(edb->size(), 4u);
}

TEST_F(PlogEngineTest, TcAlgorithmsAgreeEndToEnd) {
  const char* program =
      "ancestor(X, Y) :- parent(X, Y).\n"
      "ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).\n"
      "? ancestor(X, Y).";
  std::vector<Tuple> reference;
  for (auto alg : {exec::TcAlgorithm::kNaive, exec::TcAlgorithm::kSeminaive,
                   exec::TcAlgorithm::kSmart}) {
    EngineOptions options;
    options.tc_algorithm = alg;
    auto result = Query(program, options);
    ASSERT_TRUE(result.ok());
    if (reference.empty()) {
      reference = result->tuples;
    } else {
      EXPECT_EQ(result->tuples, reference);
    }
  }
}

}  // namespace
}  // namespace prisma::prismalog
