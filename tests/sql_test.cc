#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "exec/executor.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "storage/relation.h"

namespace prisma::sql {
namespace {

// ------------------------------------------------------------------ Lexer

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT x, 42, 2.5, 'it''s' <> <= :- ;");
  ASSERT_TRUE(tokens.ok());
  auto& t = *tokens;
  EXPECT_TRUE(t[0].IsKeyword("select"));
  EXPECT_EQ(t[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(t[3].int_value, 42);
  EXPECT_DOUBLE_EQ(t[5].double_value, 2.5);
  EXPECT_EQ(t[7].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(t[7].text, "it's");
  EXPECT_TRUE(t[8].IsSymbol("<>"));
  EXPECT_TRUE(t[9].IsSymbol("<="));
  EXPECT_TRUE(t[10].IsSymbol(":-"));
  EXPECT_EQ(t.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("a -- comment here\n b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens).size(), 3u);  // a, b, end.
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

// ----------------------------------------------------------------- Parser

TEST(ParserTest, SelectFull) {
  auto stmt = ParseSql(
      "SELECT DISTINCT e.dept, SUM(e.salary) AS total FROM emp e "
      "WHERE e.salary > 100 AND e.dept <> 'hr' GROUP BY e.dept "
      "ORDER BY total DESC LIMIT 5;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
  const SelectStmt& s = *stmt->select;
  EXPECT_TRUE(s.distinct);
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].alias, "total");
  EXPECT_EQ(s.items[1].expr->kind, SqlExpr::Kind::kFuncCall);
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].alias, "e");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.group_by.size(), 1u);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_EQ(s.limit, 5u);
}

TEST(ParserTest, JoinOnSyntax) {
  auto stmt = ParseSql(
      "SELECT * FROM emp e JOIN dept d ON e.dept_id = d.id WHERE d.name = "
      "'eng'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectStmt& s = *stmt->select;
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0].join_condition, nullptr);
  ASSERT_NE(s.from[1].join_condition, nullptr);
  EXPECT_TRUE(s.items[0].star);
}

TEST(ParserTest, CommaJoin) {
  auto stmt = ParseSql("SELECT a.x FROM t1 a, t2 b WHERE a.x = b.y");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->from.size(), 2u);
}

TEST(ParserTest, CreateTableWithFragmentation) {
  auto stmt = ParseSql(
      "CREATE TABLE emp (id INT, name VARCHAR(20), salary DOUBLE) "
      "FRAGMENTED BY HASH(id) INTO 8 FRAGMENTS");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreateTable);
  const CreateTableStmt& c = *stmt->create_table;
  ASSERT_EQ(c.columns.size(), 3u);
  EXPECT_EQ(c.columns[1].type, DataType::kString);
  EXPECT_EQ(c.fragmentation.strategy, FragmentStrategy::kHash);
  EXPECT_EQ(c.fragmentation.column, "id");
  EXPECT_EQ(c.fragmentation.num_fragments, 8);
}

TEST(ParserTest, CreateTableRoundRobinAndRange) {
  auto rr = ParseSql(
      "CREATE TABLE t (x INT) FRAGMENTED BY ROUNDROBIN INTO 4 FRAGMENTS");
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(rr->create_table->fragmentation.strategy,
            FragmentStrategy::kRoundRobin);
  auto rg =
      ParseSql("CREATE TABLE t (x INT) FRAGMENTED BY RANGE(x) INTO 2 FRAGMENTS");
  ASSERT_TRUE(rg.ok());
  EXPECT_EQ(rg->create_table->fragmentation.strategy, FragmentStrategy::kRange);
}

TEST(ParserTest, InsertForms) {
  auto stmt = ParseSql(
      "INSERT INTO emp (id, name) VALUES (1, 'ann'), (2, 'bob')");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt->insert->columns.size(), 2u);
  EXPECT_EQ(stmt->insert->rows.size(), 2u);

  auto no_cols = ParseSql("INSERT INTO emp VALUES (1, 'x', 2.0)");
  ASSERT_TRUE(no_cols.ok());
  EXPECT_TRUE(no_cols->insert->columns.empty());
}

TEST(ParserTest, DeleteAndUpdate) {
  auto del = ParseSql("DELETE FROM emp WHERE salary < 100");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->kind, Statement::Kind::kDelete);
  ASSERT_NE(del->del->where, nullptr);

  auto upd = ParseSql(
      "UPDATE emp SET salary = salary * 2, name = 'x' WHERE id = 3");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->update->assignments.size(), 2u);
}

TEST(ParserTest, CreateIndex) {
  auto hash = ParseSql("CREATE INDEX i1 ON emp (id)");
  ASSERT_TRUE(hash.ok());
  EXPECT_FALSE(hash->create_index->ordered);
  auto ordered = ParseSql("CREATE ORDERED INDEX i2 ON emp (salary, id)");
  ASSERT_TRUE(ordered.ok());
  EXPECT_TRUE(ordered->create_index->ordered);
  EXPECT_EQ(ordered->create_index->columns.size(), 2u);
}

TEST(ParserTest, ExplainAndCheckpoint) {
  auto explain = ParseSql("EXPLAIN SELECT * FROM t");
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->kind, Statement::Kind::kSelect);
  EXPECT_TRUE(explain->explain);

  auto plain = ParseSql("SELECT * FROM t");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->explain);

  EXPECT_FALSE(ParseSql("EXPLAIN DELETE FROM t").ok());

  auto ckpt = ParseSql("CHECKPOINT");
  ASSERT_TRUE(ckpt.ok());
  EXPECT_EQ(ckpt->kind, Statement::Kind::kCheckpoint);
}

TEST(ParserTest, TxnControl) {
  EXPECT_EQ(ParseSql("BEGIN")->txn_control, TxnControl::kBegin);
  EXPECT_EQ(ParseSql("COMMIT;")->txn_control, TxnControl::kCommit);
  EXPECT_EQ(ParseSql("ROLLBACK")->txn_control, TxnControl::kAbort);
  EXPECT_EQ(ParseSql("ABORT")->txn_control, TxnControl::kAbort);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto stmt = ParseSql("SELECT a + b * c FROM t");
  ASSERT_TRUE(stmt.ok());
  // a + (b * c): top node is +.
  const SqlExpr& e = *stmt->select->items[0].expr;
  EXPECT_EQ(e.binary_op, algebra::BinaryOp::kAdd);
  EXPECT_EQ(e.right->binary_op, algebra::BinaryOp::kMul);

  auto logic = ParseSql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(logic.ok());
  // OR is top (AND binds tighter).
  EXPECT_EQ(logic->select->where->binary_op, algebra::BinaryOp::kOr);
}

TEST(ParserTest, IsNullForms) {
  auto stmt = ParseSql("SELECT * FROM t WHERE x IS NULL AND y IS NOT NULL");
  ASSERT_TRUE(stmt.ok());
  const SqlExpr& w = *stmt->select->where;
  EXPECT_EQ(w.binary_op, algebra::BinaryOp::kAnd);
  EXPECT_EQ(w.left->unary_op, algebra::UnaryOp::kIsNull);
  EXPECT_EQ(w.right->unary_op, algebra::UnaryOp::kNot);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSql("FLY TO the moon").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUES 1, 2").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t extra garbage +").ok());
  EXPECT_FALSE(ParseSql("CREATE TABLE t (x WIBBLE)").ok());
  EXPECT_FALSE(
      ParseSql("CREATE TABLE t (x INT) FRAGMENTED BY HASH(x) INTO 0 FRAGMENTS")
          .ok());
}

// ----------------------------------------------------------------- Binder

/// In-memory catalog + storage used to execute bound statements.
class FakeCatalog : public CatalogReader {
 public:
  StatusOr<Schema> GetTableSchema(const std::string& table) const override {
    auto it = schemas_.find(table);
    if (it == schemas_.end()) return NotFoundError("no table " + table);
    return it->second;
  }
  void Add(const std::string& name, Schema schema) {
    schemas_[name] = std::move(schema);
  }

 private:
  std::map<std::string, Schema> schemas_;
};

class BinderTest : public ::testing::Test {
 protected:
  BinderTest()
      : emp_("emp", Schema({{"id", DataType::kInt64},
                            {"dept", DataType::kString},
                            {"salary", DataType::kInt64}})),
        dept_("dept", Schema({{"name", DataType::kString},
                              {"budget", DataType::kInt64}})) {
    catalog_.Add("emp", emp_.schema());
    catalog_.Add("dept", dept_.schema());
    const char* depts[] = {"sales", "eng"};
    for (int i = 0; i < 10; ++i) {
      emp_.Insert(Tuple({Value::Int(i), Value::String(depts[i % 2]),
                         Value::Int(100 * i)}))
          .value();
    }
    dept_.Insert(Tuple({Value::String("sales"), Value::Int(1000)})).value();
    dept_.Insert(Tuple({Value::String("eng"), Value::Int(2000)})).value();
    resolver_.Register("emp", &emp_);
    resolver_.Register("dept", &dept_);
  }

  StatusOr<std::vector<Tuple>> Query(const std::string& sql) {
    ASSIGN_OR_RETURN(BoundStatement bound, ParseAndBind(sql, catalog_));
    if (bound.kind != Statement::Kind::kSelect) {
      return InvalidArgumentError("not a select");
    }
    exec::Executor executor(&resolver_, exec::ExecOptions());
    return executor.Execute(*bound.plan);
  }

  FakeCatalog catalog_;
  storage::Relation emp_;
  storage::Relation dept_;
  exec::MapTableResolver resolver_;
};

TEST_F(BinderTest, SimpleSelect) {
  auto out = Query("SELECT id, salary FROM emp WHERE salary >= 800");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 2u);
  EXPECT_EQ(out->front().size(), 2u);
}

TEST_F(BinderTest, StarExpansion) {
  auto out = Query("SELECT * FROM emp LIMIT 3");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
  EXPECT_EQ(out->front().size(), 3u);
}

TEST_F(BinderTest, JoinWithQualifiedColumns) {
  auto out = Query(
      "SELECT e.id, d.budget FROM emp e JOIN dept d ON e.dept = d.name "
      "WHERE d.budget > 1500");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 5u);  // eng employees.
}

TEST_F(BinderTest, SelfJoinWithAliases) {
  auto out = Query(
      "SELECT a.id, b.id FROM emp a, emp b "
      "WHERE a.dept = b.dept AND a.id < b.id");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 20u);  // 2 * C(5,2).
}

TEST_F(BinderTest, GroupByAggregates) {
  auto out = Query(
      "SELECT dept, COUNT(*) AS n, SUM(salary) AS total, AVG(salary) "
      "FROM emp GROUP BY dept ORDER BY dept");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 2u);
  // eng = odd ids 1,3,5,7,9 -> sum 2500; sales even -> 2000.
  EXPECT_EQ((*out)[0].at(0), Value::String("eng"));
  EXPECT_EQ((*out)[0].at(2), Value::Int(2500));
  EXPECT_EQ((*out)[1].at(0), Value::String("sales"));
  EXPECT_EQ((*out)[1].at(2), Value::Int(2000));
  EXPECT_EQ((*out)[0].at(1), Value::Int(5));
}

TEST_F(BinderTest, GrandAggregateWithoutGroupBy) {
  auto out = Query("SELECT COUNT(*), MAX(salary) FROM emp");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().at(0), Value::Int(10));
  EXPECT_EQ(out->front().at(1), Value::Int(900));
}

TEST_F(BinderTest, DistinctAndOrderBy) {
  auto out = Query("SELECT DISTINCT dept FROM emp ORDER BY dept DESC");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->front().at(0), Value::String("sales"));
}

TEST_F(BinderTest, BindErrors) {
  EXPECT_FALSE(Query("SELECT nope FROM emp").ok());
  EXPECT_FALSE(Query("SELECT id FROM ghost").ok());
  // Non-grouped select item.
  EXPECT_FALSE(Query("SELECT id, COUNT(*) FROM emp GROUP BY dept").ok());
  // Aggregate nested in arithmetic is rejected (documented limit).
  EXPECT_FALSE(Query("SELECT SUM(salary) / 2 FROM emp").ok());
  // SELECT * with aggregation.
  EXPECT_FALSE(Query("SELECT * , COUNT(*) FROM emp").ok());
  // Type error.
  EXPECT_FALSE(Query("SELECT id + dept FROM emp").ok());
  // Ambiguous column across join.
  EXPECT_FALSE(Query("SELECT id FROM emp a, emp b WHERE a.id = b.id").ok());
}

TEST_F(BinderTest, InsertBinding) {
  auto bound = ParseAndBind(
      "INSERT INTO emp (dept, id) VALUES ('hr', 99), ('hr', -1 - 1)",
      catalog_);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->insert_rows.size(), 2u);
  // Reordered into schema order, missing salary = NULL.
  EXPECT_EQ(bound->insert_rows[0].at(0), Value::Int(99));
  EXPECT_EQ(bound->insert_rows[0].at(1), Value::String("hr"));
  EXPECT_TRUE(bound->insert_rows[0].at(2).is_null());
  EXPECT_EQ(bound->insert_rows[1].at(0), Value::Int(-2));
}

TEST_F(BinderTest, InsertErrors) {
  EXPECT_FALSE(ParseAndBind("INSERT INTO emp VALUES (1)", catalog_).ok());
  EXPECT_FALSE(
      ParseAndBind("INSERT INTO emp (id) VALUES (id)", catalog_).ok());
  EXPECT_FALSE(
      ParseAndBind("INSERT INTO emp (id) VALUES ('text')", catalog_).ok());
}

TEST_F(BinderTest, UpdateAndDeleteBinding) {
  auto upd = ParseAndBind(
      "UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'", catalog_);
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  ASSERT_EQ(upd->assignments.size(), 1u);
  EXPECT_EQ(upd->assignments[0].first, 2u);
  ASSERT_NE(upd->where, nullptr);
  EXPECT_TRUE(upd->where->bound());

  auto del = ParseAndBind("DELETE FROM emp", catalog_);
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->where, nullptr);

  EXPECT_FALSE(
      ParseAndBind("UPDATE emp SET id = 'oops'", catalog_).ok());
  EXPECT_FALSE(ParseAndBind("DELETE FROM emp WHERE id + 1", catalog_).ok());
}

TEST_F(BinderTest, CreateTableBinding) {
  auto bound = ParseAndBind(
      "CREATE TABLE log (ts INT, msg STRING) FRAGMENTED BY RANGE(ts) INTO 4 "
      "FRAGMENTS",
      catalog_);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->create_schema.num_columns(), 2u);
  EXPECT_EQ(bound->fragmentation.strategy, FragmentStrategy::kRange);
  EXPECT_EQ(bound->fragment_column, 0u);
  EXPECT_FALSE(
      ParseAndBind("CREATE TABLE bad (x INT, x INT)", catalog_).ok());
  EXPECT_FALSE(
      ParseAndBind("CREATE TABLE bad (x INT) FRAGMENTED BY HASH(y) INTO 2 "
                   "FRAGMENTS",
                   catalog_)
          .ok());
}

TEST_F(BinderTest, CreateIndexBinding) {
  auto bound =
      ParseAndBind("CREATE ORDERED INDEX isal ON emp (salary)", catalog_);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->index_ordered);
  EXPECT_EQ(bound->index_columns, (std::vector<size_t>{2}));
  EXPECT_FALSE(
      ParseAndBind("CREATE INDEX i ON emp (ghost)", catalog_).ok());
}

}  // namespace
}  // namespace prisma::sql
