// Row-vs-vectorized differential harness (DESIGN.md §12.3): every seeded
// workload runs twice on machines that are identical except for
// MachineConfig::exec_mode, and the two runs must produce byte-identical
// answers (canonicalized by sort where the query imposes no order),
// identical shipped-batch counts on the exchange layer, and identical
// fixpoint round/delta/pairs statistics. The vectorized run additionally
// must put FEWER modelled bits on the wire (column-encoded frames).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/prisma_db.h"
#include "soak_repro.h"

namespace prisma::core {
namespace {

/// One seeded dataset: a "fact"-shaped table and a "dim"-shaped table
/// whose sizes, key skew, NULL density and string payloads vary by seed.
struct Dataset {
  struct FactRow {
    int k;        // Join key (kNullKey = NULL).
    int v;        // Numeric payload.
    std::string s;
  };
  struct DimRow {
    int k;
    std::string label;
  };
  std::vector<FactRow> fact;
  std::vector<DimRow> dim;
};
constexpr int kNullKey = -1;

Dataset RandomDataset(uint64_t seed) {
  Rng rng(seed * 0x9e3779b9u + 7);
  Dataset data;
  const int keys = static_cast<int>(rng.UniformInt(3, 12));
  const int fact_rows = static_cast<int>(rng.UniformInt(20, 120));
  for (int i = 0; i < fact_rows; ++i) {
    Dataset::FactRow row;
    row.k = rng.Uniform(8) == 0 ? kNullKey
                                : static_cast<int>(rng.Uniform(keys));
    row.v = static_cast<int>(rng.UniformInt(0, 1000));
    // Repetitive strings: the columnar frame should compress relative to
    // the per-tuple row encoding mostly via bit-packed nulls and
    // frame-of-reference ints, but strings exercise the raw path.
    row.s = "tag" + std::to_string(row.v % 7);
    data.fact.push_back(std::move(row));
  }
  const int dim_rows = static_cast<int>(rng.UniformInt(2, 6));
  for (int i = 0; i < dim_rows; ++i) {
    data.dim.push_back({i, "label" + std::to_string(i)});
  }
  return data;
}

std::string FactInsert(const Dataset& data) {
  std::string sql = "INSERT INTO fact VALUES ";
  for (size_t i = 0; i < data.fact.size(); ++i) {
    const Dataset::FactRow& row = data.fact[i];
    if (i > 0) sql += ", ";
    sql += '(';
    sql += row.k == kNullKey ? std::string("NULL") : std::to_string(row.k);
    sql += ", " + std::to_string(row.v) + ", '" + row.s + "')";
  }
  return sql;
}

std::string DimInsert(const Dataset& data) {
  std::string sql = "INSERT INTO dim VALUES ";
  for (size_t i = 0; i < data.dim.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += '(' + std::to_string(data.dim[i].k) + ", '" +
           data.dim[i].label + "')";
  }
  return sql;
}

/// Canonical rendering: per-tuple text lines, sorted unless the query
/// already imposed an order. Byte-identical canonical forms == identical
/// result multisets.
std::string Canonical(const std::vector<Tuple>& tuples, bool ordered) {
  std::vector<std::string> lines;
  lines.reserve(tuples.size());
  for (const Tuple& t : tuples) lines.push_back(t.ToString());
  if (!ordered) std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// How the two fragmented tables are laid out, which forces the exchange
/// strategy of the fact⋈dim join (TryExchangeJoin costs candidates by
/// table cardinality and fragmentation-key alignment).
enum class Layout {
  /// dim hash-fragmented on its join key (and padded to fact's size so
  /// broadcasting it is not cheaper), fact on its payload column: only
  /// the fact side can shuffle onto dim's partitions -> kShuffleLeft.
  kShuffleOne,
  /// Both fragmented on payload columns; tiny dim, big fact ->
  /// kBroadcastRight (dim replicated) at any fragment count.
  kBroadcast,
  /// Both fragmented on payload columns with comparable sizes: at 3+
  /// fragments co-partitioning both sides is cheapest -> kShuffleBoth.
  kShuffleBoth,
};

const char* LayoutName(Layout layout) {
  switch (layout) {
    case Layout::kShuffleOne: return "shuffle-one";
    case Layout::kBroadcast: return "broadcast";
    case Layout::kShuffleBoth: return "shuffle-both";
  }
  return "?";
}

struct RunStats {
  std::vector<std::string> results;  // Canonical form per query.
  uint64_t exchange_batches = 0;
  uint64_t exchange_wire_bits = 0;
  int64_t fixpoint_rounds = 0;
  int64_t fixpoint_delta = 0;
  int64_t fixpoint_pairs = 0;
  int64_t fixpoint_wire_bits = 0;
};

QueryResult MustExecute(PrismaDb& db, const std::string& sql) {
  auto result = db.Execute(sql);
  PRISMA_CHECK(result.ok()) << sql << ": " << result.status().ToString();
  return std::move(result).value();
}

/// Builds one machine, loads the seeded dataset under `layout`, runs the
/// whole workload and collects canonical results plus wire statistics.
RunStats RunWorkload(uint64_t seed, int fragments, Layout layout,
                     exec::ExecMode mode) {
  const Dataset data = RandomDataset(seed);
  MachineConfig config;
  config.pes = 8;
  config.exec_mode = mode;
  PrismaDb db(config);

  // fact(k INT, v INT, s STRING); dim(k INT, label STRING). fact always
  // fragments on its payload column so the join key never lines up.
  const char* dim_frag = layout == Layout::kShuffleOne ? "k" : "label";
  MustExecute(db, StrFormat("CREATE TABLE fact (k INT, v INT, s STRING) "
                            "FRAGMENTED BY HASH(v) INTO %d FRAGMENTS",
                            fragments));
  MustExecute(db, StrFormat("CREATE TABLE dim (k INT, label STRING) "
                            "FRAGMENTED BY HASH(%s) INTO %d FRAGMENTS",
                            dim_frag, fragments));
  // Shuffle layouts want comparable sizes so shuffling beats
  // broadcasting the dimension: pad dim up to the fact size with keys
  // that never join (>= 1000, fact keys stay below 12).
  if (layout != Layout::kBroadcast) {
    std::string pad = "INSERT INTO dim VALUES ";
    for (size_t i = 0; i < data.fact.size(); ++i) {
      if (i > 0) pad += ", ";
      pad += '(' + std::to_string(1000 + static_cast<int>(i)) + ", 'pad')";
    }
    MustExecute(db, pad);
  }
  MustExecute(db, FactInsert(data));
  MustExecute(db, DimInsert(data));

  RunStats stats;
  const struct {
    const char* sql;
    bool ordered;
  } kQueries[] = {
      {"SELECT * FROM fact", false},
      {"SELECT k, v FROM fact WHERE v < 500", false},
      {"SELECT s, COUNT(*) AS n, SUM(v) AS total, MIN(v), MAX(v) "
       "FROM fact GROUP BY s ORDER BY s", true},
      {"SELECT f.v, d.label FROM fact f JOIN dim d ON f.k = d.k", false},
      {"SELECT d.label AS label, COUNT(*) AS n FROM fact f JOIN dim d "
       "ON f.k = d.k GROUP BY d.label ORDER BY label", true},
  };
  for (const auto& q : kQueries) {
    stats.results.push_back(Canonical(MustExecute(db, q.sql).tuples,
                                      q.ordered));
  }

  // Distributed fixpoint over a fragmented edge relation derived from the
  // same seed (fact keys as endpoints).
  MustExecute(db, StrFormat("CREATE TABLE edge (src INT, dst INT) "
                            "FRAGMENTED BY HASH(src) INTO %d FRAGMENTS",
                            fragments));
  std::string edges = "INSERT INTO edge VALUES ";
  const size_t edge_count = std::min<size_t>(data.fact.size(), 24);
  for (size_t i = 0; i < edge_count; ++i) {
    if (i > 0) edges += ", ";
    const Dataset::FactRow& row = data.fact[i];
    edges += '(';
    edges += row.k == kNullKey ? std::string("NULL") : std::to_string(row.k);
    edges += ", " + std::to_string(row.v % 9) + ')';
  }
  MustExecute(db, edges);
  auto closure = db.ExecutePrismalog(
      "p(X, Y) :- edge(X, Y).\n"
      "p(X, Z) :- edge(X, Y), p(Y, Z).\n"
      "? p(X, Y).");
  PRISMA_CHECK(closure.ok()) << closure.status().ToString();
  stats.results.push_back(Canonical(closure->tuples, /*ordered=*/true));

  // Exchange-producer counters are labeled per fragment; sum them.
  for (const char* table : {"fact", "dim", "edge"}) {
    for (int f = 0; f < fragments; ++f) {
      const obs::Labels labels = {
          {"fragment", std::string(table) + "#" + std::to_string(f)}};
      stats.exchange_batches +=
          db.metrics().CounterValue("exchange.batches_sent", labels);
      stats.exchange_wire_bits +=
          db.metrics().CounterValue("exchange.wire_bits", labels);
    }
  }
  stats.fixpoint_rounds = db.metrics().GaugeValue("fixpoint.last_rounds");
  stats.fixpoint_delta =
      db.metrics().GaugeValue("fixpoint.last_delta_tuples");
  stats.fixpoint_pairs =
      db.metrics().GaugeValue("fixpoint.last_pairs_derived");
  stats.fixpoint_wire_bits =
      db.metrics().GaugeValue("fixpoint.last_wire_bits");
  return stats;
}

/// Core differential check for one (seed, fragments, layout) cell.
void CheckCell(uint64_t seed, int fragments, Layout layout) {
  SCOPED_TRACE(StrFormat("seed=%llu fragments=%d layout=%s",
                         static_cast<unsigned long long>(seed), fragments,
                         LayoutName(layout)));
  const RunStats row = RunWorkload(seed, fragments, layout,
                                   exec::ExecMode::kRow);
  const RunStats vec = RunWorkload(seed, fragments, layout,
                                   exec::ExecMode::kVectorized);
  ASSERT_EQ(row.results.size(), vec.results.size());
  for (size_t q = 0; q < row.results.size(); ++q) {
    SCOPED_TRACE(StrFormat("query=%zu", q));
    EXPECT_EQ(row.results[q], vec.results[q]);
  }
  // Identical partitions and framing: the same number of batches ships in
  // both modes (the frames themselves differ in encoding).
  EXPECT_EQ(row.exchange_batches, vec.exchange_batches);
  // The fixpoint's distributed statistics are mode-invariant.
  EXPECT_EQ(row.fixpoint_rounds, vec.fixpoint_rounds);
  EXPECT_EQ(row.fixpoint_delta, vec.fixpoint_delta);
  EXPECT_EQ(row.fixpoint_pairs, vec.fixpoint_pairs);
  // Column-encoded frames must be measurably smaller whenever anything
  // actually shipped (ints are frame-of-reference packed, nulls are
  // bitmapped; the row encoding spends 16 bytes of framing per tuple).
  if (row.exchange_batches > 0 && row.exchange_wire_bits > 0) {
    EXPECT_LT(vec.exchange_wire_bits, row.exchange_wire_bits);
  }
  if (row.fixpoint_delta > 0 && row.fixpoint_wire_bits > 0) {
    EXPECT_LT(vec.fixpoint_wire_bits, row.fixpoint_wire_bits);
  }
}

constexpr int kFragmentCounts[] = {1, 3, 7};

TEST(VectorizedDiffTest, ShuffleOneLayoutAcrossSeeds) {
  for (const uint64_t seed : SoakSeeds(1, 17)) {
    PRISMA_SEED_REPRO("VectorizedDiffTest.ShuffleOneLayoutAcrossSeeds", seed);
    for (const int fragments : kFragmentCounts) {
      CheckCell(seed, fragments, Layout::kShuffleOne);
    }
  }
}

TEST(VectorizedDiffTest, BroadcastLayoutAcrossSeeds) {
  for (const uint64_t seed : SoakSeeds(18, 34)) {
    PRISMA_SEED_REPRO("VectorizedDiffTest.BroadcastLayoutAcrossSeeds", seed);
    for (const int fragments : kFragmentCounts) {
      CheckCell(seed, fragments, Layout::kBroadcast);
    }
  }
}

TEST(VectorizedDiffTest, ShuffleBothLayoutAcrossSeeds) {
  for (const uint64_t seed : SoakSeeds(35, 50)) {
    PRISMA_SEED_REPRO("VectorizedDiffTest.ShuffleBothLayoutAcrossSeeds", seed);
    for (const int fragments : kFragmentCounts) {
      CheckCell(seed, fragments, Layout::kShuffleBoth);
    }
  }
}

// ----------------------------------------------------- Strategy coverage

/// The three layouts must actually exercise three distinct exchange
/// strategies (otherwise the grid above silently degenerates); EXPLAIN
/// names the chosen strategy.
TEST(VectorizedDiffTest, LayoutsForceDistinctJoinStrategies) {
  const struct {
    Layout layout;
    const char* expect;
  } kCases[] = {
      {Layout::kShuffleOne, "shuffle-left"},
      {Layout::kBroadcast, "broadcast-right"},
      {Layout::kShuffleBoth, "shuffle-both"},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(LayoutName(c.layout));
    const Dataset data = RandomDataset(3);
    MachineConfig config;
    config.pes = 8;
    PrismaDb db(config);
    const char* dim_frag = c.layout == Layout::kShuffleOne ? "k" : "label";
    MustExecute(db, StrFormat("CREATE TABLE fact (k INT, v INT, s STRING) "
                              "FRAGMENTED BY HASH(v) INTO 3 FRAGMENTS"));
    MustExecute(db, StrFormat("CREATE TABLE dim (k INT, label STRING) "
                              "FRAGMENTED BY HASH(%s) INTO 3 FRAGMENTS",
                              dim_frag));
    if (c.layout != Layout::kBroadcast) {
      std::string pad = "INSERT INTO dim VALUES ";
      for (size_t i = 0; i < data.fact.size(); ++i) {
        if (i > 0) pad += ", ";
        pad += '(' + std::to_string(1000 + static_cast<int>(i)) + ", 'pad')";
      }
      MustExecute(db, pad);
    }
    MustExecute(db, FactInsert(data));
    MustExecute(db, DimInsert(data));
    const QueryResult plan = MustExecute(
        db, "EXPLAIN SELECT f.v, d.label FROM fact f JOIN dim d "
            "ON f.k = d.k");
    std::string text;
    for (const Tuple& t : plan.tuples) text += t.ToString() + "\n";
    EXPECT_NE(text.find(c.expect), std::string::npos) << text;
  }
}

// ------------------------------------------------- Vectorized EXPLAIN ANALYZE

/// EXPLAIN ANALYZE under the vectorized mode reports per-operator batch
/// counts alongside rows.
TEST(VectorizedDiffTest, ExplainAnalyzeReportsBatches) {
  MachineConfig config;
  config.pes = 4;
  config.exec_mode = exec::ExecMode::kVectorized;
  PrismaDb db(config);
  MustExecute(db, "CREATE TABLE t (x INT, y INT) "
                  "FRAGMENTED BY HASH(x) INTO 3 FRAGMENTS");
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 50; ++i) {
    if (i > 0) insert += ", ";
    insert += '(' + std::to_string(i) + ", " + std::to_string(i * 3) + ')';
  }
  MustExecute(db, insert);
  const QueryResult analyzed =
      MustExecute(db, "EXPLAIN ANALYZE SELECT * FROM t WHERE y < 90");
  std::string text;
  for (const Tuple& t : analyzed.tuples) text += t.ToString() + "\n";
  EXPECT_NE(text.find("batches="), std::string::npos) << text;
}

/// A per-statement override flips one statement to the vectorized path on
/// an otherwise row-mode machine, and both agree.
TEST(VectorizedDiffTest, PerStatementModeOverride) {
  MachineConfig config;
  config.pes = 4;
  PrismaDb db(config);
  MustExecute(db, "CREATE TABLE t (x INT) "
                  "FRAGMENTED BY HASH(x) INTO 3 FRAGMENTS");
  MustExecute(db, "INSERT INTO t VALUES (1), (2), (3), (4), (5)");
  auto row = db.Execute("SELECT * FROM t WHERE x >= 2");
  auto vec = db.Execute("SELECT * FROM t WHERE x >= 2",
                        exec::ExecMode::kVectorized);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(vec.ok());
  EXPECT_EQ(Canonical(row->tuples, false), Canonical(vec->tuples, false));
}

}  // namespace
}  // namespace prisma::core
