#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/prisma_db.h"

namespace prisma::core {
namespace {

MachineConfig SoakMachine() {
  MachineConfig config;
  config.pes = 8;
  return config;
}

constexpr int kFragments = 4;

QueryResult MustExecute(PrismaDb* db, const std::string& sql) {
  auto result = db->Execute(sql);
  PRISMA_CHECK(result.ok()) << sql << " -> " << result.status().ToString();
  return std::move(result).value();
}

std::set<int64_t> SelectIds(PrismaDb* db) {
  QueryResult r = MustExecute(db, "SELECT id FROM t");
  std::set<int64_t> ids;
  for (const Tuple& tuple : r.tuples) ids.insert(tuple.at(0).int_value());
  return ids;
}

void CrashAndRecoverAll(PrismaDb* db) {
  for (int f = 0; f < kFragments; ++f) {
    ASSERT_TRUE(db->CrashFragment("t", f).ok());
    ASSERT_TRUE(db->RecoverFragment("t", f).ok());
    db->Run();  // Let the respawned OFM's restart/redo pass settle.
  }
}

TEST(RecoveryTest, CommittedEffectsSurviveAbortedOnesDont) {
  PrismaDb db(SoakMachine());
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  for (int i = 0; i < 20; ++i) {
    MustExecute(&db, StrFormat("INSERT INTO t VALUES (%d, %d)", i, i * 10));
  }

  // An explicit transaction that writes and then aborts: its tuples must
  // vanish now and must not resurrect through the WAL after a crash.
  auto session = db.OpenSession();
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (100, 0)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (101, 0)").ok());
  ASSERT_TRUE(session.Execute("ABORT").ok());
  EXPECT_EQ(db.metrics().CounterValue("gdh.txns_aborted"), 1u);

  CrashAndRecoverAll(&db);

  const std::set<int64_t> ids = SelectIds(&db);
  EXPECT_EQ(ids.size(), 20u);
  EXPECT_EQ(ids.count(100), 0u);
  EXPECT_EQ(ids.count(101), 0u);

  // Metrics account for the restart work: every fragment recovered, and
  // the 20 committed inserts (one redo record each) were replayed.
  EXPECT_EQ(db.metrics().CounterTotal("ofm.recoveries"),
            static_cast<uint64_t>(kFragments));
  EXPECT_EQ(db.metrics().CounterTotal("ofm.redo_applied"), 20u);
}

TEST(RecoveryTest, CheckpointBoundsRedoWork) {
  PrismaDb db(SoakMachine());
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  for (int i = 0; i < 10; ++i) {
    MustExecute(&db, StrFormat("INSERT INTO t VALUES (%d, 0)", i));
  }
  MustExecute(&db, "CHECKPOINT");
  for (int i = 10; i < 14; ++i) {
    MustExecute(&db, StrFormat("INSERT INTO t VALUES (%d, 0)", i));
  }

  CrashAndRecoverAll(&db);

  // Only the post-checkpoint suffix replays; the first 10 rows come from
  // the snapshot.
  EXPECT_EQ(db.metrics().CounterTotal("ofm.redo_applied"), 4u);
  EXPECT_EQ(SelectIds(&db).size(), 14u);
}

/// Seeded random soak: interleaves reads, writes, explicit transactions
/// (committed and aborted), checkpoints and fragment crash/recover cycles,
/// tracking a model of the committed row set. Returns the final metrics
/// dump so callers can compare runs.
std::string RunSoak(uint64_t seed, std::set<int64_t>* final_ids,
                    uint64_t* expected_aborts, uint64_t* expected_crashes) {
  PrismaDb db(SoakMachine());
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  Rng rng(seed);
  std::set<int64_t> model;
  int64_t next_id = 0;
  uint64_t aborts = 0;
  uint64_t crashes = 0;

  for (int op = 0; op < 60; ++op) {
    const int64_t dice = rng.UniformInt(0, 9);
    if (dice < 4) {
      // Auto-commit insert.
      const int64_t id = next_id++;
      MustExecute(&db, StrFormat("INSERT INTO t VALUES (%lld, %lld)",
                                 static_cast<long long>(id),
                                 static_cast<long long>(id * 7)));
      model.insert(id);
    } else if (dice == 4 && !model.empty()) {
      // Delete one existing row by key.
      auto it = model.begin();
      std::advance(it,
                   rng.UniformInt(0, static_cast<int64_t>(model.size()) - 1));
      MustExecute(&db, StrFormat("DELETE FROM t WHERE id = %lld",
                                 static_cast<long long>(*it)));
      model.erase(it);
    } else if (dice == 5) {
      // Explicit transaction with a few inserts; commit or abort.
      auto session = db.OpenSession();
      PRISMA_CHECK(session.Execute("BEGIN").ok());
      const int64_t count = rng.UniformInt(1, 3);
      std::vector<int64_t> staged;
      for (int64_t i = 0; i < count; ++i) {
        const int64_t id = next_id++;
        PRISMA_CHECK(
            session.Execute(StrFormat("INSERT INTO t VALUES (%lld, 1)",
                                      static_cast<long long>(id)))
                .ok());
        staged.push_back(id);
      }
      if (rng.NextBool(0.5)) {
        PRISMA_CHECK(session.Execute("COMMIT").ok());
        model.insert(staged.begin(), staged.end());
      } else {
        PRISMA_CHECK(session.Execute("ABORT").ok());
        ++aborts;
      }
    } else if (dice == 6) {
      MustExecute(&db, "CHECKPOINT");
    } else if (dice == 7) {
      // Crash one fragment and bring it back before the next statement.
      const int f = static_cast<int>(rng.UniformInt(0, kFragments - 1));
      PRISMA_CHECK(db.CrashFragment("t", f).ok());
      PRISMA_CHECK(db.RecoverFragment("t", f).ok());
      db.Run();
      ++crashes;
    } else {
      // Read back and verify against the model mid-soak.
      const std::set<int64_t> ids = SelectIds(&db);
      PRISMA_CHECK(ids == model)
          << "soak divergence at op " << op << ": db has " << ids.size()
          << " rows, model has " << model.size();
    }
  }

  *final_ids = SelectIds(&db);
  PRISMA_CHECK(*final_ids == model);
  *expected_aborts = aborts;
  *expected_crashes = crashes;
  return db.DumpMetrics();
}

TEST(RecoveryTest, RandomizedSoakKeepsCommittedStateAndMetricsHonest) {
  std::set<int64_t> ids;
  uint64_t aborts = 0;
  uint64_t crashes = 0;
  const std::string metrics = RunSoak(1234, &ids, &aborts, &crashes);

  // The seed produced a non-trivial mix (update the seed if this fails
  // after changing the op distribution).
  EXPECT_GT(ids.size(), 5u);
  EXPECT_GT(aborts, 0u);
  EXPECT_GT(crashes, 0u);

  // The registry agrees with the ground truth the soak tracked.
  EXPECT_NE(metrics.find(StrFormat("counter gdh.txns_aborted %llu",
                                   static_cast<unsigned long long>(aborts))),
            std::string::npos)
      << metrics;

  std::set<int64_t> ids2;
  uint64_t aborts2 = 0;
  uint64_t crashes2 = 0;
  const std::string metrics2 = RunSoak(1234, &ids2, &aborts2, &crashes2);

  // Same seed, same machine: byte-identical metrics and identical state —
  // the crash/recovery path is deterministic too.
  EXPECT_EQ(ids, ids2);
  EXPECT_EQ(aborts, aborts2);
  EXPECT_EQ(crashes, crashes2);
  EXPECT_EQ(metrics, metrics2);
}

TEST(RecoveryTest, SoakMetricsCountRecoveries) {
  PrismaDb db(SoakMachine());
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  MustExecute(&db, "INSERT INTO t VALUES (1, 1), (2, 2), (3, 3)");
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(db.CrashFragment("t", 0).ok());
    ASSERT_TRUE(db.RecoverFragment("t", 0).ok());
    db.Run();
  }
  EXPECT_EQ(db.metrics().CounterTotal("ofm.recoveries"), 3u);
  EXPECT_EQ(SelectIds(&db).size(), 3u);
}

}  // namespace
}  // namespace prisma::core
