#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/prisma_db.h"
#include "gdh/replication.h"
#include "soak_repro.h"

namespace prisma::core {
namespace {

MachineConfig SoakMachine() {
  MachineConfig config;
  config.pes = 8;
  return config;
}

constexpr int kFragments = 4;

QueryResult MustExecute(PrismaDb* db, const std::string& sql) {
  auto result = db->Execute(sql);
  PRISMA_CHECK(result.ok()) << sql << " -> " << result.status().ToString();
  return std::move(result).value();
}

std::set<int64_t> SelectIds(PrismaDb* db) {
  QueryResult r = MustExecute(db, "SELECT id FROM t");
  std::set<int64_t> ids;
  for (const Tuple& tuple : r.tuples) ids.insert(tuple.at(0).int_value());
  return ids;
}

void CrashAndRecoverAll(PrismaDb* db) {
  for (int f = 0; f < kFragments; ++f) {
    ASSERT_TRUE(db->CrashFragment("t", f).ok());
    ASSERT_TRUE(db->RecoverFragment("t", f).ok());
    db->Run();  // Let the respawned OFM's restart/redo pass settle.
  }
}

TEST(RecoveryTest, CommittedEffectsSurviveAbortedOnesDont) {
  PrismaDb db(SoakMachine());
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  for (int i = 0; i < 20; ++i) {
    MustExecute(&db, StrFormat("INSERT INTO t VALUES (%d, %d)", i, i * 10));
  }

  // An explicit transaction that writes and then aborts: its tuples must
  // vanish now and must not resurrect through the WAL after a crash.
  auto session = db.OpenSession();
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (100, 0)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (101, 0)").ok());
  ASSERT_TRUE(session.Execute("ABORT").ok());
  EXPECT_EQ(db.metrics().CounterValue("gdh.txns_aborted"), 1u);

  CrashAndRecoverAll(&db);

  const std::set<int64_t> ids = SelectIds(&db);
  EXPECT_EQ(ids.size(), 20u);
  EXPECT_EQ(ids.count(100), 0u);
  EXPECT_EQ(ids.count(101), 0u);

  // Metrics account for the restart work: every fragment recovered, and
  // the 20 committed inserts (one redo record each) were replayed.
  EXPECT_EQ(db.metrics().CounterTotal("ofm.recoveries"),
            static_cast<uint64_t>(kFragments));
  EXPECT_EQ(db.metrics().CounterTotal("ofm.redo_applied"), 20u);
}

TEST(RecoveryTest, CheckpointBoundsRedoWork) {
  PrismaDb db(SoakMachine());
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  for (int i = 0; i < 10; ++i) {
    MustExecute(&db, StrFormat("INSERT INTO t VALUES (%d, 0)", i));
  }
  MustExecute(&db, "CHECKPOINT");
  for (int i = 10; i < 14; ++i) {
    MustExecute(&db, StrFormat("INSERT INTO t VALUES (%d, 0)", i));
  }

  CrashAndRecoverAll(&db);

  // Only the post-checkpoint suffix replays; the first 10 rows come from
  // the snapshot.
  EXPECT_EQ(db.metrics().CounterTotal("ofm.redo_applied"), 4u);
  EXPECT_EQ(SelectIds(&db).size(), 14u);
}

/// Seeded random soak: interleaves reads, writes, explicit transactions
/// (committed and aborted), checkpoints and fragment crash/recover cycles,
/// tracking a model of the committed row set. Returns the final metrics
/// dump so callers can compare runs.
std::string RunSoak(uint64_t seed, std::set<int64_t>* final_ids,
                    uint64_t* expected_aborts, uint64_t* expected_crashes) {
  PrismaDb db(SoakMachine());
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  Rng rng(seed);
  std::set<int64_t> model;
  int64_t next_id = 0;
  uint64_t aborts = 0;
  uint64_t crashes = 0;

  for (int op = 0; op < 60; ++op) {
    const int64_t dice = rng.UniformInt(0, 9);
    if (dice < 4) {
      // Auto-commit insert.
      const int64_t id = next_id++;
      MustExecute(&db, StrFormat("INSERT INTO t VALUES (%lld, %lld)",
                                 static_cast<long long>(id),
                                 static_cast<long long>(id * 7)));
      model.insert(id);
    } else if (dice == 4 && !model.empty()) {
      // Delete one existing row by key.
      auto it = model.begin();
      std::advance(it,
                   rng.UniformInt(0, static_cast<int64_t>(model.size()) - 1));
      MustExecute(&db, StrFormat("DELETE FROM t WHERE id = %lld",
                                 static_cast<long long>(*it)));
      model.erase(it);
    } else if (dice == 5) {
      // Explicit transaction with a few inserts; commit or abort.
      auto session = db.OpenSession();
      PRISMA_CHECK(session.Execute("BEGIN").ok());
      const int64_t count = rng.UniformInt(1, 3);
      std::vector<int64_t> staged;
      for (int64_t i = 0; i < count; ++i) {
        const int64_t id = next_id++;
        PRISMA_CHECK(
            session.Execute(StrFormat("INSERT INTO t VALUES (%lld, 1)",
                                      static_cast<long long>(id)))
                .ok());
        staged.push_back(id);
      }
      if (rng.NextBool(0.5)) {
        PRISMA_CHECK(session.Execute("COMMIT").ok());
        model.insert(staged.begin(), staged.end());
      } else {
        PRISMA_CHECK(session.Execute("ABORT").ok());
        ++aborts;
      }
    } else if (dice == 6) {
      MustExecute(&db, "CHECKPOINT");
    } else if (dice == 7) {
      // Crash one fragment and bring it back before the next statement.
      const int f = static_cast<int>(rng.UniformInt(0, kFragments - 1));
      PRISMA_CHECK(db.CrashFragment("t", f).ok());
      PRISMA_CHECK(db.RecoverFragment("t", f).ok());
      db.Run();
      ++crashes;
    } else {
      // Read back and verify against the model mid-soak.
      const std::set<int64_t> ids = SelectIds(&db);
      PRISMA_CHECK(ids == model)
          << "soak divergence at op " << op << ": db has " << ids.size()
          << " rows, model has " << model.size();
    }
  }

  *final_ids = SelectIds(&db);
  PRISMA_CHECK(*final_ids == model);
  *expected_aborts = aborts;
  *expected_crashes = crashes;
  return db.DumpMetrics();
}

TEST(RecoveryTest, RandomizedSoakKeepsCommittedStateAndMetricsHonest) {
  const uint64_t seed = SoakSeeds(1234, 1234).front();
  PRISMA_SEED_REPRO(
      "RecoveryTest.RandomizedSoakKeepsCommittedStateAndMetricsHonest", seed);
  std::set<int64_t> ids;
  uint64_t aborts = 0;
  uint64_t crashes = 0;
  const std::string metrics = RunSoak(seed, &ids, &aborts, &crashes);

  // The seed produced a non-trivial mix (update the seed if this fails
  // after changing the op distribution).
  EXPECT_GT(ids.size(), 5u);
  EXPECT_GT(aborts, 0u);
  EXPECT_GT(crashes, 0u);

  // The registry agrees with the ground truth the soak tracked.
  EXPECT_NE(metrics.find(StrFormat("counter gdh.txns_aborted %llu",
                                   static_cast<unsigned long long>(aborts))),
            std::string::npos)
      << metrics;

  std::set<int64_t> ids2;
  uint64_t aborts2 = 0;
  uint64_t crashes2 = 0;
  const std::string metrics2 = RunSoak(seed, &ids2, &aborts2, &crashes2);

  // Same seed, same machine: byte-identical metrics and identical state —
  // the crash/recovery path is deterministic too.
  EXPECT_EQ(ids, ids2);
  EXPECT_EQ(aborts, aborts2);
  EXPECT_EQ(crashes, crashes2);
  EXPECT_EQ(metrics, metrics2);
}

// ------------------------------------------- Fragment replication (§13)

/// Replicated machine: every permanent fragment lives on two distinct PEs,
/// coordinators are pinned to PE 0 (which never crashes) so these tests
/// observe replica failover, not coordinator loss. Tight retransmission
/// knobs make crash detection on the write path exhaust quickly.
MachineConfig ReplicatedMachine() {
  MachineConfig config;
  config.pes = 8;
  config.replicate_fragments = true;
  config.coordinator_pes = {0};
  config.rpc_timeout_ns = 50 * sim::kNanosPerMilli;
  config.rpc_backoff_cap_ns = 400 * sim::kNanosPerMilli;
  config.rpc_attempts = 4;
  return config;
}

/// After an end-of-test CHECKPOINT both replicas of every fragment of `t`
/// must have byte-identical snapshots on their PEs' stable stores — the
/// resync convergence criterion.
void ExpectReplicasByteIdentical(PrismaDb* db) {
  const auto table = db->gdh().dictionary().GetTable("t");
  ASSERT_TRUE(table.ok());
  for (const gdh::FragmentInfo& frag : (*table)->fragments) {
    ASSERT_TRUE(frag.replicated);
    const auto home = db->stable_store(frag.pe).ReadSnapshot(
        frag.name + ".ckpt");
    const auto backup = db->stable_store(frag.backup_pe).ReadSnapshot(
        gdh::BackupFragmentName(frag.name) + ".ckpt");
    ASSERT_TRUE(home.ok()) << frag.name;
    ASSERT_TRUE(backup.ok()) << frag.name;
    EXPECT_EQ(*home, *backup) << frag.name;
  }
}

TEST(RecoveryTest, ReplicatedCrashFailoverServesReadsAndResyncConverges) {
  PrismaDb db(ReplicatedMachine());
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  std::set<int64_t> model;
  for (int i = 0; i < 20; ++i) {
    MustExecute(&db, StrFormat("INSERT INTO t VALUES (%d, %d)", i, i * 10));
    model.insert(i);
  }

  const auto table = db.gdh().dictionary().GetTable("t");
  ASSERT_TRUE(table.ok());
  const gdh::FragmentInfo frag = (*table)->fragments[0];
  ASSERT_TRUE(frag.replicated);
  ASSERT_NE(frag.pe, frag.backup_pe);  // Anti-affinity placement.

  // Crash the home PE of fragment 0. Reads must keep being answered —
  // correctly and without a single Unavailable — from the backups.
  ASSERT_GT(db.CrashPe(frag.pe), 0u);
  EXPECT_EQ(SelectIds(&db), model);

  // Writes keep committing too: the GDH sheds the dead replica from 2PC
  // once its retransmission budget exhausts.
  for (int i = 100; i < 105; ++i) {
    MustExecute(&db, StrFormat("INSERT INTO t VALUES (%d, 0)", i));
    model.insert(i);
  }
  EXPECT_EQ(SelectIds(&db), model);
  EXPECT_GT(db.metrics().CounterTotal("replica.stale_marks"), 0u);

  // Restart: the stale replicas resync (snapshot bulk + WAL delta +
  // cutover) from their surviving peers and return to service.
  ASSERT_TRUE(db.RecoverPe(frag.pe).ok());
  db.Run();
  EXPECT_GT(db.metrics().CounterTotal("replica.resyncs_completed"), 0u);
  EXPECT_EQ(SelectIds(&db), model);

  // The crash window never surfaced an Unavailable to a read.
  EXPECT_EQ(db.metrics().CounterTotal("query.unavailable"), 0u);

  MustExecute(&db, "CHECKPOINT");
  ExpectReplicasByteIdentical(&db);
}

TEST(RecoveryTest, CrashDuringResyncNeverServesWrongAnswers) {
  PrismaDb db(ReplicatedMachine());
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  std::set<int64_t> model;
  for (int i = 0; i < 30; ++i) {
    MustExecute(&db, StrFormat("INSERT INTO t VALUES (%d, %d)", i, i));
    model.insert(i);
  }

  const auto table = db.gdh().dictionary().GetTable("t");
  ASSERT_TRUE(table.ok());
  const gdh::FragmentInfo frag = (*table)->fragments[0];
  ASSERT_GT(db.CrashPe(frag.pe), 0u);

  // Writes while the PE is down: the replicas left behind go stale.
  for (int i = 100; i < 110; ++i) {
    MustExecute(&db, StrFormat("INSERT INTO t VALUES (%d, 1)", i));
    model.insert(i);
  }
  MustExecute(&db, "DELETE FROM t WHERE id = 3");
  model.erase(3);

  // Restart the PE but crash it again mid-resync: step the simulation
  // just until the first resync has started, then kill the target again.
  ASSERT_TRUE(db.RecoverPe(frag.pe).ok());
  while (db.metrics().CounterTotal("replica.resyncs_started") == 0) {
    ASSERT_TRUE(db.simulator().Step()) << "drained before any resync began";
  }
  ASSERT_GT(db.CrashPe(frag.pe), 0u);
  db.Run();

  // The interrupted resync must not have published the half-filled
  // replica: reads still come from the survivors, still exact.
  EXPECT_EQ(SelectIds(&db), model);
  EXPECT_EQ(db.metrics().CounterTotal("query.unavailable"), 0u);

  // Second restart completes a fresh resync and converges for real.
  ASSERT_TRUE(db.RecoverPe(frag.pe).ok());
  db.Run();
  EXPECT_GT(db.metrics().CounterTotal("replica.resyncs_completed"), 0u);
  EXPECT_EQ(SelectIds(&db), model);

  MustExecute(&db, "CHECKPOINT");
  ExpectReplicasByteIdentical(&db);
}

TEST(RecoveryTest, DoubleFailureDegradesToTypedUnavailableNeverWrongAnswers) {
  PrismaDb db(ReplicatedMachine());
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  for (int i = 0; i < 20; ++i) {
    MustExecute(&db, StrFormat("INSERT INTO t VALUES (%d, %d)", i, i));
  }

  const auto table = db.gdh().dictionary().GetTable("t");
  ASSERT_TRUE(table.ok());
  const gdh::FragmentInfo frag = (*table)->fragments[0];

  // Lose BOTH replicas of fragment 0: replication degree 2 is exhausted.
  ASSERT_GT(db.CrashPe(frag.pe), 0u);
  ASSERT_GT(db.CrashPe(frag.backup_pe), 0u);

  // The read must degrade to a typed Unavailable naming the crashed PE and
  // fragment — never hang, never return a partial (wrong) answer.
  auto severed = db.Execute("SELECT id FROM t");
  ASSERT_FALSE(severed.ok());
  EXPECT_EQ(severed.status().code(), StatusCode::kUnavailable)
      << severed.status().ToString();
  const std::string message = severed.status().ToString();
  EXPECT_NE(message.find("fragment t#0"), std::string::npos) << message;
  EXPECT_NE(message.find("on PE"), std::string::npos) << message;

  // Degradation is accounted: the labeled counter named the same PE/table.
  EXPECT_GT(db.metrics().CounterTotal("query.unavailable"), 0u);
  EXPECT_NE(db.DumpMetrics().find("query.unavailable{"), std::string::npos);

  // Both PEs back: resync runs both ways and full service resumes.
  ASSERT_TRUE(db.RecoverPe(frag.pe).ok());
  db.Run();
  ASSERT_TRUE(db.RecoverPe(frag.backup_pe).ok());
  db.Run();
  EXPECT_EQ(SelectIds(&db).size(), 20u);

  MustExecute(&db, "CHECKPOINT");
  ExpectReplicasByteIdentical(&db);
}

TEST(RecoveryTest, SoakMetricsCountRecoveries) {
  PrismaDb db(SoakMachine());
  MustExecute(&db, StrFormat("CREATE TABLE t (id INT, v INT) FRAGMENTED BY "
                             "HASH(id) INTO %d FRAGMENTS",
                             kFragments));
  MustExecute(&db, "INSERT INTO t VALUES (1, 1), (2, 2), (3, 3)");
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(db.CrashFragment("t", 0).ok());
    ASSERT_TRUE(db.RecoverFragment("t", 0).ok());
    db.Run();
  }
  EXPECT_EQ(db.metrics().CounterTotal("ofm.recoveries"), 3u);
  EXPECT_EQ(SelectIds(&db).size(), 3u);
}

}  // namespace
}  // namespace prisma::core
