// Serving differential suite (DESIGN.md §15.4): the shared plan cache
// must be answer-invisible. Across 50 seeds x {1,3,7} fragments x both
// execution modes, every workload statement is executed cold (fresh
// epoch, cache miss) and again cached (hit) — the rendered answers must
// be byte-identical. A second test interleaves DDL, replica failover and
// exec-mode flips with cached traffic and asserts the invalidation
// contract: epoch bumps exactly on DDL/failover/resync, never on a mere
// mode flip (the mode lives in the key), and answers stay correct
// throughout.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/prisma_db.h"
#include "serve/workload.h"

namespace prisma {
namespace {

using core::MachineConfig;
using core::PrismaDb;
using core::QueryResult;
using serve::ArrivalEvent;
using serve::WorkloadGenerator;
using serve::WorkloadProfile;

constexpr int kSeeds = 50;
constexpr int kRows = 48;

/// Byte-stable rendering of an answer (everything the client sees except
/// the response time, which legitimately differs between cold and cached
/// executions — that difference is the cache's entire point).
std::string Render(const QueryResult& result) {
  std::string out;
  for (const auto& col : result.schema.columns()) out += col.name + "|";
  out += StrFormat("/%llu\n",
                   static_cast<unsigned long long>(result.affected_rows));
  for (const Tuple& t : result.tuples) out += t.ToString() + "\n";
  return out;
}

/// A seed's worth of read-only statements (dedup'd, first few).
std::vector<std::string> SeedStatements(uint64_t seed) {
  WorkloadProfile profile;
  profile.sessions = 4;
  profile.offered_qps = 2000;
  profile.duration_ns = sim::kNanosPerSecond / 20;
  // Reads only: answers are interleaving-independent.
  profile.mix = {0.6, 0, 0.25, 0.15};
  profile.key_domain = kRows;
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const ArrivalEvent& event : WorkloadGenerator(seed, profile).Generate()) {
    if (seen.insert(event.sql).second) out.push_back(event.sql);
    if (out.size() == 5) break;
  }
  return out;
}

TEST(ServingDiffTest, ColdVsCachedByteIdenticalAcrossSeedsFragmentsModes) {
  for (const int fragments : {1, 3, 7}) {
    for (const exec::ExecMode mode :
         {exec::ExecMode::kRow, exec::ExecMode::kVectorized}) {
      MachineConfig config;
      config.pes = 4;
      PrismaDb db(config);
      ASSERT_TRUE(WorkloadGenerator::SetupSchema(&db, kRows, fragments).ok());
      uint64_t cold_misses = 0;
      for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        // Fresh epoch: the first execution of each statement is cold.
        db.plan_cache().Invalidate("test");
        const uint64_t hits_before = db.plan_cache().hits();
        for (const std::string& sql : SeedStatements(seed)) {
          auto cold = db.Execute(sql, mode);
          ASSERT_TRUE(cold.ok())
              << sql << ": " << cold.status().ToString();
          auto cached = db.Execute(sql, mode);
          ASSERT_TRUE(cached.ok());
          EXPECT_EQ(Render(*cold), Render(*cached))
              << "cached answer differs (seed " << seed << ", fragments "
              << fragments << ", mode " << static_cast<int>(mode) << "): "
              << sql;
        }
        // Every repeat execution hit the cache.
        EXPECT_GT(db.plan_cache().hits(), hits_before);
        cold_misses = db.plan_cache().misses();
      }
      EXPECT_GT(cold_misses, 0u);
    }
  }
}

TEST(ServingDiffTest, DdlFailoverAndModeFlipsInvalidateCorrectly) {
  MachineConfig config;
  config.pes = 8;
  config.replicate_fragments = true;
  config.coordinator_pes = {0};
  config.rpc_timeout_ns = 50 * sim::kNanosPerMilli;
  config.rpc_backoff_cap_ns = 400 * sim::kNanosPerMilli;
  config.rpc_attempts = 4;
  PrismaDb db(config);
  ASSERT_TRUE(WorkloadGenerator::SetupSchema(&db, kRows, 3).ok());
  // Schema setup ends with DDL+inserts; note the epoch and warm the cache.
  const std::string group_by =
      "SELECT grp, COUNT(*) AS n, SUM(v) AS total FROM item "
      "GROUP BY grp ORDER BY grp";
  auto reference = db.Execute(group_by);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(db.plan_cache().size(), 0u);
  const uint64_t epoch0 = db.plan_cache().epoch();

  // --- DDL invalidates (a fragment-count change is a DDL too).
  ASSERT_TRUE(db.Execute("CREATE TABLE scratch (id INT) FRAGMENTED BY "
                         "HASH(id) INTO 5 FRAGMENTS")
                  .ok());
  EXPECT_EQ(db.plan_cache().epoch(), epoch0 + 1);
  EXPECT_EQ(db.plan_cache().size(), 0u);
  EXPECT_GT(db.metrics().CounterValue("query.plan_cache.invalidate",
                                      {{"reason", "ddl"}}),
            0u);

  // --- Exec-mode flip: no epoch bump, the mode is part of the key. The
  // same statement caches one entry per mode and neither answers change.
  auto row_cold = db.Execute(group_by, exec::ExecMode::kRow);
  auto vec_cold = db.Execute(group_by, exec::ExecMode::kVectorized);
  ASSERT_TRUE(row_cold.ok() && vec_cold.ok());
  EXPECT_EQ(Render(*reference), Render(*row_cold));
  EXPECT_EQ(Render(*reference), Render(*vec_cold));
  EXPECT_EQ(db.plan_cache().epoch(), epoch0 + 1);
  EXPECT_EQ(db.plan_cache().size(), 2u);
  const uint64_t hits_before = db.plan_cache().hits();
  auto row_hit = db.Execute(group_by, exec::ExecMode::kRow);
  auto vec_hit = db.Execute(group_by, exec::ExecMode::kVectorized);
  ASSERT_TRUE(row_hit.ok() && vec_hit.ok());
  EXPECT_EQ(db.plan_cache().hits(), hits_before + 2);
  EXPECT_EQ(Render(*reference), Render(*row_hit));
  EXPECT_EQ(Render(*reference), Render(*vec_hit));

  // --- Replica failover invalidates: when the GDH sheds a dead replica
  // from 2PC, placement changed and the epoch must move. (The read path
  // re-picks its replica per execution, so it is a write that detects the
  // crash.) The no-op UPDATE touches every fragment without changing any
  // value, so the reference answer survives the crash window.
  const auto table = db.gdh().dictionary().GetTable("item");
  ASSERT_TRUE(table.ok());
  const gdh::FragmentInfo frag = (*table)->fragments[0];
  ASSERT_TRUE(frag.replicated);
  ASSERT_GT(db.CrashPe(frag.pe), 0u);
  const uint64_t epoch_before_crash = db.plan_cache().epoch();
  ASSERT_TRUE(db.Execute("UPDATE item SET v = v + 0").ok());
  auto after_crash = db.Execute(group_by);
  ASSERT_TRUE(after_crash.ok());
  EXPECT_EQ(Render(*reference), Render(*after_crash));
  EXPECT_GT(db.plan_cache().epoch(), epoch_before_crash);
  EXPECT_GT(db.metrics().CounterValue("query.plan_cache.invalidate",
                                      {{"reason", "failover"}}),
            0u);

  // --- Resync cutover invalidates: the restarted replica re-enters
  // service, changing routing again.
  ASSERT_TRUE(db.RecoverPe(frag.pe).ok());
  db.Run();
  EXPECT_GT(db.metrics().CounterTotal("replica.resyncs_completed"), 0u);
  EXPECT_GT(db.metrics().CounterValue("query.plan_cache.invalidate",
                                      {{"reason", "resync"}}),
            0u);
  auto after_resync = db.Execute(group_by);
  ASSERT_TRUE(after_resync.ok());
  EXPECT_EQ(Render(*reference), Render(*after_resync));
}

}  // namespace
}  // namespace prisma
