#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace prisma::sim {
namespace {

TEST(SimulatorTest, StartsAtZeroWithNoEvents) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, TiesBreakBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(100, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(5, [&] {
    times.push_back(sim.now());
    sim.Schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{5, 10}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(20, [&] { ++fired; });
  sim.Schedule(30, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(SimulatorTest, RunWithEventCap) {
  Simulator sim;
  int fired = 0;
  // A self-perpetuating event chain; the cap must stop it.
  std::function<void()> tick = [&] {
    ++fired;
    sim.Schedule(1, tick);
  };
  sim.Schedule(1, tick);
  EXPECT_EQ(sim.Run(100), 100u);
  EXPECT_EQ(fired, 100);
}

TEST(SimulatorTest, CancelledEventDoesNotRun) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(20, [&] { ++fired; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20);
}

TEST(SimulatorTest, CancelledTailDoesNotAdvanceClock) {
  // A late timer that gets cancelled must not drag the clock (the whole
  // point of cancellable timeouts: makespans stay meaningful).
  Simulator sim;
  const EventId timeout = sim.Schedule(1'000'000, [] {});
  sim.Schedule(5, [&] { sim.Cancel(timeout); });
  sim.Run();
  EXPECT_EQ(sim.now(), 5);
}

TEST(SimulatorTest, CancelAfterExecutionIsHarmless) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.Schedule(1, [&] { ++fired; });
  sim.Run();
  sim.Cancel(id);  // Already ran; must not affect future events.
  sim.Schedule(1, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilSkipsCancelledFront) {
  Simulator sim;
  int fired = 0;
  const EventId early = sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(50, [&] { ++fired; });
  sim.Schedule(99999, [&] { ++fired; });
  sim.Cancel(early);
  EXPECT_EQ(sim.RunUntil(60), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 60);
}

TEST(SimulatorTest, TiesBreakBySequenceAcrossInterleavedSchedules) {
  // Same-time events fire in scheduling order even when they are created
  // from inside other events — the (time, seq) key, not heap luck.
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(10, [&] {
    order.push_back(0);
    sim.Schedule(10, [&] { order.push_back(3); });  // t=20, seq later.
  });
  sim.Schedule(20, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimulatorTest, EventAccountingTracksSchedulesAndCancels) {
  Simulator sim;
  EXPECT_EQ(sim.events_scheduled(), 0u);
  const EventId a = sim.Schedule(10, [] {});
  sim.Schedule(20, [] {});
  EXPECT_EQ(sim.events_scheduled(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.cancel_requests(), 1u);
  EXPECT_EQ(sim.tombstones_pending(), 1u);
  EXPECT_EQ(sim.events_cancelled(), 0u);  // Tombstone not yet consumed.
  sim.Run();
  EXPECT_EQ(sim.events_cancelled(), 1u);
  EXPECT_EQ(sim.tombstones_pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulatorTest, CancelOfUnissuedIdIsRejected) {
  // Ids the simulator never handed out must not poison future events.
  Simulator sim;
  sim.Cancel(9999);
  int fired = 0;
  for (int i = 0; i < 3; ++i) sim.Schedule(i + 1, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.events_cancelled(), 0u);
}

TEST(SimulatorTest, DoubleCancelConsumesOneTombstone) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.Schedule(10, [&] { ++fired; });
  sim.Cancel(id);
  sim.Cancel(id);  // Idempotent: the set holds one entry.
  EXPECT_EQ(sim.cancel_requests(), 2u);
  EXPECT_EQ(sim.tombstones_pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.events_cancelled(), 1u);
  EXPECT_EQ(sim.tombstones_pending(), 0u);
}

TEST(SimulatorTest, IdenticalRunsProduceIdenticalSchedules) {
  // The determinism bedrock: two simulators fed the same event program
  // agree on every firing time.
  auto run = [] {
    Simulator sim;
    std::vector<SimTime> times;
    for (int i = 0; i < 20; ++i) {
      sim.Schedule((i * 7) % 13, [&times, &sim] {
        times.push_back(sim.now());
        sim.Schedule(3, [&times, &sim] { times.push_back(sim.now()); });
      });
    }
    sim.Run();
    return times;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.Schedule(7, [&] {
    sim.Schedule(0, [&] { seen = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 7);
}

}  // namespace
}  // namespace prisma::sim
