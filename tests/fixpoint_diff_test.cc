// Differential harness for the distributed semi-naive fixpoint
// (DESIGN.md §11): random graphs run both through the single-node
// exec::TransitiveClosure() oracle and through the full machine
// (PRISMAlog front end -> fixpoint coordinator -> partitioned rounds over
// exchange channels), and the two answers must be byte-identical — for
// every seed, fragment count and join strategy.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/prisma_db.h"
#include "exec/transitive_closure.h"
#include "soak_repro.h"

namespace prisma::core {
namespace {

constexpr const char* kTcProgram =
    "p(X, Y) :- edge(X, Y).\n"
    "p(X, Z) :- edge(X, Y), p(Y, Z).\n"
    "? p(X, Y).";

/// One edge; null endpoints are modelled with sentinel < 0.
struct Edge {
  int from;
  int to;
};
constexpr int kNullEndpoint = -1;

/// Seeded generator covering the shapes the closure operator must get
/// right: chains, cycles, cliques, disconnected components, self-loops,
/// and NULL endpoints (plus duplicate edges from overlapping motifs).
std::vector<Edge> RandomGraph(uint64_t seed) {
  Rng rng(seed * 2654435761u + 1);
  std::vector<Edge> edges;
  const int nodes = static_cast<int>(rng.UniformInt(2, 12));
  auto node = [&]() { return static_cast<int>(rng.Uniform(nodes)); };
  const int motifs = static_cast<int>(rng.UniformInt(1, 4));
  for (int m = 0; m < motifs; ++m) {
    switch (rng.Uniform(5)) {
      case 0: {  // Chain (a disconnected component when nodes differ).
        const int len = static_cast<int>(rng.UniformInt(1, 5));
        int at = node();
        for (int i = 0; i < len; ++i) {
          const int next = node();
          edges.push_back({at, next});
          at = next;
        }
        break;
      }
      case 1: {  // Cycle: the closure saturates within it.
        const int len = static_cast<int>(rng.UniformInt(2, 5));
        std::vector<int> ring;
        for (int i = 0; i < len; ++i) ring.push_back(node());
        for (int i = 0; i < len; ++i) {
          edges.push_back({ring[i], ring[(i + 1) % len]});
        }
        break;
      }
      case 2: {  // Small clique (dense duplicates across motifs).
        const int size = static_cast<int>(rng.UniformInt(2, 4));
        std::vector<int> members;
        for (int i = 0; i < size; ++i) members.push_back(node());
        for (const int a : members) {
          for (const int b : members) {
            if (a != b) edges.push_back({a, b});
          }
        }
        break;
      }
      case 3:  // Self-loop.
        edges.push_back({node(), node()});
        edges.back().to = edges.back().from;
        break;
      default: {  // Random sprinkle, sometimes with NULL endpoints.
        const int count = static_cast<int>(rng.UniformInt(1, 4));
        for (int i = 0; i < count; ++i) {
          Edge e{node(), node()};
          if (rng.Uniform(6) == 0) e.from = kNullEndpoint;
          if (rng.Uniform(6) == 0) e.to = kNullEndpoint;
          edges.push_back(e);
        }
        break;
      }
    }
  }
  return edges;
}

std::vector<Tuple> AsTuples(const std::vector<Edge>& edges) {
  std::vector<Tuple> tuples;
  tuples.reserve(edges.size());
  for (const Edge& e : edges) {
    tuples.push_back(
        Tuple({e.from == kNullEndpoint ? Value::Null() : Value::Int(e.from),
               e.to == kNullEndpoint ? Value::Null() : Value::Int(e.to)}));
  }
  return tuples;
}

std::string InsertSql(const std::vector<Edge>& edges) {
  std::string sql = "INSERT INTO edge VALUES ";
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += '(';
    sql += edges[i].from == kNullEndpoint ? std::string("NULL")
                                          : std::to_string(edges[i].from);
    sql += ", ";
    sql += edges[i].to == kNullEndpoint ? std::string("NULL")
                                        : std::to_string(edges[i].to);
    sql += ')';
  }
  return sql;
}

struct DistributedRun {
  QueryResult result;
  int64_t rounds = 0;
  int64_t delta_tuples = 0;
  int64_t pairs_derived = 0;
};

DistributedRun RunDistributed(const std::vector<Edge>& edges, int fragments,
                              exec::TcAlgorithm algorithm,
                              net::FaultPlan faults = {}) {
  MachineConfig config;
  config.pes = 8;
  config.fixpoint_algorithm = algorithm;
  config.fault_plan = faults;
  PrismaDb db(config);
  auto created = db.Execute(
      StrFormat("CREATE TABLE edge (src INT, dst INT) "
                "FRAGMENTED BY HASH(src) INTO %d FRAGMENTS",
                fragments));
  PRISMA_CHECK(created.ok()) << created.status().ToString();
  if (!edges.empty()) {
    auto inserted = db.Execute(InsertSql(edges));
    PRISMA_CHECK(inserted.ok()) << inserted.status().ToString();
  }
  auto answered = db.ExecutePrismalog(kTcProgram);
  PRISMA_CHECK(answered.ok()) << answered.status().ToString();
  DistributedRun run;
  run.result = std::move(answered).value();
  run.rounds = db.metrics().GaugeValue("fixpoint.last_rounds");
  run.delta_tuples = db.metrics().GaugeValue("fixpoint.last_delta_tuples");
  run.pairs_derived = db.metrics().GaugeValue("fixpoint.last_pairs_derived");
  return run;
}

std::string Render(const std::vector<Tuple>& tuples) {
  std::string out;
  for (const Tuple& t : tuples) {
    out += t.ToString();
    out += '\n';
  }
  return out;
}

/// Core differential check: distributed answer and round/stat figures
/// must reproduce the single-node operator exactly.
void CheckSeed(uint64_t seed, int fragments, exec::TcAlgorithm algorithm) {
  SCOPED_TRACE(StrFormat("seed=%llu fragments=%d algorithm=%s",
                         static_cast<unsigned long long>(seed), fragments,
                         exec::TcAlgorithmName(algorithm)));
  const std::vector<Edge> edges = RandomGraph(seed);
  exec::TcStats oracle_stats;
  auto oracle =
      exec::TransitiveClosure(AsTuples(edges), algorithm, &oracle_stats);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  const DistributedRun run = RunDistributed(edges, fragments, algorithm);
  // Byte-identical answers, including order (both sides are sorted by
  // Tuple::Compare after duplicate elimination).
  ASSERT_EQ(Render(run.result.tuples), Render(*oracle));
  EXPECT_EQ(run.result.schema.num_columns(), 2u);
  // The aggregated per-round figures match the single-node run: total
  // absorbed delta tuples = |closure|, join products identical, and — on
  // non-empty inputs — the distributed round count equals the single-node
  // iteration count for every strategy. (On an all-NULL input the
  // distributed fixpoint does 0 rounds for every strategy while the
  // single-node naive/smart loops run one no-growth pass; only seminaive
  // agrees there.)
  EXPECT_EQ(static_cast<uint64_t>(run.delta_tuples), oracle_stats.result_size);
  EXPECT_EQ(static_cast<uint64_t>(run.pairs_derived),
            oracle_stats.pairs_derived);
  if (oracle_stats.result_size > 0) {
    EXPECT_EQ(static_cast<uint64_t>(run.rounds), oracle_stats.iterations);
  } else if (algorithm == exec::TcAlgorithm::kSeminaive) {
    EXPECT_EQ(run.rounds, 0);
    EXPECT_EQ(oracle_stats.iterations, 0u);
  }
}

constexpr int kFragmentCounts[] = {1, 3, 7};
constexpr exec::TcAlgorithm kAlgorithms[] = {exec::TcAlgorithm::kNaive,
                                             exec::TcAlgorithm::kSeminaive,
                                             exec::TcAlgorithm::kSmart};

TEST(FixpointDiffTest, SeminaiveMatchesOracleAcrossSeeds) {
  for (const uint64_t seed : SoakSeeds(1, 50)) {
    PRISMA_SEED_REPRO("FixpointDiffTest.SeminaiveMatchesOracleAcrossSeeds", seed);
    for (const int fragments : kFragmentCounts) {
      CheckSeed(seed, fragments, exec::TcAlgorithm::kSeminaive);
    }
  }
}

TEST(FixpointDiffTest, NaiveMatchesOracleAcrossSeeds) {
  for (const uint64_t seed : SoakSeeds(1, 50)) {
    PRISMA_SEED_REPRO("FixpointDiffTest.NaiveMatchesOracleAcrossSeeds", seed);
    for (const int fragments : kFragmentCounts) {
      CheckSeed(seed, fragments, exec::TcAlgorithm::kNaive);
    }
  }
}

TEST(FixpointDiffTest, SmartMatchesOracleAcrossSeeds) {
  for (const uint64_t seed : SoakSeeds(1, 50)) {
    PRISMA_SEED_REPRO("FixpointDiffTest.SmartMatchesOracleAcrossSeeds", seed);
    for (const int fragments : kFragmentCounts) {
      CheckSeed(seed, fragments, exec::TcAlgorithm::kSmart);
    }
  }
}

// ------------------------------------------------- Termination edge cases

TEST(FixpointTerminationTest, EmptyEdgeRelationStopsAfterSeedRound) {
  for (const exec::TcAlgorithm algorithm : kAlgorithms) {
    const DistributedRun run = RunDistributed({}, 3, algorithm);
    EXPECT_TRUE(run.result.tuples.empty());
    // Seed round absorbs nothing anywhere -> harvest immediately.
    EXPECT_EQ(run.rounds, 0);
    EXPECT_EQ(run.delta_tuples, 0);
    EXPECT_EQ(run.pairs_derived, 0);
  }
}

TEST(FixpointTerminationTest, SingleFragmentStillRunsTheBarrier) {
  // One partition: the all-to-all degenerates to self-sends, but the
  // vote/round protocol is identical. Chain 0->1->2: two rounds.
  const std::vector<Edge> chain = {{0, 1}, {1, 2}};
  for (const exec::TcAlgorithm algorithm : kAlgorithms) {
    const DistributedRun run = RunDistributed(chain, 1, algorithm);
    EXPECT_EQ(run.result.tuples.size(), 3u);
    EXPECT_EQ(run.rounds, 2);
  }
}

TEST(FixpointTerminationTest, DeltaEmptyOnRoundOne) {
  // A single edge derives nothing in round 1: exactly one join round.
  const std::vector<Edge> single = {{0, 1}};
  for (const exec::TcAlgorithm algorithm : kAlgorithms) {
    const DistributedRun run = RunDistributed(single, 3, algorithm);
    EXPECT_EQ(run.result.tuples.size(), 1u);
    EXPECT_EQ(run.rounds, 1);
  }
}

TEST(FixpointTerminationTest, DuplicatedVotesDoNotSkewTheBarrier) {
  // A duplicating interconnect retransmits votes and round directives;
  // the barrier must admit each (round, pe) vote once, so the round
  // count and the aggregated stats stay exact.
  net::FaultPlan faults;
  faults.seed = 77;
  faults.link.duplicate_probability = 0.35;
  const std::vector<Edge> chain = {{0, 1}, {1, 2}, {2, 3}};
  exec::TcStats oracle_stats;
  auto oracle = exec::TransitiveClosure(
      AsTuples(chain), exec::TcAlgorithm::kSeminaive, &oracle_stats);
  ASSERT_TRUE(oracle.ok());
  const DistributedRun run =
      RunDistributed(chain, 3, exec::TcAlgorithm::kSeminaive, faults);
  EXPECT_EQ(Render(run.result.tuples), Render(*oracle));
  EXPECT_EQ(static_cast<uint64_t>(run.rounds), oracle_stats.iterations);
  EXPECT_EQ(static_cast<uint64_t>(run.delta_tuples),
            oracle_stats.result_size);
  EXPECT_EQ(static_cast<uint64_t>(run.pairs_derived),
            oracle_stats.pairs_derived);
}

}  // namespace
}  // namespace prisma::core
