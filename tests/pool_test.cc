#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/topology.h"
#include "pool/runtime.h"
#include "sim/simulator.h"

namespace prisma::pool {
namespace {

/// Test fixture wiring a simulator + 2x2 mesh network + runtime.
class PoolTest : public ::testing::Test {
 protected:
  PoolTest()
      : network_(&sim_, net::Topology::Mesh(2, 2)), runtime_(&sim_, &network_) {}

  sim::Simulator sim_;
  net::Network network_;
  Runtime runtime_;
};

/// Records every mail it receives.
class Recorder : public Process {
 public:
  void OnMail(const Mail& mail) override {
    kinds.push_back(mail.kind);
    senders.push_back(mail.from);
    times.push_back(runtime()->simulator()->now());
  }
  std::vector<std::string> kinds;
  std::vector<ProcessId> senders;
  std::vector<sim::SimTime> times;
};

/// Sends one greeting to a peer on start.
class Greeter : public Process {
 public:
  explicit Greeter(ProcessId peer) : peer_(peer) {}
  void OnStart() override { SendMail(peer_, "hello", std::string("hi"), 512); }
  void OnMail(const Mail&) override {}

 private:
  ProcessId peer_;
};

TEST_F(PoolTest, SpawnRunsOnStart) {
  class Starter : public Process {
   public:
    explicit Starter(bool* flag) : flag_(flag) {}
    void OnStart() override { *flag_ = true; }
    void OnMail(const Mail&) override {}
   private:
    bool* flag_;
  };
  bool started = false;
  runtime_.Spawn(0, std::make_unique<Starter>(&started));
  sim_.Run();
  EXPECT_TRUE(started);
  EXPECT_EQ(runtime_.num_processes(), 1u);
}

TEST_F(PoolTest, CrossPeMailIsDeliveredViaNetwork) {
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  const ProcessId rid = runtime_.Spawn(3, std::move(recorder));
  runtime_.Spawn(0, std::make_unique<Greeter>(rid));
  sim_.Run();
  ASSERT_EQ(rec->kinds.size(), 1u);
  EXPECT_EQ(rec->kinds[0], "hello");
  // PE 0 -> PE 3 on a 2x2 mesh is 2 hops; bits crossed links.
  EXPECT_GT(network_.stats().link_bits, 0);
  EXPECT_GT(rec->times[0], 0);
}

TEST_F(PoolTest, SamePeMailSkipsLinks) {
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  const ProcessId rid = runtime_.Spawn(1, std::move(recorder));
  runtime_.Spawn(1, std::make_unique<Greeter>(rid));
  sim_.Run();
  ASSERT_EQ(rec->kinds.size(), 1u);
  EXPECT_EQ(network_.stats().link_bits, 0);
}

TEST_F(PoolTest, MailToDeadProcessIsDropped) {
  auto recorder = std::make_unique<Recorder>();
  const ProcessId rid = runtime_.Spawn(3, std::move(recorder));
  runtime_.Kill(rid);
  runtime_.Spawn(0, std::make_unique<Greeter>(rid));
  sim_.Run();
  EXPECT_GE(runtime_.dropped_mail(), 1u);
}

TEST_F(PoolTest, ChargedCpuSerializesHandlersOnOnePe) {
  /// Each mail burns 1ms of CPU; deliveries to the same PE must be spaced
  /// at least 1ms apart even though they arrive nearly simultaneously.
  class Burner : public Process {
   public:
    void OnMail(const Mail&) override {
      ChargeCpu(1 * sim::kNanosPerMilli);
      handled_at.push_back(runtime()->simulator()->now());
    }
    std::vector<sim::SimTime> handled_at;
  };
  auto burner = std::make_unique<Burner>();
  Burner* b = burner.get();
  const ProcessId bid = runtime_.Spawn(3, std::move(burner));

  class Blaster : public Process {
   public:
    explicit Blaster(ProcessId to) : to_(to) {}
    void OnStart() override {
      for (int i = 0; i < 3; ++i) SendMail(to_, "burn", {}, 256);
    }
    void OnMail(const Mail&) override {}
   private:
    ProcessId to_;
  };
  runtime_.Spawn(0, std::make_unique<Blaster>(bid));
  sim_.Run();
  ASSERT_EQ(b->handled_at.size(), 3u);
  EXPECT_GE(b->handled_at[1] - b->handled_at[0], 1 * sim::kNanosPerMilli);
  EXPECT_GE(b->handled_at[2] - b->handled_at[1], 1 * sim::kNanosPerMilli);
  // The PE accumulated at least the 3ms of charged work.
  EXPECT_GE(runtime_.pe_busy_ns(3), 3 * sim::kNanosPerMilli);
}

TEST_F(PoolTest, DeferredSendsReleaseAfterChargedWork) {
  /// A handler that charges CPU before sending: the reply must not arrive
  /// at the peer before the charged work is complete.
  class Worker : public Process {
   public:
    void OnMail(const Mail& mail) override {
      ChargeCpu(5 * sim::kNanosPerMilli);
      SendMail(mail.from, "done", {}, 256);
    }
  };
  class Caller : public Process {
   public:
    explicit Caller(ProcessId worker) : worker_(worker) {}
    void OnStart() override {
      sent_at = runtime()->simulator()->now();
      SendMail(worker_, "work", {}, 256);
    }
    void OnMail(const Mail& mail) override {
      if (mail.kind == "done") done_at = runtime()->simulator()->now();
    }
    sim::SimTime sent_at = -1;
    sim::SimTime done_at = -1;
   private:
    ProcessId worker_;
  };
  auto worker = std::make_unique<Worker>();
  const ProcessId wid = runtime_.Spawn(3, std::move(worker));
  auto caller = std::make_unique<Caller>(wid);
  Caller* c = caller.get();
  runtime_.Spawn(0, std::move(caller));
  sim_.Run();
  ASSERT_GE(c->done_at, 0);
  EXPECT_GE(c->done_at - c->sent_at, 5 * sim::kNanosPerMilli);
}

TEST_F(PoolTest, SendSelfAfterActsAsTimer) {
  class Ticker : public Process {
   public:
    void OnStart() override { SendSelfAfter(2 * sim::kNanosPerMilli, "tick"); }
    void OnMail(const Mail& mail) override {
      if (mail.kind == "tick") {
        ticked_at = runtime()->simulator()->now();
      }
    }
    sim::SimTime ticked_at = -1;
  };
  auto t = std::make_unique<Ticker>();
  Ticker* raw = t.get();
  runtime_.Spawn(2, std::move(t));
  sim_.Run();
  EXPECT_GE(raw->ticked_at, 2 * sim::kNanosPerMilli);
  // Timers do not touch the network.
  EXPECT_EQ(network_.stats().link_bits, 0);
}

TEST_F(PoolTest, ExplicitPlacementIsHonored) {
  const ProcessId a = runtime_.Spawn(0, std::make_unique<Recorder>());
  const ProcessId b = runtime_.Spawn(3, std::make_unique<Recorder>());
  EXPECT_EQ(runtime_.PeOf(a), 0);
  EXPECT_EQ(runtime_.PeOf(b), 3);
}

TEST_F(PoolTest, BiggerMailTakesLongerOnTheWire) {
  class SizedGreeter : public Process {
   public:
    SizedGreeter(ProcessId peer, int64_t bits) : peer_(peer), bits_(bits) {}
    void OnStart() override { SendMail(peer_, "m", {}, bits_); }
    void OnMail(const Mail&) override {}
   private:
    ProcessId peer_;
    int64_t bits_;
  };
  auto rec1 = std::make_unique<Recorder>();
  Recorder* r1 = rec1.get();
  const ProcessId p1 = runtime_.Spawn(3, std::move(rec1));
  runtime_.Spawn(0, std::make_unique<SizedGreeter>(p1, 256));
  sim_.Run();
  const sim::SimTime small_arrival = r1->times.at(0);

  sim::Simulator sim2;
  net::Network net2(&sim2, net::Topology::Mesh(2, 2));
  Runtime rt2(&sim2, &net2);
  auto rec2 = std::make_unique<Recorder>();
  Recorder* r2 = rec2.get();
  const ProcessId p2 = rt2.Spawn(3, std::move(rec2));
  rt2.Spawn(0, std::make_unique<SizedGreeter>(p2, 256 * 64));
  sim2.Run();
  EXPECT_GT(r2->times.at(0), small_arrival);
}

TEST_F(PoolTest, CrashPeKillsEveryProcessOnThatPeOnly) {
  auto a = std::make_unique<Recorder>();
  Recorder* survivor = a.get();
  const ProcessId on_pe2 = runtime_.Spawn(2, std::move(a));
  const ProcessId victim1 = runtime_.Spawn(1, std::make_unique<Recorder>());
  const ProcessId victim2 = runtime_.Spawn(1, std::make_unique<Recorder>());
  sim_.Run();

  EXPECT_EQ(runtime_.CrashPe(1), 2u);
  EXPECT_FALSE(runtime_.IsAlive(victim1));
  EXPECT_FALSE(runtime_.IsAlive(victim2));
  EXPECT_TRUE(runtime_.IsAlive(on_pe2));
  EXPECT_EQ(runtime_.pe_crashes(), 1u);

  // Mail addressed to the wreckage is dropped, not delivered; the
  // survivor still receives.
  runtime_.Spawn(0, std::make_unique<Greeter>(victim1));
  runtime_.Spawn(0, std::make_unique<Greeter>(on_pe2));
  sim_.Run();
  EXPECT_EQ(survivor->kinds.size(), 1u);
}

// ------------------------------------------------- Ownership checker

/// Captures ownership violations instead of aborting, restoring the
/// previous handler on destruction.
class ViolationCapture {
 public:
  ViolationCapture() {
    prev_ = internal_owned::SetOwnershipViolationHandler(&Record);
    messages().clear();
  }
  ~ViolationCapture() { internal_owned::SetOwnershipViolationHandler(prev_); }

  static std::vector<std::string>& messages() {
    static std::vector<std::string> m;
    return m;
  }

 private:
  static void Record(const std::string& message) {
    messages().push_back(message);
  }
  internal_owned::ViolationHandler prev_;
};

/// Holds an Owned counter and bumps it from its own handlers.
class StatefulProcess : public Process {
 public:
  std::string debug_name() const override { return "stateful"; }
  void OnStart() override { ++*counter_; }
  void OnMail(const Mail&) override { ++*counter_; }
  int value() const { return *counter_; }  // Control-plane read.
  Owned<int>& counter() { return counter_; }

 private:
  Owned<int> counter_;
};

/// Reaches into another process's Owned state from its own handler — the
/// POOL-X shared-memory violation the checker exists to catch.
class Intruder : public Process {
 public:
  explicit Intruder(StatefulProcess* victim) : victim_(victim) {}
  std::string debug_name() const override { return "intruder"; }
  void OnStart() override { touched_value_ = *victim_->counter(); }
  void OnMail(const Mail&) override {}

 private:
  StatefulProcess* victim_;
  int touched_value_ = 0;
};

TEST_F(PoolTest, OwnedStateAllowsOwnerAndControlPlane) {
  ViolationCapture capture;
  auto process = std::make_unique<StatefulProcess>();
  StatefulProcess* raw = process.get();
  const ProcessId pid = runtime_.Spawn(0, std::move(process));
  runtime_.Spawn(1, std::make_unique<Greeter>(pid));
  sim_.Run();
  // OnStart + one mail, each from the owner's handler; the read below is
  // control-plane (no handler running) — all allowed.
  EXPECT_EQ(raw->value(), 2);
  EXPECT_TRUE(ViolationCapture::messages().empty());
  EXPECT_EQ(raw->counter().owner(), pid);
}

TEST_F(PoolTest, CrossProcessAccessIsCaught) {
  ViolationCapture capture;
  auto victim = std::make_unique<StatefulProcess>();
  StatefulProcess* raw = victim.get();
  runtime_.Spawn(0, std::move(victim));
  sim_.Run();  // Victim's OnStart binds the counter to it.
  runtime_.Spawn(1, std::make_unique<Intruder>(raw));
  sim_.Run();  // Intruder's OnStart reads the victim's counter.
  ASSERT_EQ(ViolationCapture::messages().size(), 1u);
  const std::string& message = ViolationCapture::messages()[0];
  // The diagnostic names both processes.
  EXPECT_NE(message.find("stateful"), std::string::npos) << message;
  EXPECT_NE(message.find("intruder"), std::string::npos) << message;
}

TEST_F(PoolTest, OwnedBindsToFirstHandlerThatTouchesIt) {
  ViolationCapture capture;
  auto victim = std::make_unique<StatefulProcess>();
  StatefulProcess* raw = victim.get();
  // The intruder's OnStart runs before any victim handler ever touched
  // the counter, so the intruder (wrongly but silently) becomes the
  // owner — and the victim's own OnStart then trips the check. Spawn
  // order decides because handlers run in spawn order at t=0.
  runtime_.Spawn(1, std::make_unique<Intruder>(raw));
  runtime_.Spawn(0, std::move(victim));
  sim_.Run();
  EXPECT_EQ(ViolationCapture::messages().size(), 1u);
}

}  // namespace
}  // namespace prisma::pool
