#include <gtest/gtest.h>

#include <memory>

#include "algebra/expr.h"
#include "algebra/plan.h"
#include "exec/ofm.h"
#include "storage/stable_store.h"

namespace prisma::exec {
namespace {

using algebra::BinaryOp;
using algebra::Col;
using algebra::Expr;
using algebra::Lit;
using algebra::ScanPlan;
using algebra::SelectPlan;

Schema AcctSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"owner", DataType::kString},
                 {"balance", DataType::kInt64}});
}

Tuple Acct(int64_t id, const std::string& owner, int64_t balance) {
  return Tuple({Value::Int(id), Value::String(owner), Value::Int(balance)});
}

class OfmTest : public ::testing::Test {
 protected:
  OfmTest() { Reset(OfmType::kFull); }

  void Reset(OfmType type) {
    Ofm::Options opts;
    opts.type = type;
    opts.stable = &stable_;
    ofm_ = std::make_unique<Ofm>("acct#0", AcctSchema(), opts);
  }

  storage::StableStore stable_;
  std::unique_ptr<Ofm> ofm_;
};

TEST_F(OfmTest, AutoCommitInsertIsDurable) {
  ASSERT_TRUE(ofm_->Insert(kAutoCommit, Acct(1, "ann", 100)).ok());
  ASSERT_TRUE(ofm_->Insert(kAutoCommit, Acct(2, "bob", 200)).ok());
  EXPECT_EQ(ofm_->num_tuples(), 2u);
  EXPECT_EQ(ofm_->wal_records(), 2u);

  // Crash: rebuild a fresh OFM over the same stable store and recover.
  Reset(OfmType::kFull);
  EXPECT_EQ(ofm_->num_tuples(), 0u);
  ASSERT_TRUE(ofm_->Recover().ok());
  EXPECT_EQ(ofm_->num_tuples(), 2u);
}

TEST_F(OfmTest, TransactionalCommitSurvivesCrash) {
  const TxnId txn = 42;
  ASSERT_TRUE(ofm_->Insert(txn, Acct(1, "ann", 100)).ok());
  ASSERT_TRUE(ofm_->Insert(txn, Acct(2, "bob", 200)).ok());
  ASSERT_TRUE(ofm_->Prepare(txn).ok());
  ASSERT_TRUE(ofm_->Commit(txn).ok());

  Reset(OfmType::kFull);
  ASSERT_TRUE(ofm_->Recover().ok());
  EXPECT_EQ(ofm_->num_tuples(), 2u);
}

TEST_F(OfmTest, PreparedButUncommittedRollsBackOnRecovery) {
  ASSERT_TRUE(ofm_->Insert(kAutoCommit, Acct(1, "ann", 100)).ok());
  const TxnId txn = 7;
  ASSERT_TRUE(ofm_->Insert(txn, Acct(2, "bob", 200)).ok());
  ASSERT_TRUE(ofm_->Prepare(txn).ok());
  // Crash before the coordinator's commit arrives: presumed abort.
  Reset(OfmType::kFull);
  ASSERT_TRUE(ofm_->Recover().ok());
  EXPECT_EQ(ofm_->num_tuples(), 1u);
}

TEST_F(OfmTest, InDoubtTransactionAwaitsCoordinatorDecision) {
  const TxnId txn = 8;
  ASSERT_TRUE(ofm_->Insert(txn, Acct(1, "ann", 100)).ok());
  ASSERT_TRUE(ofm_->Prepare(txn).ok());

  // Crash after prepare: the transaction is in doubt, its effects held.
  Reset(OfmType::kFull);
  ASSERT_TRUE(ofm_->Recover().ok());
  EXPECT_EQ(ofm_->num_tuples(), 0u);
  ASSERT_EQ(ofm_->recovered_undecided().size(), 1u);
  EXPECT_EQ(ofm_->recovered_undecided()[0], txn);

  // Coordinator says commit: effects apply and become durable.
  ASSERT_TRUE(ofm_->ResolveRecovered(txn, /*commit=*/true).ok());
  EXPECT_EQ(ofm_->num_tuples(), 1u);
  EXPECT_TRUE(ofm_->recovered_undecided().empty());
  Reset(OfmType::kFull);
  ASSERT_TRUE(ofm_->Recover().ok());
  EXPECT_EQ(ofm_->num_tuples(), 1u);
  EXPECT_TRUE(ofm_->recovered_undecided().empty());

  // Unknown transactions cannot be resolved.
  EXPECT_EQ(ofm_->ResolveRecovered(999, true).code(), StatusCode::kNotFound);
}

TEST_F(OfmTest, InDoubtTransactionResolvedAbortLeavesNoTrace) {
  const TxnId txn = 12;
  ASSERT_TRUE(ofm_->Insert(kAutoCommit, Acct(1, "base", 1)).ok());
  ASSERT_TRUE(ofm_->Insert(txn, Acct(2, "doubt", 2)).ok());
  ASSERT_TRUE(ofm_->Prepare(txn).ok());
  Reset(OfmType::kFull);
  ASSERT_TRUE(ofm_->Recover().ok());
  ASSERT_EQ(ofm_->recovered_undecided().size(), 1u);
  ASSERT_TRUE(ofm_->ResolveRecovered(txn, /*commit=*/false).ok());
  EXPECT_EQ(ofm_->num_tuples(), 1u);
  Reset(OfmType::kFull);
  ASSERT_TRUE(ofm_->Recover().ok());
  EXPECT_EQ(ofm_->num_tuples(), 1u);
  EXPECT_TRUE(ofm_->recovered_undecided().empty());
}

TEST_F(OfmTest, AbortUndoesAllOperationKinds) {
  const auto r1 = ofm_->Insert(kAutoCommit, Acct(1, "ann", 100));
  const auto r2 = ofm_->Insert(kAutoCommit, Acct(2, "bob", 200));
  ASSERT_TRUE(r1.ok() && r2.ok());

  const TxnId txn = 9;
  ASSERT_TRUE(ofm_->Insert(txn, Acct(3, "carol", 300)).ok());
  ASSERT_TRUE(ofm_->Delete(txn, *r1).ok());
  ASSERT_TRUE(ofm_->Update(txn, *r2, Acct(2, "bob", 999)).ok());
  EXPECT_EQ(ofm_->num_tuples(), 2u);
  EXPECT_TRUE(ofm_->HasTransaction(txn));

  ASSERT_TRUE(ofm_->Abort(txn).ok());
  EXPECT_FALSE(ofm_->HasTransaction(txn));
  EXPECT_EQ(ofm_->num_tuples(), 2u);
  EXPECT_EQ(ofm_->relation().Get(*r1)->at(1), Value::String("ann"));
  EXPECT_EQ(ofm_->relation().Get(*r2)->at(2), Value::Int(200));
}

TEST_F(OfmTest, AbortedTransactionLeavesNoDurableTrace) {
  const TxnId txn = 5;
  ASSERT_TRUE(ofm_->Insert(txn, Acct(1, "ann", 100)).ok());
  ASSERT_TRUE(ofm_->Abort(txn).ok());
  Reset(OfmType::kFull);
  ASSERT_TRUE(ofm_->Recover().ok());
  EXPECT_EQ(ofm_->num_tuples(), 0u);
}

TEST_F(OfmTest, CheckpointTruncatesWalAndRecovers) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ofm_->Insert(kAutoCommit, Acct(i, "user", 100 * i)).ok());
  }
  ASSERT_TRUE(ofm_->Delete(kAutoCommit, 3).ok());
  ASSERT_TRUE(ofm_->Checkpoint().ok());
  EXPECT_EQ(stable_.stream_bytes("acct#0.wal"), 0u);

  // Post-checkpoint activity lands in the (new) WAL; RowIds keep working.
  ASSERT_TRUE(ofm_->Insert(kAutoCommit, Acct(100, "late", 1)).ok());
  ASSERT_TRUE(ofm_->Update(kAutoCommit, 5, Acct(5, "user", 42)).ok());

  Reset(OfmType::kFull);
  ASSERT_TRUE(ofm_->Recover().ok());
  EXPECT_EQ(ofm_->num_tuples(), 10u);  // 10 - 1 deleted + 1 late.
  EXPECT_EQ(ofm_->relation().Get(5)->at(2), Value::Int(42));
  EXPECT_FALSE(ofm_->relation().IsLive(3));
}

TEST_F(OfmTest, CheckpointRefusesOpenTransactions) {
  ASSERT_TRUE(ofm_->Insert(77, Acct(1, "x", 1)).ok());
  EXPECT_EQ(ofm_->Checkpoint().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(ofm_->Commit(77).ok());
  EXPECT_TRUE(ofm_->Checkpoint().ok());
}

TEST_F(OfmTest, QueryOnlyOfmSkipsDurability) {
  Reset(OfmType::kQueryOnly);
  ASSERT_TRUE(ofm_->Insert(kAutoCommit, Acct(1, "tmp", 1)).ok());
  EXPECT_EQ(ofm_->wal_records(), 0u);
  EXPECT_EQ(stable_.total_bytes(), 0u);
  EXPECT_EQ(ofm_->Checkpoint().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ofm_->Recover().code(), StatusCode::kFailedPrecondition);
  // But transactional undo still works (it is memory-only machinery).
  const TxnId txn = 3;
  ASSERT_TRUE(ofm_->Insert(txn, Acct(2, "tmp2", 2)).ok());
  ASSERT_TRUE(ofm_->Abort(txn).ok());
  EXPECT_EQ(ofm_->num_tuples(), 1u);
}

TEST_F(OfmTest, FullOfmWritesMoreWalThanQueryOnly) {
  // The E7 claim in miniature: durability costs WAL records.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ofm_->Insert(kAutoCommit, Acct(i, "u", i)).ok());
  }
  const uint64_t full_wal = ofm_->wal_records();
  Reset(OfmType::kQueryOnly);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ofm_->Insert(kAutoCommit, Acct(i, "u", i)).ok());
  }
  EXPECT_EQ(ofm_->wal_records(), 0u);
  EXPECT_EQ(full_wal, 20u);
}

TEST_F(OfmTest, DeleteWhereAndUpdateWhere) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ofm_->Insert(kAutoCommit, Acct(i, "u", 100 * i)).ok());
  }
  auto pred = Expr::Binary(BinaryOp::kLt, Col("balance"), Lit(int64_t{300}));
  ASSERT_TRUE(pred->Bind(AcctSchema()).ok());
  auto deleted = ofm_->DeleteWhere(kAutoCommit, pred.get());
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 3u);
  EXPECT_EQ(ofm_->num_tuples(), 7u);

  // UPDATE acct SET balance = balance + 1 WHERE id >= 8.
  auto where = Expr::Binary(BinaryOp::kGe, Col("id"), Lit(int64_t{8}));
  ASSERT_TRUE(where->Bind(AcctSchema()).ok());
  auto add = Expr::Binary(BinaryOp::kAdd, Col("balance"), Lit(int64_t{1}));
  ASSERT_TRUE(add->Bind(AcctSchema()).ok());
  auto updated = ofm_->UpdateWhere(kAutoCommit, where.get(), {{2, add.get()}});
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, 2u);
  EXPECT_EQ(ofm_->relation().Get(8)->at(2), Value::Int(801));
}

TEST_F(OfmTest, ExecutePlanOverFragment) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ofm_->Insert(kAutoCommit, Acct(i, "u", 100 * i)).ok());
  }
  auto scan = ScanPlan::Create("acct#0", AcctSchema());
  auto plan = SelectPlan::Create(
      std::move(scan),
      Expr::Binary(BinaryOp::kGe, Col("balance"), Lit(int64_t{700})));
  ASSERT_TRUE(plan.ok());
  auto out = ofm_->ExecutePlan(**plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
  EXPECT_GT(ofm_->last_exec_stats().charged_ns, 0);
}

TEST_F(OfmTest, IndexesMaintainedAcrossWritesAndRecovery) {
  ASSERT_TRUE(ofm_->CreateHashIndex("by_owner", {1}).ok());
  ASSERT_TRUE(ofm_->CreateBTreeIndex("by_balance", {2}).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        ofm_->Insert(kAutoCommit, Acct(i, i % 2 ? "odd" : "even", 10 * i))
            .ok());
  }
  const auto* hash = ofm_->FindHashIndex({1});
  ASSERT_NE(hash, nullptr);
  EXPECT_EQ(hash->Probe(Tuple({Value::String("odd")})).size(), 5u);

  ASSERT_TRUE(ofm_->Delete(kAutoCommit, 1).ok());
  EXPECT_EQ(hash->Probe(Tuple({Value::String("odd")})).size(), 4u);

  const auto* btree = ofm_->FindBTreeIndex({2});
  ASSERT_NE(btree, nullptr);
  size_t in_range = 0;
  btree->ScanRange(Tuple({Value::Int(20)}), true, Tuple({Value::Int(60)}),
                   true, [&](const Tuple&, storage::RowId) {
                     ++in_range;
                     return true;
                   });
  EXPECT_EQ(in_range, 5u);  // 20,30,40,50,60.
  EXPECT_EQ(ofm_->FindHashIndex({0}), nullptr);
}

TEST_F(OfmTest, ExecutePlanUsesLocalIndexes) {
  ASSERT_TRUE(ofm_->CreateHashIndex("by_id", {0}).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(ofm_->Insert(kAutoCommit, Acct(i, "u", i)).ok());
  }
  auto scan = ScanPlan::Create("acct#0", AcctSchema());
  auto plan = SelectPlan::Create(
      std::move(scan),
      Expr::Binary(BinaryOp::kEq, Col("id"), Lit(int64_t{123})));
  ASSERT_TRUE(plan.ok());
  auto out = ofm_->ExecutePlan(**plan);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  // The OFM's local optimizer answered through the index, not a scan.
  EXPECT_EQ(ofm_->last_exec_stats().index_selections, 1u);
  EXPECT_EQ(ofm_->last_exec_stats().tuples_scanned, 0u);
  // Index selection charges far less virtual CPU than a 200-row scan.
  const sim::SimTime indexed_ns = ofm_->last_exec_stats().charged_ns;
  Ofm::Options no_index_opts;
  no_index_opts.type = OfmType::kQueryOnly;
  Ofm plain("acct#0", AcctSchema(), no_index_opts);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(plain.Insert(kAutoCommit, Acct(i, "u", i)).ok());
  }
  auto scan2 = ScanPlan::Create("acct#0", AcctSchema());
  auto plan2 = SelectPlan::Create(
      std::move(scan2),
      Expr::Binary(BinaryOp::kEq, Col("id"), Lit(int64_t{123})));
  ASSERT_TRUE(plan2.ok());
  ASSERT_TRUE(plain.ExecutePlan(**plan2).ok());
  EXPECT_LT(indexed_ns, plain.last_exec_stats().charged_ns);
}

TEST_F(OfmTest, CursorWithMarkings) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ofm_->Insert(kAutoCommit, Acct(i, "u", i)).ok());
  }
  auto cursor = ofm_->OpenCursor();
  EXPECT_EQ(cursor.Next()->at(0), Value::Int(0));
  EXPECT_EQ(cursor.Next()->at(0), Value::Int(1));
  cursor.Mark();
  EXPECT_EQ(cursor.Next()->at(0), Value::Int(2));
  EXPECT_EQ(cursor.Next()->at(0), Value::Int(3));
  cursor.ResetToMark();
  EXPECT_EQ(cursor.Next()->at(0), Value::Int(2));
  while (cursor.Next().has_value()) {
  }
  EXPECT_FALSE(cursor.Next().has_value());
}

}  // namespace
}  // namespace prisma::exec
