#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algebra/expr.h"
#include "algebra/plan.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "exec/join.h"
#include "exec/transitive_closure.h"
#include "storage/relation.h"

namespace prisma::exec {
namespace {

using algebra::AggFunc;
using algebra::AggregatePlan;
using algebra::BinaryOp;
using algebra::Col;
using algebra::DifferencePlan;
using algebra::DistinctPlan;
using algebra::Expr;
using algebra::JoinPlan;
using algebra::LimitPlan;
using algebra::Lit;
using algebra::ProjectPlan;
using algebra::ScanPlan;
using algebra::SelectPlan;
using algebra::SortKey;
using algebra::SortPlan;
using algebra::TransitiveClosurePlan;
using algebra::UnionPlan;
using algebra::ValuesPlan;

Tuple Pair(int64_t a, int64_t b) {
  return Tuple({Value::Int(a), Value::Int(b)});
}

std::vector<Tuple> Pairs(std::vector<std::pair<int64_t, int64_t>> ps) {
  std::vector<Tuple> out;
  for (auto [a, b] : ps) out.push_back(Pair(a, b));
  return out;
}

// ------------------------------------------------------------------ Joins

TEST(JoinTest, HashJoinBasic) {
  auto left = Pairs({{1, 10}, {2, 20}, {3, 30}});
  auto right = Pairs({{2, 200}, {3, 300}, {3, 301}, {4, 400}});
  auto out = HashJoin(left, right, {{0, 0}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
  for (const Tuple& t : *out) {
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.at(0), t.at(2));  // Key columns equal.
  }
}

TEST(JoinTest, NullKeysNeverJoin) {
  std::vector<Tuple> left = {Tuple({Value::Null(), Value::Int(1)}), Pair(2, 2)};
  std::vector<Tuple> right = {Tuple({Value::Null(), Value::Int(9)}),
                              Pair(2, 9)};
  for (auto* fn : {&HashJoin, &MergeJoin}) {
    auto out = (*fn)(left, right, {{0, 0}}, nullptr, nullptr);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out->size(), 1u) << "null keys joined";
    EXPECT_EQ(out->front().at(0), Value::Int(2));
  }
}

TEST(JoinTest, NestedLoopCrossProduct) {
  auto out = NestedLoopJoin(Pairs({{1, 1}, {2, 2}}), Pairs({{5, 5}}), nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(JoinTest, FilterApplies) {
  auto filter = [](const Tuple& t) -> StatusOr<bool> {
    return t.at(1).int_value() + t.at(3).int_value() > 25;
  };
  auto out = HashJoin(Pairs({{1, 10}, {2, 20}}), Pairs({{1, 10}, {2, 20}}),
                      {{0, 0}}, filter);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().at(0), Value::Int(2));
}

TEST(JoinTest, MergeJoinDuplicateRuns) {
  auto left = Pairs({{1, 1}, {1, 2}, {2, 3}});
  auto right = Pairs({{1, 7}, {1, 8}, {3, 9}});
  auto out = MergeJoin(left, right, {{0, 0}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 4u);  // 2x2 for key 1.
}

/// Property: the three join algorithms agree on random inputs.
class JoinAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinAgreementTest, AllAlgorithmsAgree) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Tuple> left;
    std::vector<Tuple> right;
    const int nl = 1 + static_cast<int>(rng.Uniform(40));
    const int nr = 1 + static_cast<int>(rng.Uniform(40));
    for (int i = 0; i < nl; ++i) {
      left.push_back(Pair(rng.UniformInt(0, 8), rng.UniformInt(0, 100)));
    }
    for (int i = 0; i < nr; ++i) {
      right.push_back(Pair(rng.UniformInt(0, 8), rng.UniformInt(0, 100)));
    }
    auto eq_filter = [](const Tuple& t) -> StatusOr<bool> {
      return t.at(0).Compare(t.at(2)) == 0;
    };
    auto h = HashJoin(left, right, {{0, 0}});
    auto m = MergeJoin(left, right, {{0, 0}});
    auto n = NestedLoopJoin(left, right, eq_filter);
    ASSERT_TRUE(h.ok() && m.ok() && n.ok());
    auto canon = [](std::vector<Tuple> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    EXPECT_EQ(canon(*h), canon(*n));
    EXPECT_EQ(canon(*m), canon(*n));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinAgreementTest,
                         ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------------- TransitiveClosure

TEST(TransitiveClosureTest, Chain) {
  auto edges = Pairs({{1, 2}, {2, 3}, {3, 4}});
  for (auto alg : {TcAlgorithm::kNaive, TcAlgorithm::kSeminaive,
                   TcAlgorithm::kSmart}) {
    auto out = TransitiveClosure(edges, alg);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->size(), 6u) << TcAlgorithmName(alg);  // All i<j pairs.
  }
}

TEST(TransitiveClosureTest, CycleSaturates) {
  auto edges = Pairs({{1, 2}, {2, 3}, {3, 1}});
  auto out = TransitiveClosure(edges, TcAlgorithm::kSeminaive);
  ASSERT_TRUE(out.ok());
  // Every node reaches every node including itself: 9 pairs.
  EXPECT_EQ(out->size(), 9u);
}

TEST(TransitiveClosureTest, EmptyAndSelfLoop) {
  EXPECT_TRUE(TransitiveClosure({}, TcAlgorithm::kNaive)->empty());
  auto out = TransitiveClosure(Pairs({{1, 1}}), TcAlgorithm::kSeminaive);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

TEST(TransitiveClosureTest, NullEndpointsIgnored) {
  std::vector<Tuple> edges = {Pair(1, 2),
                              Tuple({Value::Null(), Value::Int(3)})};
  auto out = TransitiveClosure(edges, TcAlgorithm::kSeminaive);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

TEST(TransitiveClosureTest, RejectsNonBinary) {
  std::vector<Tuple> bad = {Tuple({Value::Int(1)})};
  EXPECT_FALSE(TransitiveClosure(bad, TcAlgorithm::kNaive).ok());
}

TEST(TransitiveClosureTest, WorksOnStrings) {
  std::vector<Tuple> edges = {
      Tuple({Value::String("a"), Value::String("b")}),
      Tuple({Value::String("b"), Value::String("c")})};
  auto out = TransitiveClosure(edges, TcAlgorithm::kSmart);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST(TransitiveClosureTest, SeminaiveDerivesFewerPairsThanNaive) {
  // A long chain maximizes naive's re-derivation waste.
  std::vector<Tuple> edges;
  for (int i = 0; i < 30; ++i) edges.push_back(Pair(i, i + 1));
  TcStats naive, semi, smart;
  ASSERT_TRUE(TransitiveClosure(edges, TcAlgorithm::kNaive, &naive).ok());
  ASSERT_TRUE(TransitiveClosure(edges, TcAlgorithm::kSeminaive, &semi).ok());
  ASSERT_TRUE(TransitiveClosure(edges, TcAlgorithm::kSmart, &smart).ok());
  EXPECT_EQ(naive.result_size, semi.result_size);
  EXPECT_EQ(naive.result_size, smart.result_size);
  EXPECT_GT(naive.pairs_derived, 3 * semi.pairs_derived);
  // Smart runs O(log n) iterations vs O(n).
  EXPECT_LT(smart.iterations, 8u);
  EXPECT_GT(semi.iterations, 25u);
}

/// Property: all three algorithms agree on random graphs, and match a
/// reference Floyd-Warshall closure.
class TcAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TcAgreementTest, MatchesFloydWarshall) {
  Rng rng(GetParam());
  const int n = 12;
  std::vector<Tuple> edges;
  bool reach[12][12] = {};
  for (int i = 0; i < 28; ++i) {
    const int a = static_cast<int>(rng.Uniform(n));
    const int b = static_cast<int>(rng.Uniform(n));
    edges.push_back(Pair(a, b));
    reach[a][b] = true;
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        reach[i][j] = reach[i][j] || (reach[i][k] && reach[k][j]);
      }
    }
  }
  std::set<std::pair<int64_t, int64_t>> want;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (reach[i][j]) want.insert({i, j});
    }
  }
  for (auto alg : {TcAlgorithm::kNaive, TcAlgorithm::kSeminaive,
                   TcAlgorithm::kSmart}) {
    auto out = TransitiveClosure(edges, alg);
    ASSERT_TRUE(out.ok());
    std::set<std::pair<int64_t, int64_t>> got;
    for (const Tuple& t : *out) {
      got.insert({t.at(0).int_value(), t.at(1).int_value()});
    }
    EXPECT_EQ(got, want) << TcAlgorithmName(alg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcAgreementTest,
                         ::testing::Values(7, 17, 27, 37, 47));

// --------------------------------------------------------------- Executor

Schema EmpSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"dept", DataType::kString},
                 {"salary", DataType::kInt64}});
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : emp_("emp", EmpSchema()) {
    const char* depts[] = {"sales", "eng", "hr"};
    for (int i = 0; i < 30; ++i) {
      emp_.Insert(Tuple({Value::Int(i), Value::String(depts[i % 3]),
                         Value::Int(1000 + 100 * i)}))
          .value();
    }
    resolver_.Register("emp", &emp_);
  }

  std::unique_ptr<algebra::Plan> EmpScan() {
    return ScanPlan::Create("emp", EmpSchema());
  }

  StatusOr<std::vector<Tuple>> Execute(const algebra::Plan& plan,
                                       ExprMode mode = ExprMode::kCompiled) {
    ExecOptions opts;
    opts.expr_mode = mode;
    Executor executor(&resolver_, opts);
    auto result = executor.Execute(plan);
    last_stats_ = executor.stats();
    return result;
  }

  storage::Relation emp_;
  MapTableResolver resolver_;
  ExecStats last_stats_;
};

TEST_F(ExecutorTest, ScanReturnsAll) {
  auto out = Execute(*EmpScan());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 30u);
  EXPECT_EQ(last_stats_.tuples_scanned, 30u);
  EXPECT_GT(last_stats_.charged_ns, 0);
}

TEST_F(ExecutorTest, ScanUnknownTableFails) {
  auto plan = ScanPlan::Create("ghost", EmpSchema());
  EXPECT_EQ(Execute(*plan).status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, SelectFilters) {
  auto plan = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kGe, Col("salary"), Lit(int64_t{3500})));
  ASSERT_TRUE(plan.ok());
  for (ExprMode mode : {ExprMode::kCompiled, ExprMode::kInterpreted}) {
    auto out = Execute(**plan, mode);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->size(), 5u);
    for (const Tuple& t : *out) EXPECT_GE(t.at(2).int_value(), 3500);
  }
}

TEST_F(ExecutorTest, InterpretedChargesMoreThanCompiled) {
  auto plan = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kGe, Col("salary"), Lit(int64_t{0})));
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(Execute(**plan, ExprMode::kCompiled).ok());
  const sim::SimTime compiled_ns = last_stats_.charged_ns;
  ASSERT_TRUE(Execute(**plan, ExprMode::kInterpreted).ok());
  const sim::SimTime interpreted_ns = last_stats_.charged_ns;
  // The virtual cost model reflects the interpretation overhead (E4).
  EXPECT_GT(interpreted_ns, compiled_ns);
}

TEST_F(ExecutorTest, ProjectComputes) {
  std::vector<std::unique_ptr<Expr>> exprs;
  exprs.push_back(Col("id"));
  exprs.push_back(Expr::Binary(BinaryOp::kMul, Col("salary"), Lit(int64_t{2})));
  auto plan = ProjectPlan::Create(EmpScan(), std::move(exprs),
                                  {"id", "double_salary"});
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*plan)->schema().column(1).name, "double_salary");
  EXPECT_EQ(out->front().at(1), Value::Int(2000));
}

TEST_F(ExecutorTest, JoinViaHashPath) {
  // Self-join emp with emp on dept, restricted to two specific ids.
  auto left = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kLt, Col("id"), Lit(int64_t{3})));
  ASSERT_TRUE(left.ok());
  auto right_scan = EmpScan();
  auto join = JoinPlan::Create(
      std::move(*left), std::move(right_scan),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(1, DataType::kString),
                   Expr::ColumnIndex(4, DataType::kString)));
  ASSERT_TRUE(join.ok());
  EXPECT_FALSE((*join)->EquiKeys().empty());
  auto out = Execute(**join);
  ASSERT_TRUE(out.ok());
  // Each of ids 0,1,2 joins its department's 10 members.
  EXPECT_EQ(out->size(), 30u);
  EXPECT_EQ(out->front().size(), 6u);
}

TEST_F(ExecutorTest, UnionConcatenates) {
  auto plan = UnionPlan::Create(EmpScan(), EmpScan());
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 60u);
}

TEST_F(ExecutorTest, DifferenceRemoves) {
  auto half = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kLt, Col("id"), Lit(int64_t{10})));
  ASSERT_TRUE(half.ok());
  auto plan = DifferencePlan::Create(EmpScan(), std::move(*half));
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 20u);
  for (const Tuple& t : *out) EXPECT_GE(t.at(0).int_value(), 10);
}

TEST_F(ExecutorTest, DistinctDeduplicates) {
  std::vector<std::unique_ptr<Expr>> exprs;
  exprs.push_back(Col("dept"));
  auto proj = ProjectPlan::Create(EmpScan(), std::move(exprs), {"dept"});
  ASSERT_TRUE(proj.ok());
  auto plan = DistinctPlan::Create(std::move(*proj));
  auto out = Execute(*plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST_F(ExecutorTest, AggregateGrouped) {
  std::vector<std::unique_ptr<Expr>> groups;
  groups.push_back(Col("dept"));
  std::vector<algebra::AggSpec> aggs;
  aggs.push_back({AggFunc::kCount, nullptr, "n"});
  aggs.push_back({AggFunc::kSum, Col("salary"), "total"});
  aggs.push_back({AggFunc::kMin, Col("salary"), "lo"});
  aggs.push_back({AggFunc::kMax, Col("salary"), "hi"});
  aggs.push_back({AggFunc::kAvg, Col("salary"), "avg"});
  auto plan = AggregatePlan::Create(EmpScan(), std::move(groups), {"dept"},
                                    std::move(aggs));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  for (const Tuple& t : *out) {
    EXPECT_EQ(t.at(1), Value::Int(10));  // 10 per department.
    EXPECT_LT(t.at(3), t.at(4));         // lo < hi.
    EXPECT_EQ(t.at(5).type(), DataType::kDouble);
  }
}

TEST_F(ExecutorTest, AggregateGrandTotalOnEmptyInput) {
  auto none = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kLt, Col("id"), Lit(int64_t{0})));
  ASSERT_TRUE(none.ok());
  std::vector<algebra::AggSpec> aggs;
  aggs.push_back({AggFunc::kCount, nullptr, "n"});
  aggs.push_back({AggFunc::kSum, Col("salary"), "total"});
  auto plan =
      AggregatePlan::Create(std::move(*none), {}, {}, std::move(aggs));
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().at(0), Value::Int(0));
  EXPECT_TRUE(out->front().at(1).is_null());  // SUM of nothing is NULL.
}

TEST_F(ExecutorTest, SortAscendingAndDescending) {
  std::vector<SortKey> keys;
  keys.push_back({Col("salary"), /*descending=*/true});
  auto plan = SortPlan::Create(EmpScan(), std::move(keys));
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  for (size_t i = 1; i < out->size(); ++i) {
    EXPECT_GE((*out)[i - 1].at(2).int_value(), (*out)[i].at(2).int_value());
  }
}

TEST_F(ExecutorTest, LimitTruncates) {
  auto plan = LimitPlan::Create(EmpScan(), 7);
  auto out = Execute(*plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 7u);
}

TEST_F(ExecutorTest, TransitiveClosureNode) {
  storage::Relation edges("edges", Schema({{"src", DataType::kInt64},
                                           {"dst", DataType::kInt64}}));
  for (int i = 0; i < 5; ++i) edges.Insert(Pair(i, i + 1)).value();
  resolver_.Register("edges", &edges);
  auto scan = ScanPlan::Create("edges", edges.schema());
  auto plan = TransitiveClosurePlan::Create(std::move(scan));
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 15u);  // 6 choose 2.
}

TEST_F(ExecutorTest, ValuesPlanFeedsPipeline) {
  Schema s({{"x", DataType::kInt64}});
  auto values = ValuesPlan::Create(s, {Tuple({Value::Int(1)}),
                                       Tuple({Value::Int(2)}),
                                       Tuple({Value::Int(2)})});
  ASSERT_TRUE(values.ok());
  auto plan = DistinctPlan::Create(std::move(*values));
  auto out = Execute(*plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST_F(ExecutorTest, HashIndexSelectionMatchesScan) {
  storage::HashIndex by_id("by_id", {0});
  by_id.Rebuild(emp_);
  auto make_plan = [&] {
    auto plan = SelectPlan::Create(
        EmpScan(), Expr::Binary(BinaryOp::kEq, Col("id"), Lit(int64_t{7})));
    EXPECT_TRUE(plan.ok());
    return std::move(plan).value();
  };
  // Without the index: full scan.
  auto scan_result = Execute(*make_plan());
  ASSERT_TRUE(scan_result.ok());
  EXPECT_EQ(last_stats_.index_selections, 0u);
  EXPECT_EQ(last_stats_.tuples_scanned, 30u);

  // With the index registered: probe, no scan, same answer.
  resolver_.RegisterHashIndex("emp", &by_id);
  auto index_result = Execute(*make_plan());
  ASSERT_TRUE(index_result.ok());
  EXPECT_EQ(last_stats_.index_selections, 1u);
  EXPECT_EQ(last_stats_.tuples_scanned, 0u);
  EXPECT_EQ(*index_result, *scan_result);
  ASSERT_EQ(index_result->size(), 1u);
}

TEST_F(ExecutorTest, BTreeIndexRangeSelectionMatchesScan) {
  storage::BTreeIndex by_salary("by_salary", {2});
  by_salary.Rebuild(emp_);
  auto make_plan = [&](int64_t lo, int64_t hi) {
    auto plan = SelectPlan::Create(
        EmpScan(),
        algebra::And(
            Expr::Binary(BinaryOp::kGe, Col("salary"), Lit(lo)),
            Expr::Binary(BinaryOp::kLt, Col("salary"), Lit(hi))));
    EXPECT_TRUE(plan.ok());
    return std::move(plan).value();
  };
  auto scan_result = Execute(*make_plan(1500, 2500));
  ASSERT_TRUE(scan_result.ok());

  resolver_.RegisterBTreeIndex("emp", &by_salary);
  auto index_result = Execute(*make_plan(1500, 2500));
  ASSERT_TRUE(index_result.ok());
  EXPECT_EQ(last_stats_.index_selections, 1u);
  EXPECT_EQ(last_stats_.tuples_scanned, 0u);
  auto canon = [](std::vector<Tuple> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(canon(*index_result), canon(*scan_result));
  EXPECT_EQ(index_result->size(), 10u);  // Salaries 1500..2400.
}

TEST_F(ExecutorTest, IndexSelectionRechecksResidualPredicate) {
  storage::HashIndex by_dept("by_dept", {1});
  by_dept.Rebuild(emp_);
  resolver_.RegisterHashIndex("emp", &by_dept);
  // dept = 'eng' is indexed; the salary conjunct is residual.
  auto plan = SelectPlan::Create(
      EmpScan(),
      algebra::And(
          Expr::Binary(BinaryOp::kEq, Col("dept"), Lit(std::string("eng"))),
          Expr::Binary(BinaryOp::kGe, Col("salary"), Lit(int64_t{3000}))));
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(last_stats_.index_selections, 1u);
  for (const Tuple& t : *out) {
    EXPECT_EQ(t.at(1), Value::String("eng"));
    EXPECT_GE(t.at(2).int_value(), 3000);
  }
  EXPECT_EQ(out->size(), 3u);  // ids 22, 25, 28.
}

TEST_F(ExecutorTest, IndexPathSkippedWhenNoUsableBound) {
  storage::HashIndex by_id("by_id", {0});
  by_id.Rebuild(emp_);
  resolver_.RegisterHashIndex("emp", &by_id);
  // Inequality cannot use a hash index; OR is not a conjunct chain.
  auto plan = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kGt, Col("id"), Lit(int64_t{25})));
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(last_stats_.index_selections, 0u);
  EXPECT_EQ(out->size(), 4u);
}

/// Property: with random data and predicates, the indexed path and the
/// scan path agree exactly.
class IndexAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexAgreementTest, IndexAndScanAgree) {
  Rng rng(GetParam());
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  storage::Relation rel("t", schema);
  for (int i = 0; i < 300; ++i) {
    rel.Insert(Tuple({rng.NextBool(0.05) ? Value::Null()
                                         : Value::Int(rng.UniformInt(0, 40)),
                      Value::Int(rng.UniformInt(0, 100))}))
        .value();
  }
  storage::HashIndex hash("h", {0});
  hash.Rebuild(rel);
  storage::BTreeIndex btree("b", {0});
  btree.Rebuild(rel);

  MapTableResolver plain;
  plain.Register("t", &rel);
  MapTableResolver indexed;
  indexed.Register("t", &rel);
  indexed.RegisterHashIndex("t", &hash);
  indexed.RegisterBTreeIndex("t", &btree);

  auto canon = [](std::vector<Tuple> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  for (int trial = 0; trial < 30; ++trial) {
    const int64_t a = rng.UniformInt(0, 40);
    const int64_t b = rng.UniformInt(0, 40);
    std::unique_ptr<algebra::Plan> plans[2];
    for (auto* p : {&plans[0], &plans[1]}) {
      std::unique_ptr<Expr> pred;
      switch (trial % 3) {
        case 0:
          pred = Expr::Binary(BinaryOp::kEq, Col("k"), Lit(a));
          break;
        case 1:
          pred = algebra::And(
              Expr::Binary(BinaryOp::kGe, Col("k"), Lit(std::min(a, b))),
              Expr::Binary(BinaryOp::kLe, Col("k"), Lit(std::max(a, b))));
          break;
        default:
          pred = algebra::And(
              Expr::Binary(BinaryOp::kLt, Col("k"), Lit(a)),
              Expr::Binary(BinaryOp::kGt, Col("v"), Lit(int64_t{50})));
          break;
      }
      auto plan =
          SelectPlan::Create(ScanPlan::Create("t", schema), std::move(pred));
      ASSERT_TRUE(plan.ok());
      *p = std::move(plan).value();
    }
    Executor scan_exec(&plain, exec::ExecOptions());
    Executor index_exec(&indexed, exec::ExecOptions());
    auto scan_out = scan_exec.Execute(*plans[0]);
    auto index_out = index_exec.Execute(*plans[1]);
    ASSERT_TRUE(scan_out.ok() && index_out.ok());
    EXPECT_EQ(canon(*scan_out), canon(*index_out)) << "trial " << trial;
    if (trial % 3 != 2) {
      EXPECT_EQ(index_exec.stats().index_selections, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexAgreementTest,
                         ::testing::Values(101, 202, 303));

/// Property: pushing a selection below a join preserves results — the
/// algebraic identity the optimizer's rewrite rules rely on (E6).
TEST_F(ExecutorTest, SelectionPushdownEquivalence) {
  // Plan A: select over join.
  auto join_a = JoinPlan::Create(
      EmpScan(), EmpScan(),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(1, DataType::kString),
                   Expr::ColumnIndex(4, DataType::kString)));
  ASSERT_TRUE(join_a.ok());
  auto sel_a = SelectPlan::Create(
      std::move(*join_a),
      Expr::Binary(BinaryOp::kLt, Expr::ColumnIndex(0, DataType::kInt64),
                   Lit(int64_t{2})));
  ASSERT_TRUE(sel_a.ok());

  // Plan B: selection pushed to the left input.
  auto pushed = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kLt, Col("id"), Lit(int64_t{2})));
  ASSERT_TRUE(pushed.ok());
  auto join_b = JoinPlan::Create(
      std::move(*pushed), EmpScan(),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(1, DataType::kString),
                   Expr::ColumnIndex(4, DataType::kString)));
  ASSERT_TRUE(join_b.ok());

  auto a = Execute(**sel_a);
  auto b = Execute(**join_b);
  ASSERT_TRUE(a.ok() && b.ok());
  auto canon = [](std::vector<Tuple> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(canon(*a), canon(*b));
  EXPECT_FALSE(a->empty());
}

}  // namespace
}  // namespace prisma::exec
