#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "algebra/expr.h"
#include "algebra/plan.h"
#include "common/column_batch.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/prisma_db.h"
#include "exec/executor.h"
#include "exec/expr_compiler.h"
#include "exec/exchange.h"
#include "exec/join.h"
#include "exec/transitive_closure.h"
#include "storage/relation.h"

namespace prisma::exec {
namespace {

using algebra::AggFunc;
using algebra::AggregatePlan;
using algebra::BinaryOp;
using algebra::Col;
using algebra::DifferencePlan;
using algebra::DistinctPlan;
using algebra::Expr;
using algebra::JoinPlan;
using algebra::LimitPlan;
using algebra::Lit;
using algebra::ProjectPlan;
using algebra::ScanPlan;
using algebra::SelectPlan;
using algebra::SortKey;
using algebra::SortPlan;
using algebra::TransitiveClosurePlan;
using algebra::UnionPlan;
using algebra::ValuesPlan;

Tuple Pair(int64_t a, int64_t b) {
  return Tuple({Value::Int(a), Value::Int(b)});
}

std::vector<Tuple> Pairs(std::vector<std::pair<int64_t, int64_t>> ps) {
  std::vector<Tuple> out;
  for (auto [a, b] : ps) out.push_back(Pair(a, b));
  return out;
}

// ------------------------------------------------------------------ Joins

TEST(JoinTest, HashJoinBasic) {
  auto left = Pairs({{1, 10}, {2, 20}, {3, 30}});
  auto right = Pairs({{2, 200}, {3, 300}, {3, 301}, {4, 400}});
  auto out = HashJoin(left, right, {{0, 0}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
  for (const Tuple& t : *out) {
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.at(0), t.at(2));  // Key columns equal.
  }
}

TEST(JoinTest, NullKeysNeverJoin) {
  std::vector<Tuple> left = {Tuple({Value::Null(), Value::Int(1)}), Pair(2, 2)};
  std::vector<Tuple> right = {Tuple({Value::Null(), Value::Int(9)}),
                              Pair(2, 9)};
  for (auto* fn : {&HashJoin, &MergeJoin}) {
    auto out = (*fn)(left, right, {{0, 0}}, nullptr, nullptr);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out->size(), 1u) << "null keys joined";
    EXPECT_EQ(out->front().at(0), Value::Int(2));
  }
}

TEST(JoinTest, NestedLoopCrossProduct) {
  auto out = NestedLoopJoin(Pairs({{1, 1}, {2, 2}}), Pairs({{5, 5}}), nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(JoinTest, FilterApplies) {
  auto filter = [](const Tuple& t) -> StatusOr<bool> {
    return t.at(1).int_value() + t.at(3).int_value() > 25;
  };
  auto out = HashJoin(Pairs({{1, 10}, {2, 20}}), Pairs({{1, 10}, {2, 20}}),
                      {{0, 0}}, filter);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().at(0), Value::Int(2));
}

TEST(JoinTest, MergeJoinDuplicateRuns) {
  auto left = Pairs({{1, 1}, {1, 2}, {2, 3}});
  auto right = Pairs({{1, 7}, {1, 8}, {3, 9}});
  auto out = MergeJoin(left, right, {{0, 0}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 4u);  // 2x2 for key 1.
}

/// Property: the three join algorithms agree on random inputs.
class JoinAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinAgreementTest, AllAlgorithmsAgree) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Tuple> left;
    std::vector<Tuple> right;
    const int nl = 1 + static_cast<int>(rng.Uniform(40));
    const int nr = 1 + static_cast<int>(rng.Uniform(40));
    for (int i = 0; i < nl; ++i) {
      left.push_back(Pair(rng.UniformInt(0, 8), rng.UniformInt(0, 100)));
    }
    for (int i = 0; i < nr; ++i) {
      right.push_back(Pair(rng.UniformInt(0, 8), rng.UniformInt(0, 100)));
    }
    auto eq_filter = [](const Tuple& t) -> StatusOr<bool> {
      return t.at(0).Compare(t.at(2)) == 0;
    };
    auto h = HashJoin(left, right, {{0, 0}});
    auto m = MergeJoin(left, right, {{0, 0}});
    auto n = NestedLoopJoin(left, right, eq_filter);
    ASSERT_TRUE(h.ok() && m.ok() && n.ok());
    auto canon = [](std::vector<Tuple> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    EXPECT_EQ(canon(*h), canon(*n));
    EXPECT_EQ(canon(*m), canon(*n));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinAgreementTest,
                         ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------------- TransitiveClosure

TEST(TransitiveClosureTest, Chain) {
  auto edges = Pairs({{1, 2}, {2, 3}, {3, 4}});
  for (auto alg : {TcAlgorithm::kNaive, TcAlgorithm::kSeminaive,
                   TcAlgorithm::kSmart}) {
    auto out = TransitiveClosure(edges, alg);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->size(), 6u) << TcAlgorithmName(alg);  // All i<j pairs.
  }
}

TEST(TransitiveClosureTest, CycleSaturates) {
  auto edges = Pairs({{1, 2}, {2, 3}, {3, 1}});
  auto out = TransitiveClosure(edges, TcAlgorithm::kSeminaive);
  ASSERT_TRUE(out.ok());
  // Every node reaches every node including itself: 9 pairs.
  EXPECT_EQ(out->size(), 9u);
}

TEST(TransitiveClosureTest, EmptyAndSelfLoop) {
  EXPECT_TRUE(TransitiveClosure({}, TcAlgorithm::kNaive)->empty());
  auto out = TransitiveClosure(Pairs({{1, 1}}), TcAlgorithm::kSeminaive);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

TEST(TransitiveClosureTest, NullEndpointsIgnored) {
  std::vector<Tuple> edges = {Pair(1, 2),
                              Tuple({Value::Null(), Value::Int(3)})};
  auto out = TransitiveClosure(edges, TcAlgorithm::kSeminaive);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

TEST(TransitiveClosureTest, RejectsNonBinary) {
  std::vector<Tuple> bad = {Tuple({Value::Int(1)})};
  EXPECT_FALSE(TransitiveClosure(bad, TcAlgorithm::kNaive).ok());
}

TEST(TransitiveClosureTest, WorksOnStrings) {
  std::vector<Tuple> edges = {
      Tuple({Value::String("a"), Value::String("b")}),
      Tuple({Value::String("b"), Value::String("c")})};
  auto out = TransitiveClosure(edges, TcAlgorithm::kSmart);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST(TransitiveClosureTest, StatsAreAFunctionOfTheDistinctNonNullEdgeSet) {
  // Regression: naive/seminaive used to join against the raw edge list,
  // so duplicate input edges inflated pairs_derived (smart, which
  // rebuilds its adjacency from the deduplicated closure, never did) —
  // and NULL-endpoint tuples were dropped without any record. The three
  // algorithms must now report identical stats for the dirty and the
  // clean form of the same relation, plus the NULL drop count.
  const std::vector<Tuple> clean =
      Pairs({{1, 2}, {2, 3}, {3, 4}, {2, 4}});
  std::vector<Tuple> dirty = clean;
  dirty.push_back(Pair(1, 2));  // Duplicates...
  dirty.push_back(Pair(2, 3));
  dirty.push_back(Pair(1, 2));
  dirty.push_back(Tuple({Value::Null(), Value::Int(7)}));  // ...and NULLs.
  dirty.push_back(Tuple({Value::Int(7), Value::Null()}));
  dirty.push_back(Tuple({Value::Null(), Value::Null()}));
  for (auto alg : {TcAlgorithm::kNaive, TcAlgorithm::kSeminaive,
                   TcAlgorithm::kSmart}) {
    TcStats clean_stats, dirty_stats;
    auto clean_out = TransitiveClosure(clean, alg, &clean_stats);
    auto dirty_out = TransitiveClosure(dirty, alg, &dirty_stats);
    ASSERT_TRUE(clean_out.ok() && dirty_out.ok());
    EXPECT_EQ(*clean_out, *dirty_out) << TcAlgorithmName(alg);
    EXPECT_EQ(dirty_stats.pairs_derived, clean_stats.pairs_derived)
        << TcAlgorithmName(alg);
    EXPECT_EQ(dirty_stats.iterations, clean_stats.iterations)
        << TcAlgorithmName(alg);
    EXPECT_EQ(dirty_stats.result_size, clean_stats.result_size)
        << TcAlgorithmName(alg);
    EXPECT_EQ(clean_stats.null_edges_ignored, 0u);
    EXPECT_EQ(dirty_stats.null_edges_ignored, 3u) << TcAlgorithmName(alg);
  }
}

TEST(TransitiveClosureTest, SeminaiveDerivesFewerPairsThanNaive) {
  // A long chain maximizes naive's re-derivation waste.
  std::vector<Tuple> edges;
  for (int i = 0; i < 30; ++i) edges.push_back(Pair(i, i + 1));
  TcStats naive, semi, smart;
  ASSERT_TRUE(TransitiveClosure(edges, TcAlgorithm::kNaive, &naive).ok());
  ASSERT_TRUE(TransitiveClosure(edges, TcAlgorithm::kSeminaive, &semi).ok());
  ASSERT_TRUE(TransitiveClosure(edges, TcAlgorithm::kSmart, &smart).ok());
  EXPECT_EQ(naive.result_size, semi.result_size);
  EXPECT_EQ(naive.result_size, smart.result_size);
  EXPECT_GT(naive.pairs_derived, 3 * semi.pairs_derived);
  // Smart runs O(log n) iterations vs O(n).
  EXPECT_LT(smart.iterations, 8u);
  EXPECT_GT(semi.iterations, 25u);
}

/// Property: all three algorithms agree on random graphs, and match a
/// reference Floyd-Warshall closure.
class TcAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TcAgreementTest, MatchesFloydWarshall) {
  Rng rng(GetParam());
  const int n = 12;
  std::vector<Tuple> edges;
  bool reach[12][12] = {};
  for (int i = 0; i < 28; ++i) {
    const int a = static_cast<int>(rng.Uniform(n));
    const int b = static_cast<int>(rng.Uniform(n));
    edges.push_back(Pair(a, b));
    reach[a][b] = true;
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        reach[i][j] = reach[i][j] || (reach[i][k] && reach[k][j]);
      }
    }
  }
  std::set<std::pair<int64_t, int64_t>> want;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (reach[i][j]) want.insert({i, j});
    }
  }
  for (auto alg : {TcAlgorithm::kNaive, TcAlgorithm::kSeminaive,
                   TcAlgorithm::kSmart}) {
    auto out = TransitiveClosure(edges, alg);
    ASSERT_TRUE(out.ok());
    std::set<std::pair<int64_t, int64_t>> got;
    for (const Tuple& t : *out) {
      got.insert({t.at(0).int_value(), t.at(1).int_value()});
    }
    EXPECT_EQ(got, want) << TcAlgorithmName(alg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcAgreementTest,
                         ::testing::Values(7, 17, 27, 37, 47));

// --------------------------------------------------------------- Executor

Schema EmpSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"dept", DataType::kString},
                 {"salary", DataType::kInt64}});
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : emp_("emp", EmpSchema()) {
    const char* depts[] = {"sales", "eng", "hr"};
    for (int i = 0; i < 30; ++i) {
      emp_.Insert(Tuple({Value::Int(i), Value::String(depts[i % 3]),
                         Value::Int(1000 + 100 * i)}))
          .value();
    }
    resolver_.Register("emp", &emp_);
  }

  std::unique_ptr<algebra::Plan> EmpScan() {
    return ScanPlan::Create("emp", EmpSchema());
  }

  StatusOr<std::vector<Tuple>> Execute(const algebra::Plan& plan,
                                       ExprMode mode = ExprMode::kCompiled) {
    ExecOptions opts;
    opts.expr_mode = mode;
    Executor executor(&resolver_, opts);
    auto result = executor.Execute(plan);
    last_stats_ = executor.stats();
    return result;
  }

  storage::Relation emp_;
  MapTableResolver resolver_;
  ExecStats last_stats_;
};

TEST_F(ExecutorTest, ScanReturnsAll) {
  auto out = Execute(*EmpScan());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 30u);
  EXPECT_EQ(last_stats_.tuples_scanned, 30u);
  EXPECT_GT(last_stats_.charged_ns, 0);
}

TEST_F(ExecutorTest, ScanUnknownTableFails) {
  auto plan = ScanPlan::Create("ghost", EmpSchema());
  EXPECT_EQ(Execute(*plan).status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, SelectFilters) {
  auto plan = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kGe, Col("salary"), Lit(int64_t{3500})));
  ASSERT_TRUE(plan.ok());
  for (ExprMode mode : {ExprMode::kCompiled, ExprMode::kInterpreted}) {
    auto out = Execute(**plan, mode);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->size(), 5u);
    for (const Tuple& t : *out) EXPECT_GE(t.at(2).int_value(), 3500);
  }
}

TEST_F(ExecutorTest, InterpretedChargesMoreThanCompiled) {
  auto plan = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kGe, Col("salary"), Lit(int64_t{0})));
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(Execute(**plan, ExprMode::kCompiled).ok());
  const sim::SimTime compiled_ns = last_stats_.charged_ns;
  ASSERT_TRUE(Execute(**plan, ExprMode::kInterpreted).ok());
  const sim::SimTime interpreted_ns = last_stats_.charged_ns;
  // The virtual cost model reflects the interpretation overhead (E4).
  EXPECT_GT(interpreted_ns, compiled_ns);
}

TEST_F(ExecutorTest, ProjectComputes) {
  std::vector<std::unique_ptr<Expr>> exprs;
  exprs.push_back(Col("id"));
  exprs.push_back(Expr::Binary(BinaryOp::kMul, Col("salary"), Lit(int64_t{2})));
  auto plan = ProjectPlan::Create(EmpScan(), std::move(exprs),
                                  {"id", "double_salary"});
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*plan)->schema().column(1).name, "double_salary");
  EXPECT_EQ(out->front().at(1), Value::Int(2000));
}

TEST_F(ExecutorTest, JoinViaHashPath) {
  // Self-join emp with emp on dept, restricted to two specific ids.
  auto left = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kLt, Col("id"), Lit(int64_t{3})));
  ASSERT_TRUE(left.ok());
  auto right_scan = EmpScan();
  auto join = JoinPlan::Create(
      std::move(*left), std::move(right_scan),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(1, DataType::kString),
                   Expr::ColumnIndex(4, DataType::kString)));
  ASSERT_TRUE(join.ok());
  EXPECT_FALSE((*join)->EquiKeys().empty());
  auto out = Execute(**join);
  ASSERT_TRUE(out.ok());
  // Each of ids 0,1,2 joins its department's 10 members.
  EXPECT_EQ(out->size(), 30u);
  EXPECT_EQ(out->front().size(), 6u);
}

TEST_F(ExecutorTest, UnionConcatenates) {
  auto plan = UnionPlan::Create(EmpScan(), EmpScan());
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 60u);
}

TEST_F(ExecutorTest, DifferenceRemoves) {
  auto half = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kLt, Col("id"), Lit(int64_t{10})));
  ASSERT_TRUE(half.ok());
  auto plan = DifferencePlan::Create(EmpScan(), std::move(*half));
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 20u);
  for (const Tuple& t : *out) EXPECT_GE(t.at(0).int_value(), 10);
}

TEST_F(ExecutorTest, DistinctDeduplicates) {
  std::vector<std::unique_ptr<Expr>> exprs;
  exprs.push_back(Col("dept"));
  auto proj = ProjectPlan::Create(EmpScan(), std::move(exprs), {"dept"});
  ASSERT_TRUE(proj.ok());
  auto plan = DistinctPlan::Create(std::move(*proj));
  auto out = Execute(*plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST_F(ExecutorTest, AggregateGrouped) {
  std::vector<std::unique_ptr<Expr>> groups;
  groups.push_back(Col("dept"));
  std::vector<algebra::AggSpec> aggs;
  aggs.push_back({AggFunc::kCount, nullptr, "n"});
  aggs.push_back({AggFunc::kSum, Col("salary"), "total"});
  aggs.push_back({AggFunc::kMin, Col("salary"), "lo"});
  aggs.push_back({AggFunc::kMax, Col("salary"), "hi"});
  aggs.push_back({AggFunc::kAvg, Col("salary"), "avg"});
  auto plan = AggregatePlan::Create(EmpScan(), std::move(groups), {"dept"},
                                    std::move(aggs));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  for (const Tuple& t : *out) {
    EXPECT_EQ(t.at(1), Value::Int(10));  // 10 per department.
    EXPECT_LT(t.at(3), t.at(4));         // lo < hi.
    EXPECT_EQ(t.at(5).type(), DataType::kDouble);
  }
}

TEST_F(ExecutorTest, AggregateGrandTotalOnEmptyInput) {
  auto none = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kLt, Col("id"), Lit(int64_t{0})));
  ASSERT_TRUE(none.ok());
  std::vector<algebra::AggSpec> aggs;
  aggs.push_back({AggFunc::kCount, nullptr, "n"});
  aggs.push_back({AggFunc::kSum, Col("salary"), "total"});
  auto plan =
      AggregatePlan::Create(std::move(*none), {}, {}, std::move(aggs));
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().at(0), Value::Int(0));
  EXPECT_TRUE(out->front().at(1).is_null());  // SUM of nothing is NULL.
}

TEST_F(ExecutorTest, SortAscendingAndDescending) {
  std::vector<SortKey> keys;
  keys.push_back({Col("salary"), /*descending=*/true});
  auto plan = SortPlan::Create(EmpScan(), std::move(keys));
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  for (size_t i = 1; i < out->size(); ++i) {
    EXPECT_GE((*out)[i - 1].at(2).int_value(), (*out)[i].at(2).int_value());
  }
}

TEST_F(ExecutorTest, LimitTruncates) {
  auto plan = LimitPlan::Create(EmpScan(), 7);
  auto out = Execute(*plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 7u);
}

TEST_F(ExecutorTest, TransitiveClosureNode) {
  storage::Relation edges("edges", Schema({{"src", DataType::kInt64},
                                           {"dst", DataType::kInt64}}));
  for (int i = 0; i < 5; ++i) edges.Insert(Pair(i, i + 1)).value();
  resolver_.Register("edges", &edges);
  auto scan = ScanPlan::Create("edges", edges.schema());
  auto plan = TransitiveClosurePlan::Create(std::move(scan));
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 15u);  // 6 choose 2.
}

TEST_F(ExecutorTest, ValuesPlanFeedsPipeline) {
  Schema s({{"x", DataType::kInt64}});
  auto values = ValuesPlan::Create(s, {Tuple({Value::Int(1)}),
                                       Tuple({Value::Int(2)}),
                                       Tuple({Value::Int(2)})});
  ASSERT_TRUE(values.ok());
  auto plan = DistinctPlan::Create(std::move(*values));
  auto out = Execute(*plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST_F(ExecutorTest, HashIndexSelectionMatchesScan) {
  storage::HashIndex by_id("by_id", {0});
  by_id.Rebuild(emp_);
  auto make_plan = [&] {
    auto plan = SelectPlan::Create(
        EmpScan(), Expr::Binary(BinaryOp::kEq, Col("id"), Lit(int64_t{7})));
    EXPECT_TRUE(plan.ok());
    return std::move(plan).value();
  };
  // Without the index: full scan.
  auto scan_result = Execute(*make_plan());
  ASSERT_TRUE(scan_result.ok());
  EXPECT_EQ(last_stats_.index_selections, 0u);
  EXPECT_EQ(last_stats_.tuples_scanned, 30u);

  // With the index registered: probe, no scan, same answer.
  resolver_.RegisterHashIndex("emp", &by_id);
  auto index_result = Execute(*make_plan());
  ASSERT_TRUE(index_result.ok());
  EXPECT_EQ(last_stats_.index_selections, 1u);
  EXPECT_EQ(last_stats_.tuples_scanned, 0u);
  EXPECT_EQ(*index_result, *scan_result);
  ASSERT_EQ(index_result->size(), 1u);
}

TEST_F(ExecutorTest, BTreeIndexRangeSelectionMatchesScan) {
  storage::BTreeIndex by_salary("by_salary", {2});
  by_salary.Rebuild(emp_);
  auto make_plan = [&](int64_t lo, int64_t hi) {
    auto plan = SelectPlan::Create(
        EmpScan(),
        algebra::And(
            Expr::Binary(BinaryOp::kGe, Col("salary"), Lit(lo)),
            Expr::Binary(BinaryOp::kLt, Col("salary"), Lit(hi))));
    EXPECT_TRUE(plan.ok());
    return std::move(plan).value();
  };
  auto scan_result = Execute(*make_plan(1500, 2500));
  ASSERT_TRUE(scan_result.ok());

  resolver_.RegisterBTreeIndex("emp", &by_salary);
  auto index_result = Execute(*make_plan(1500, 2500));
  ASSERT_TRUE(index_result.ok());
  EXPECT_EQ(last_stats_.index_selections, 1u);
  EXPECT_EQ(last_stats_.tuples_scanned, 0u);
  auto canon = [](std::vector<Tuple> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(canon(*index_result), canon(*scan_result));
  EXPECT_EQ(index_result->size(), 10u);  // Salaries 1500..2400.
}

TEST_F(ExecutorTest, IndexSelectionRechecksResidualPredicate) {
  storage::HashIndex by_dept("by_dept", {1});
  by_dept.Rebuild(emp_);
  resolver_.RegisterHashIndex("emp", &by_dept);
  // dept = 'eng' is indexed; the salary conjunct is residual.
  auto plan = SelectPlan::Create(
      EmpScan(),
      algebra::And(
          Expr::Binary(BinaryOp::kEq, Col("dept"), Lit(std::string("eng"))),
          Expr::Binary(BinaryOp::kGe, Col("salary"), Lit(int64_t{3000}))));
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(last_stats_.index_selections, 1u);
  for (const Tuple& t : *out) {
    EXPECT_EQ(t.at(1), Value::String("eng"));
    EXPECT_GE(t.at(2).int_value(), 3000);
  }
  EXPECT_EQ(out->size(), 3u);  // ids 22, 25, 28.
}

TEST_F(ExecutorTest, IndexPathSkippedWhenNoUsableBound) {
  storage::HashIndex by_id("by_id", {0});
  by_id.Rebuild(emp_);
  resolver_.RegisterHashIndex("emp", &by_id);
  // Inequality cannot use a hash index; OR is not a conjunct chain.
  auto plan = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kGt, Col("id"), Lit(int64_t{25})));
  ASSERT_TRUE(plan.ok());
  auto out = Execute(**plan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(last_stats_.index_selections, 0u);
  EXPECT_EQ(out->size(), 4u);
}

/// Property: with random data and predicates, the indexed path and the
/// scan path agree exactly.
class IndexAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexAgreementTest, IndexAndScanAgree) {
  Rng rng(GetParam());
  Schema schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
  storage::Relation rel("t", schema);
  for (int i = 0; i < 300; ++i) {
    rel.Insert(Tuple({rng.NextBool(0.05) ? Value::Null()
                                         : Value::Int(rng.UniformInt(0, 40)),
                      Value::Int(rng.UniformInt(0, 100))}))
        .value();
  }
  storage::HashIndex hash("h", {0});
  hash.Rebuild(rel);
  storage::BTreeIndex btree("b", {0});
  btree.Rebuild(rel);

  MapTableResolver plain;
  plain.Register("t", &rel);
  MapTableResolver indexed;
  indexed.Register("t", &rel);
  indexed.RegisterHashIndex("t", &hash);
  indexed.RegisterBTreeIndex("t", &btree);

  auto canon = [](std::vector<Tuple> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  for (int trial = 0; trial < 30; ++trial) {
    const int64_t a = rng.UniformInt(0, 40);
    const int64_t b = rng.UniformInt(0, 40);
    std::unique_ptr<algebra::Plan> plans[2];
    for (auto* p : {&plans[0], &plans[1]}) {
      std::unique_ptr<Expr> pred;
      switch (trial % 3) {
        case 0:
          pred = Expr::Binary(BinaryOp::kEq, Col("k"), Lit(a));
          break;
        case 1:
          pred = algebra::And(
              Expr::Binary(BinaryOp::kGe, Col("k"), Lit(std::min(a, b))),
              Expr::Binary(BinaryOp::kLe, Col("k"), Lit(std::max(a, b))));
          break;
        default:
          pred = algebra::And(
              Expr::Binary(BinaryOp::kLt, Col("k"), Lit(a)),
              Expr::Binary(BinaryOp::kGt, Col("v"), Lit(int64_t{50})));
          break;
      }
      auto plan =
          SelectPlan::Create(ScanPlan::Create("t", schema), std::move(pred));
      ASSERT_TRUE(plan.ok());
      *p = std::move(plan).value();
    }
    Executor scan_exec(&plain, exec::ExecOptions());
    Executor index_exec(&indexed, exec::ExecOptions());
    auto scan_out = scan_exec.Execute(*plans[0]);
    auto index_out = index_exec.Execute(*plans[1]);
    ASSERT_TRUE(scan_out.ok() && index_out.ok());
    EXPECT_EQ(canon(*scan_out), canon(*index_out)) << "trial " << trial;
    if (trial % 3 != 2) {
      EXPECT_EQ(index_exec.stats().index_selections, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexAgreementTest,
                         ::testing::Values(101, 202, 303));

/// Property: pushing a selection below a join preserves results — the
/// algebraic identity the optimizer's rewrite rules rely on (E6).
TEST_F(ExecutorTest, SelectionPushdownEquivalence) {
  // Plan A: select over join.
  auto join_a = JoinPlan::Create(
      EmpScan(), EmpScan(),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(1, DataType::kString),
                   Expr::ColumnIndex(4, DataType::kString)));
  ASSERT_TRUE(join_a.ok());
  auto sel_a = SelectPlan::Create(
      std::move(*join_a),
      Expr::Binary(BinaryOp::kLt, Expr::ColumnIndex(0, DataType::kInt64),
                   Lit(int64_t{2})));
  ASSERT_TRUE(sel_a.ok());

  // Plan B: selection pushed to the left input.
  auto pushed = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kLt, Col("id"), Lit(int64_t{2})));
  ASSERT_TRUE(pushed.ok());
  auto join_b = JoinPlan::Create(
      std::move(*pushed), EmpScan(),
      Expr::Binary(BinaryOp::kEq, Expr::ColumnIndex(1, DataType::kString),
                   Expr::ColumnIndex(4, DataType::kString)));
  ASSERT_TRUE(join_b.ok());

  auto a = Execute(**sel_a);
  auto b = Execute(**join_b);
  ASSERT_TRUE(a.ok() && b.ok());
  auto canon = [](std::vector<Tuple> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(canon(*a), canon(*b));
  EXPECT_FALSE(a->empty());
}

// ------------------------------------------------- Exchange channels (§10)

TEST(InboundChannelTest, InOrderDeliveryAdvancesAckOnTake) {
  InboundChannel channel;
  TupleBatch b1{1, false, Pairs({{1, 10}})};
  TupleBatch b2{2, true, Pairs({{2, 20}})};
  EXPECT_TRUE(channel.Offer(b1));
  // Offering alone must NOT move the ack point: only TakeReady delivers.
  EXPECT_EQ(channel.ack(), 0u);
  auto ready = channel.TakeReady();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(channel.ack(), 1u);
  EXPECT_FALSE(channel.done());
  EXPECT_TRUE(channel.Offer(b2));
  ready = channel.TakeReady();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_TRUE(ready[0].eos);
  EXPECT_EQ(channel.ack(), 2u);
  EXPECT_TRUE(channel.done());
}

TEST(InboundChannelTest, OutOfOrderBatchesAreReordered) {
  InboundChannel channel;
  EXPECT_TRUE(channel.Offer({3, true, Pairs({{3, 30}})}));
  EXPECT_TRUE(channel.Offer({2, false, Pairs({{2, 20}})}));
  // Seq 1 still missing: nothing deliverable, nothing acked.
  EXPECT_TRUE(channel.TakeReady().empty());
  EXPECT_EQ(channel.ack(), 0u);
  EXPECT_TRUE(channel.Offer({1, false, Pairs({{1, 10}})}));
  auto ready = channel.TakeReady();
  ASSERT_EQ(ready.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ready[i].seq, i + 1);
  }
  EXPECT_EQ(channel.ack(), 3u);
  EXPECT_TRUE(channel.done());
}

TEST(InboundChannelTest, DuplicatesAreDiscardedOnce) {
  InboundChannel channel;
  EXPECT_TRUE(channel.Offer({1, false, Pairs({{1, 10}})}));
  // Duplicate of a still-buffered batch.
  EXPECT_FALSE(channel.Offer({1, false, Pairs({{1, 10}})}));
  auto ready = channel.TakeReady();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].tuples.size(), 1u);
  // Duplicate of an already-delivered batch.
  EXPECT_FALSE(channel.Offer({1, false, Pairs({{1, 10}})}));
  EXPECT_EQ(channel.duplicates(), 2u);
  EXPECT_TRUE(channel.TakeReady().empty());  // Delivered exactly once.
}

TEST(OutboundChannelTest, FramesIntoBoundedBatchesWithEos) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < 10; ++i) tuples.push_back(Pair(i, i));
  OutboundChannel channel(std::move(tuples), /*batch_rows=*/4,
                          /*window=*/100);
  EXPECT_EQ(channel.last_seq(), 3u);  // 4 + 4 + 2.
  const TupleBatch* b;
  size_t total = 0;
  std::vector<size_t> sizes;
  while ((b = channel.TakeNextToSend()) != nullptr) {
    sizes.push_back(b->tuples.size());
    total += b->tuples.size();
    EXPECT_EQ(b->eos, sizes.size() == 3);
  }
  EXPECT_EQ(sizes, (std::vector<size_t>{4, 4, 2}));
  EXPECT_EQ(total, 10u);
}

TEST(OutboundChannelTest, EmptyStreamIsOneEmptyEosBatch) {
  OutboundChannel channel({}, 4, 1);
  EXPECT_EQ(channel.last_seq(), 1u);
  const TupleBatch* b = channel.TakeNextToSend();
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->eos);
  EXPECT_TRUE(b->tuples.empty());
  EXPECT_FALSE(channel.done());  // Not done until the consumer acks.
  EXPECT_TRUE(channel.OnAck(1));
  EXPECT_TRUE(channel.done());
}

TEST(OutboundChannelTest, CreditWindowStallsAndAcksReopenIt) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < 10; ++i) tuples.push_back(Pair(i, i));
  OutboundChannel channel(std::move(tuples), /*batch_rows=*/2,
                          /*window=*/2);  // 5 batches, 2 in flight.
  EXPECT_EQ(channel.credit(), 2u);
  EXPECT_NE(channel.TakeNextToSend(), nullptr);  // seq 1.
  EXPECT_NE(channel.TakeNextToSend(), nullptr);  // seq 2.
  EXPECT_EQ(channel.TakeNextToSend(), nullptr);  // Window exhausted.
  EXPECT_TRUE(channel.Stalled());
  EXPECT_EQ(channel.credit(), 0u);

  EXPECT_TRUE(channel.OnAck(1));
  EXPECT_FALSE(channel.Stalled());
  const TupleBatch* b = channel.TakeNextToSend();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->seq, 3u);
  // Stale/duplicate acks never move the window backwards.
  EXPECT_FALSE(channel.OnAck(1));
  EXPECT_FALSE(channel.OnAck(0));
  EXPECT_TRUE(channel.OnAck(5));
  EXPECT_TRUE(channel.done());
}

TEST(OutboundChannelTest, RetransmissionHelpers) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < 4; ++i) tuples.push_back(Pair(i, i));
  OutboundChannel channel(std::move(tuples), 2, 1);  // 2 batches, window 1.
  EXPECT_FALSE(channel.Sent(1));
  EXPECT_NE(channel.TakeNextToSend(), nullptr);
  EXPECT_TRUE(channel.Sent(1));
  EXPECT_FALSE(channel.Sent(2));  // Stalled, not yet handed out.
  ASSERT_NE(channel.BatchAt(1), nullptr);
  EXPECT_EQ(channel.BatchAt(1)->seq, 1u);
  EXPECT_EQ(channel.BatchAt(3), nullptr);  // Out of range.
  // A consumer-granted window enlargement opens credit immediately.
  channel.set_window(2);
  EXPECT_EQ(channel.credit(), 1u);
  channel.set_window(0);  // Malformed grant: ignored.
  EXPECT_EQ(channel.credit(), 1u);
}

// ------------------------------------------------- Pipelined hash join

TEST(PipelinedHashJoinTest, MatchesMaterializedHashJoin) {
  auto left = Pairs({{1, 10}, {2, 20}, {3, 30}, {3, 31}, {5, 50}});
  auto right = Pairs({{2, 200}, {3, 300}, {3, 301}, {4, 400}});
  auto expected = HashJoin(left, right, {{0, 0}});
  ASSERT_TRUE(expected.ok());

  PipelinedHashJoin::Options options;
  options.build_cols = {0};
  options.probe_cols = {0};
  options.build_is_left = true;
  PipelinedHashJoin join(options);
  for (Tuple& t : left) join.AddBuild(std::move(t));
  join.FinishBuild();
  std::vector<Tuple> out;
  for (const Tuple& t : right) {
    ASSERT_TRUE(join.Probe(t, &out).ok());
  }
  auto canon = [](std::vector<Tuple> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(canon(out), canon(*expected));
  EXPECT_EQ(out.size(), 5u);  // Key 2: 1x1, key 3: 2x2.
}

TEST(PipelinedHashJoinTest, BuildRightKeepsConcatOrder) {
  // Build the RIGHT side: output must still be Concat(left, right).
  auto left = Pairs({{1, 10}, {2, 20}});
  auto right = Pairs({{2, 200}, {2, 201}});
  PipelinedHashJoin::Options options;
  options.build_cols = {0};
  options.probe_cols = {0};
  options.build_is_left = false;  // Probe tuples are the left input.
  PipelinedHashJoin join(options);
  for (Tuple& t : right) join.AddBuild(std::move(t));
  join.FinishBuild();
  std::vector<Tuple> out;
  ASSERT_TRUE(join.Probe(Pair(2, 20), &out).ok());
  ASSERT_EQ(out.size(), 2u);
  for (const Tuple& t : out) {
    EXPECT_EQ(t.at(0), Value::Int(2));    // left.k
    EXPECT_EQ(t.at(1), Value::Int(20));   // left.v
    EXPECT_EQ(t.at(2), Value::Int(2));    // right.k
  }
}

TEST(PipelinedHashJoinTest, NullKeysNeverJoinAndFilterApplies) {
  PipelinedHashJoin::Options options;
  options.build_cols = {0};
  options.probe_cols = {0};
  options.filter = [](const Tuple& joined) -> StatusOr<bool> {
    return joined.at(3).int_value() < 300;  // Keep small right values only.
  };
  PipelinedHashJoin join(options);
  join.AddBuild(Pair(3, 30));
  join.AddBuild(Tuple({Value::Null(), Value::Int(99)}));
  join.FinishBuild();
  EXPECT_EQ(join.build_rows(), 1u);  // NULL build key dropped.
  std::vector<Tuple> out;
  ASSERT_TRUE(
      join.Probe(Tuple({Value::Null(), Value::Int(1)}), &out)
          .ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(join.Probe(Pair(3, 299), &out).ok());
  EXPECT_EQ(out.size(), 1u);
  ASSERT_TRUE(join.Probe(Pair(3, 301), &out).ok());
  EXPECT_EQ(out.size(), 1u);  // Filter rejected the second match.
}

TEST(PipelinedHashJoinTest, OutOfOrderAndDuplicateBatchesViaChannels) {
  // End-to-end over the channel primitives: batches of the build stream
  // arrive out of order and duplicated; the joined output must equal the
  // materialized join regardless.
  auto build_rows = Pairs({{1, 10}, {2, 20}, {3, 30}, {4, 40}});
  auto probe_rows = Pairs({{2, 200}, {4, 400}, {5, 500}});
  auto expected = HashJoin(build_rows, probe_rows, {{0, 0}});
  ASSERT_TRUE(expected.ok());

  OutboundChannel out_channel(build_rows, /*batch_rows=*/1, /*window=*/4);
  std::vector<TupleBatch> wire;
  while (const TupleBatch* b = out_channel.TakeNextToSend()) {
    wire.push_back(*b);
  }
  ASSERT_EQ(wire.size(), 4u);
  // Deliver 2, 1, 2(dup), 4, 3, 4(dup).
  InboundChannel in_channel;
  PipelinedHashJoin::Options options;
  options.build_cols = {0};
  options.probe_cols = {0};
  PipelinedHashJoin join(options);
  std::vector<Tuple> joined;
  const size_t order[] = {1, 0, 1, 3, 2, 3};
  for (const size_t i : order) {
    in_channel.Offer(wire[i]);
    for (TupleBatch& ready : in_channel.TakeReady()) {
      for (Tuple& t : ready.tuples) join.AddBuild(std::move(t));
    }
  }
  ASSERT_TRUE(in_channel.done());
  EXPECT_EQ(in_channel.duplicates(), 2u);
  join.FinishBuild();
  for (const Tuple& t : probe_rows) {
    ASSERT_TRUE(join.Probe(t, &joined).ok());
  }
  auto canon = [](std::vector<Tuple> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(canon(joined), canon(*expected));
}

// ----------------------------------------- Exchange joins, machine level

/// End-to-end acceptance for the streaming exchange layer: a non-colocated
/// equi-join over two hash-fragmented tables must execute through batch
/// channels (exchange.* metrics move) without the coordinator gathering
/// either full input — it only ever sees the joined result.
class ExchangeMachineTest : public ::testing::Test {
 protected:
  explicit ExchangeMachineTest() {
    core::MachineConfig config;
    config.pes = 16;
    db_ = std::make_unique<core::PrismaDb>(config);
  }

  core::QueryResult MustExecute(const std::string& sql) {
    ++statements_;
    auto result = db_->Execute(sql);
    PRISMA_CHECK(result.ok()) << sql << " -> " << result.status().ToString();
    return std::move(result).value();
  }

  uint64_t SumOverLabel(const std::string& counter, const std::string& label,
                        const std::string& table, size_t fragments) {
    uint64_t total = 0;
    for (size_t f = 0; f < fragments; ++f) {
      total += db_->metrics()
                   .GetCounter(counter,
                               {{label, table + "#" + std::to_string(f)}})
                   ->value();
    }
    return total;
  }

  std::unique_ptr<core::PrismaDb> db_;
  uint64_t statements_ = 0;  // Next statement's request id - 1.
};

TEST_F(ExchangeMachineTest, NonColocatedJoinStreamsThroughExchange) {
  // fact is fragmented on v, NOT the join key, so the join cannot run
  // co-located; dim is fragmented on its key.
  MustExecute("CREATE TABLE fact (k INT, v INT) "
              "FRAGMENTED BY HASH(v) INTO 4 FRAGMENTS");
  MustExecute("CREATE TABLE dim (k INT, label STRING) "
              "FRAGMENTED BY HASH(k) INTO 2 FRAGMENTS");
  for (int i = 0; i < 60; ++i) {
    MustExecute("INSERT INTO fact VALUES (" + std::to_string(i % 20) + ", " +
                std::to_string(i) + ")");
  }
  for (int i = 0; i < 10; ++i) {
    MustExecute("INSERT INTO dim VALUES (" + std::to_string(i) + ", 'd" +
                std::to_string(i) + "')");
  }

  const uint64_t query_id = statements_ + 1;
  core::QueryResult result = MustExecute(
      "SELECT f.v, d.label FROM fact f JOIN dim d ON f.k = d.k ORDER BY f.v");
  // fact keys are i % 20; only 0..9 exist in dim -> 3 fact rows per key.
  ASSERT_EQ(result.tuples.size(), 30u);
  EXPECT_EQ(result.tuples.front().at(0), Value::Int(0));
  EXPECT_EQ(result.tuples.front().at(1), Value::String("d0"));

  // The join streamed through exchange channels...
  const uint64_t sent =
      SumOverLabel("exchange.batches_sent", "fragment", "fact", 4) +
      SumOverLabel("exchange.batches_sent", "fragment", "dim", 2);
  const uint64_t received =
      SumOverLabel("exchange.batches_received", "fragment", "fact", 4) +
      SumOverLabel("exchange.batches_received", "fragment", "dim", 2);
  EXPECT_GT(sent, 0u);
  EXPECT_EQ(received, sent);
  EXPECT_GT(
      SumOverLabel("exchange.bytes", "fragment", "fact", 4) +
          SumOverLabel("exchange.bytes", "fragment", "dim", 2),
      0u);

  // ...and the coordinator only gathered the joined result, never a full
  // input (ship-to-coordinator would gather 60 fact + 10 dim rows).
  const uint64_t gathered =
      db_->metrics()
          .GetCounter("query.tuples_gathered",
                      {{"query", std::to_string(query_id)}})
          ->value();
  EXPECT_EQ(gathered, 30u);
  EXPECT_LT(gathered, 60u);
}

TEST_F(ExchangeMachineTest, ShuffleBothRepartitionsBothSides) {
  // Neither side is fragmented on the join key and both have the same
  // fragment count, so broadcasting is costlier than hash-repartitioning
  // both inputs: the optimizer must pick shuffle-both.
  MustExecute("CREATE TABLE lhs (k INT, v INT) "
              "FRAGMENTED BY HASH(v) INTO 4 FRAGMENTS");
  MustExecute("CREATE TABLE rhs (k INT, w INT) "
              "FRAGMENTED BY HASH(w) INTO 4 FRAGMENTS");
  for (int i = 0; i < 40; ++i) {
    MustExecute("INSERT INTO lhs VALUES (" + std::to_string(i % 8) + ", " +
                std::to_string(i) + ")");
    MustExecute("INSERT INTO rhs VALUES (" + std::to_string(i % 10) + ", " +
                std::to_string(1000 + i) + ")");
  }

  core::QueryResult explain = MustExecute(
      "EXPLAIN SELECT l.v, r.w FROM lhs l JOIN rhs r ON l.k = r.k");
  bool saw_shuffle_both = false;
  for (const Tuple& line : explain.tuples) {
    if (line.at(0).string_value().find("shuffle-both") != std::string::npos) {
      saw_shuffle_both = true;
    }
  }
  EXPECT_TRUE(saw_shuffle_both);

  core::QueryResult result =
      MustExecute("SELECT l.v, r.w FROM lhs l JOIN rhs r ON l.k = r.k");
  // Keys 0..7 exist on both sides: lhs has 5 rows per key, rhs has 4.
  ASSERT_EQ(result.tuples.size(), 8u * 5u * 4u);
  // Both sides produced into channels.
  EXPECT_GT(SumOverLabel("exchange.batches_sent", "fragment", "lhs", 4), 0u);
  EXPECT_GT(SumOverLabel("exchange.batches_sent", "fragment", "rhs", 4), 0u);
}

// ----------------------------------- Vectorized kernels (DESIGN.md §12)
//
// Kernel-level checks against the per-tuple reference implementations:
// the batch filter against CompiledExpr::EvalPredicate row by row, the
// batch hash join against HashJoin on the flattened inputs, and the
// vectorized aggregate path against the row path of the same plan.

Schema XSchema() { return Schema({{"x", DataType::kInt64}}); }

std::vector<Tuple> XTuples(int n) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < n; ++i) tuples.push_back(Tuple({Value::Int(i)}));
  return tuples;
}

TEST(VectorizedKernelTest, FilterSelectivityEdgesMatchPerTupleReference) {
  // 0%, 100% and boundary selectivities, with NULLs in the mix; ragged
  // batches (100 rows chunked by 16 leaves a 4-row tail).
  std::vector<Tuple> tuples = XTuples(100);
  tuples[13] = Tuple({Value::Null()});
  tuples[96] = Tuple({Value::Null()});
  const std::vector<ColumnBatch> batches = ColumnBatch::Chunk(tuples, 16);
  ASSERT_EQ(batches.size(), 7u);
  const struct {
    const char* name;
    BinaryOp op;
    int64_t literal;
  } kPredicates[] = {
      {"0% (x < 0)", BinaryOp::kLt, 0},
      {"100% (x >= 0)", BinaryOp::kGe, 0},
      {"boundary (x < 50)", BinaryOp::kLt, 50},
      {"first row only (x <= 0)", BinaryOp::kLe, 0},
      {"last row only (x >= 99)", BinaryOp::kGe, 99},
  };
  for (const auto& p : kPredicates) {
    SCOPED_TRACE(p.name);
    auto expr = Expr::Binary(p.op, Col("x"), Lit(p.literal));
    ASSERT_TRUE(expr->Bind(XSchema()).ok());
    auto compiled = CompileExpr(*expr);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    size_t row = 0;
    for (const ColumnBatch& batch : batches) {
      std::vector<uint8_t> keep;
      ASSERT_TRUE(compiled->EvalPredicateBatch(batch, &keep).ok());
      ASSERT_EQ(keep.size(), batch.num_rows());
      for (size_t r = 0; r < batch.num_rows(); ++r, ++row) {
        auto expect = compiled->EvalPredicate(tuples[row]);
        ASSERT_TRUE(expect.ok());
        EXPECT_EQ(keep[r] != 0, *expect) << "row " << row;
      }
    }
    EXPECT_EQ(row, tuples.size());
  }
}

TEST(VectorizedKernelTest, EvalBatchErrorMatchesFirstFailingRow) {
  // Division by zero on row 5: the batch kernel must report the same
  // Status the per-tuple path reports for the first failing row.
  std::vector<Tuple> tuples;
  for (int i = 0; i < 10; ++i) {
    tuples.push_back(Tuple({Value::Int(i == 5 ? 0 : i + 1)}));
  }
  auto expr = Expr::Binary(BinaryOp::kDiv, Lit(int64_t{100}), Col("x"));
  ASSERT_TRUE(expr->Bind(XSchema()).ok());
  auto compiled = CompileExpr(*expr);
  ASSERT_TRUE(compiled.ok());
  auto batch_result =
      compiled->EvalBatch(ColumnBatch::FromTuples(tuples));
  ASSERT_FALSE(batch_result.ok());
  auto row_result = compiled->Eval(tuples[5]);
  ASSERT_FALSE(row_result.ok());
  EXPECT_EQ(batch_result.status().ToString(),
            row_result.status().ToString());
}

TEST(VectorizedKernelTest, HashJoinKeyRunsSpanningBatchBoundaries) {
  // One key's matches straddle several input batches on both sides: 30
  // left rows of key 5 (chunked by 8 alongside non-matching and NULL
  // keys) against 9 right rows of key 5 chunked by 4.
  std::vector<Tuple> left, right;
  for (int i = 0; i < 30; ++i) left.push_back(Pair(5, i));
  for (int i = 0; i < 4; ++i) left.push_back(Pair(100 + i, i));
  left.push_back(Tuple({Value::Null(), Value::Int(-1)}));
  for (int i = 0; i < 9; ++i) right.push_back(Pair(5, 1000 + i));
  right.push_back(Tuple({Value::Null(), Value::Int(-2)}));
  right.push_back(Pair(200, 0));

  JoinCounters row_counters;
  auto expected = HashJoin(left, right, {{0, 0}}, nullptr, &row_counters);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->size(), 30u * 9u);

  JoinCounters vec_counters;
  auto batches = VectorizedHashJoin(
      ColumnBatch::Chunk(left, 8), ColumnBatch::Chunk(right, 4), {{0, 0}},
      /*batch_rows=*/16, nullptr, &vec_counters);
  ASSERT_TRUE(batches.ok()) << batches.status().ToString();
  std::vector<Tuple> flattened;
  for (const ColumnBatch& b : *batches) {
    for (Tuple& t : b.ToTuples()) flattened.push_back(std::move(t));
  }
  ASSERT_EQ(flattened.size(), expected->size());
  // Identical output order (probe order, insertion-order match lists).
  for (size_t i = 0; i < flattened.size(); ++i) {
    EXPECT_EQ(flattened[i].Compare((*expected)[i]), 0) << "row " << i;
  }
  EXPECT_EQ(vec_counters.hash_ops, row_counters.hash_ops);
  EXPECT_EQ(vec_counters.compare_ops, row_counters.compare_ops);
  EXPECT_EQ(vec_counters.pairs_examined, row_counters.pairs_examined);
  // Output respects the batch_rows bound.
  for (const ColumnBatch& b : *batches) EXPECT_LE(b.num_rows(), 16u);
}

class VectorizedExecutorTest : public ExecutorTest {
 protected:
  StatusOr<std::vector<Tuple>> ExecuteVectorized(const algebra::Plan& plan,
                                                 size_t batch_rows = 7) {
    ExecOptions opts;
    opts.exec_mode = ExecMode::kVectorized;
    opts.batch_rows = batch_rows;  // Odd size: forces ragged batches.
    Executor executor(&resolver_, opts);
    auto result = executor.Execute(plan);
    last_stats_ = executor.stats();
    return result;
  }
};

TEST_F(VectorizedExecutorTest, AggregateEdgesMatchRowPath) {
  // Grouped aggregates whose groups span batch boundaries, plus the
  // empty-input grand total, in both modes.
  std::vector<std::unique_ptr<Expr>> groups;
  groups.push_back(Col("dept"));
  std::vector<algebra::AggSpec> aggs;
  aggs.push_back({AggFunc::kCount, nullptr, "n"});
  aggs.push_back({AggFunc::kSum, Col("salary"), "total"});
  aggs.push_back({AggFunc::kMin, Col("salary"), "lo"});
  aggs.push_back({AggFunc::kMax, Col("salary"), "hi"});
  aggs.push_back({AggFunc::kAvg, Col("salary"), "avg"});
  auto grouped = AggregatePlan::Create(EmpScan(), std::move(groups),
                                       {"dept"}, std::move(aggs));
  ASSERT_TRUE(grouped.ok());
  auto row_out = Execute(**grouped);
  ASSERT_TRUE(row_out.ok());
  auto vec_out = ExecuteVectorized(**grouped);
  ASSERT_TRUE(vec_out.ok()) << vec_out.status().ToString();
  ASSERT_EQ(vec_out->size(), row_out->size());
  for (size_t i = 0; i < row_out->size(); ++i) {
    EXPECT_EQ((*vec_out)[i].Compare((*row_out)[i]), 0) << "group " << i;
  }
  EXPECT_GT(last_stats_.batches, 0u);

  // Empty input: COUNT = 0, SUM of nothing = NULL, identically.
  auto none = SelectPlan::Create(
      EmpScan(), Expr::Binary(BinaryOp::kLt, Col("id"), Lit(int64_t{0})));
  ASSERT_TRUE(none.ok());
  std::vector<algebra::AggSpec> empty_aggs;
  empty_aggs.push_back({AggFunc::kCount, nullptr, "n"});
  empty_aggs.push_back({AggFunc::kSum, Col("salary"), "total"});
  auto grand = AggregatePlan::Create(std::move(*none), {}, {},
                                     std::move(empty_aggs));
  ASSERT_TRUE(grand.ok());
  auto row_empty = Execute(**grand);
  auto vec_empty = ExecuteVectorized(**grand);
  ASSERT_TRUE(row_empty.ok());
  ASSERT_TRUE(vec_empty.ok());
  ASSERT_EQ(vec_empty->size(), 1u);
  EXPECT_EQ(vec_empty->front().Compare(row_empty->front()), 0);
}

TEST_F(VectorizedExecutorTest, FilterAndScanCountBatches) {
  auto plan = SelectPlan::Create(
      EmpScan(),
      Expr::Binary(BinaryOp::kLt, Col("salary"), Lit(int64_t{2000})));
  ASSERT_TRUE(plan.ok());
  auto row_out = Execute(**plan);
  ASSERT_TRUE(row_out.ok());
  auto vec_out = ExecuteVectorized(**plan);
  ASSERT_TRUE(vec_out.ok());
  ASSERT_EQ(vec_out->size(), row_out->size());
  for (size_t i = 0; i < row_out->size(); ++i) {
    EXPECT_EQ((*vec_out)[i].Compare((*row_out)[i]), 0);
  }
  // 30 rows in batches of 7 -> 5 scan batches (the last ragged).
  EXPECT_GT(last_stats_.batches, 0u);
}

TEST_F(VectorizedExecutorTest, InterpretedModeSilentlyStaysRow) {
  ExecOptions opts;
  opts.expr_mode = ExprMode::kInterpreted;
  opts.exec_mode = ExecMode::kVectorized;
  Executor executor(&resolver_, opts);
  auto out = executor.Execute(*EmpScan());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 30u);
  EXPECT_EQ(executor.stats().batches, 0u);  // Row path: no batches.
}

// --------------------------------- Distributed OLAP merge edge cases

/// Machine-level edge cases of the partial-aggregate merge and the
/// range-partitioned sort (DESIGN.md §14): fragments that contribute
/// nothing, NULL group keys (a group of their own, routed to consumer 0),
/// extreme group skew, and sorted runs that span exchange batch
/// boundaries. Each case runs in both execution modes.
class OlapEdgeTest : public ::testing::TestWithParam<ExecMode> {
 protected:
  std::unique_ptr<core::PrismaDb> MakeDb(
      std::function<void(core::MachineConfig&)> tweak = nullptr) {
    core::MachineConfig config;
    config.pes = 8;
    config.exec_mode = GetParam();
    if (tweak) tweak(config);
    return std::make_unique<core::PrismaDb>(config);
  }

  core::QueryResult MustExecute(core::PrismaDb& db, const std::string& sql) {
    auto result = db.Execute(sql);
    PRISMA_CHECK(result.ok()) << sql << " -> " << result.status().ToString();
    return std::move(result).value();
  }
};

TEST_P(OlapEdgeTest, EmptyFragmentsContributeEmptyPartials) {
  // 3 fragments but only 2 rows: at least one fragment pre-aggregates
  // nothing and its merge channels carry only EOS batches.
  auto db = MakeDb();
  MustExecute(*db, "CREATE TABLE t (id INT, g STRING, v INT) "
                   "FRAGMENTED BY HASH(id) INTO 3 FRAGMENTS");
  MustExecute(*db, "INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20)");
  const auto grouped = MustExecute(
      *db, "SELECT g, SUM(v) AS s FROM t GROUP BY g ORDER BY g");
  ASSERT_EQ(grouped.tuples.size(), 2u);
  EXPECT_EQ(grouped.tuples[0].at(0), Value::String("a"));
  EXPECT_EQ(grouped.tuples[0].at(1), Value::Int(10));
  EXPECT_EQ(grouped.tuples[1].at(0), Value::String("b"));
  EXPECT_EQ(grouped.tuples[1].at(1), Value::Int(20));
  const auto sorted =
      MustExecute(*db, "SELECT id, v FROM t ORDER BY v DESC, id");
  ASSERT_EQ(sorted.tuples.size(), 2u);
  EXPECT_EQ(sorted.tuples[0].at(1), Value::Int(20));
}

TEST_P(OlapEdgeTest, AllNullGroupKeysFormOneGroup) {
  auto db = MakeDb();
  MustExecute(*db, "CREATE TABLE t (id INT, g STRING, v INT) "
                   "FRAGMENTED BY HASH(id) INTO 4 FRAGMENTS");
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 20; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", NULL, " + std::to_string(i) + ")";
  }
  MustExecute(*db, insert);
  const auto grouped = MustExecute(
      *db, "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY g");
  // Every partial lands on merge consumer 0 (NULL keys keep a stable
  // route), and the NULL group survives the merge as a single group.
  ASSERT_EQ(grouped.tuples.size(), 1u);
  EXPECT_TRUE(grouped.tuples[0].at(0).is_null());
  EXPECT_EQ(grouped.tuples[0].at(1), Value::Int(20));
  EXPECT_EQ(grouped.tuples[0].at(2), Value::Int(190));
}

TEST_P(OlapEdgeTest, SingleGroupSkewAgreesAcrossStrategies) {
  // Every row shares one group key: the direct strategy funnels all base
  // rows into one merge consumer, the pre-aggregate strategy ships one
  // partial per fragment. Both must agree with the exact totals.
  using Strategy = gdh::OptimizerRules::OlapAggStrategy;
  for (const Strategy strategy : {Strategy::kPreAggregate, Strategy::kDirect}) {
    auto db = MakeDb([&](core::MachineConfig& config) {
      config.rules.olap_agg_strategy = strategy;
    });
    MustExecute(*db, "CREATE TABLE t (id INT, g STRING, v INT) "
                     "FRAGMENTED BY HASH(id) INTO 4 FRAGMENTS");
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = 0; i < 80; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i) + ", 'hot', " + std::to_string(i % 7) +
                ")";
    }
    MustExecute(*db, insert);
    const auto grouped = MustExecute(
        *db,
        "SELECT g, COUNT(*) AS n, SUM(v) AS s, MIN(v), MAX(v) FROM t "
        "GROUP BY g");
    ASSERT_EQ(grouped.tuples.size(), 1u);
    EXPECT_EQ(grouped.tuples[0].at(0), Value::String("hot"));
    EXPECT_EQ(grouped.tuples[0].at(1), Value::Int(80));
    // 11 full cycles of 0..6 (= 231) plus 0+1+2 for rows 77..79.
    EXPECT_EQ(grouped.tuples[0].at(2), Value::Int(234));
    EXPECT_EQ(grouped.tuples[0].at(3), Value::Int(0));
    EXPECT_EQ(grouped.tuples[0].at(4), Value::Int(6));
  }
}

TEST_P(OlapEdgeTest, SortRunsSpanBatchBoundaries) {
  // Tiny exchange batches force every sorted run through multiple frames
  // per channel; long runs of the leading key cross batch boundaries and
  // the unique trailing key pins tie order.
  auto db = MakeDb([](core::MachineConfig& config) {
    config.exchange_batch_rows = 4;
    config.exchange_credit_window = 2;
  });
  MustExecute(*db, "CREATE TABLE t (id INT, k INT) "
                   "FRAGMENTED BY HASH(id) INTO 3 FRAGMENTS");
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 60; ++i) {
    if (i > 0) insert += ", ";
    // Only 3 distinct leading keys -> runs of ~20 equal keys.
    insert += "(" + std::to_string(i) + ", " + std::to_string(i % 3) + ")";
  }
  MustExecute(*db, insert);
  const auto sorted = MustExecute(*db, "SELECT k, id FROM t ORDER BY k, id");
  ASSERT_EQ(sorted.tuples.size(), 60u);
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(sorted.tuples[i].at(0), Value::Int(i / 20));
    EXPECT_EQ(sorted.tuples[i].at(1), Value::Int((i % 20) * 3 + i / 20));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, OlapEdgeTest,
    ::testing::Values(ExecMode::kRow, ExecMode::kVectorized),
    [](const ::testing::TestParamInfo<ExecMode>& info) {
      return info.param == ExecMode::kRow ? "Row" : "Vectorized";
    });

}  // namespace
}  // namespace prisma::exec
