// Distributed-OLAP differential harness (DESIGN.md §14.6): every seeded
// workload of group-bys and sorts runs on a single-fragment machine (the
// reference — no distributed OLAP possible) and on multi-fragment
// machines with the multi-stage OLAP lowering enabled, in both execution
// modes. Every run must produce byte-identical answers. A second family
// of tests pins the acceptance criteria of the lowering itself: the
// canonical group-by gathers zero base tuples, its wire cost stays
// strictly below the base-tuple gather baseline, and the EXPLAIN output
// names the chosen stage structure.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/prisma_db.h"
#include "soak_repro.h"

namespace prisma::core {
namespace {

/// One seeded dataset: sales(id, region, amount, qty) with seed-varying
/// row count, group-key cardinality, NULL-region density and value
/// ranges. Amounts stay integral and small so every SUM/AVG is exact in
/// double arithmetic — partial-aggregate merges add the same integral
/// values in a different order, which only FP rounding could expose.
struct SalesRow {
  int id;
  int region;  // kNullRegion = NULL.
  int amount;
  int qty;
};
constexpr int kNullRegion = -1;

std::vector<SalesRow> RandomSales(uint64_t seed) {
  Rng rng(seed * 0x9e3779b9u + 41);
  const int rows = static_cast<int>(rng.UniformInt(24, 120));
  const int regions = static_cast<int>(rng.UniformInt(2, 7));
  std::vector<SalesRow> sales;
  sales.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    SalesRow row;
    row.id = i;
    row.region = rng.Uniform(8) == 0 ? kNullRegion
                                     : static_cast<int>(rng.Uniform(regions));
    row.amount = static_cast<int>(rng.UniformInt(0, 400));
    row.qty = static_cast<int>(rng.UniformInt(1, 9));
    sales.push_back(row);
  }
  return sales;
}

std::string SalesInsert(const std::vector<SalesRow>& sales) {
  std::string sql = "INSERT INTO sales VALUES ";
  for (size_t i = 0; i < sales.size(); ++i) {
    const SalesRow& row = sales[i];
    if (i > 0) sql += ", ";
    sql += '(' + std::to_string(row.id) + ", ";
    sql += row.region == kNullRegion
               ? std::string("NULL")
               : "'region" + std::to_string(row.region) + "'";
    sql += ", " + std::to_string(row.amount) + ", " +
           std::to_string(row.qty) + ')';
  }
  return sql;
}

QueryResult MustExecute(PrismaDb& db, const std::string& sql) {
  auto result = db.Execute(sql);
  PRISMA_CHECK(result.ok()) << sql << ": " << result.status().ToString();
  return std::move(result).value();
}

/// Byte rendering of a result. ORDER BY queries carry a unique trailing
/// sort key, and group-by outputs are canonically ordered by the
/// coordinator, so no extra canonicalization is needed — the comparison
/// is over the exact tuple sequence.
std::string Rendered(const QueryResult& result) {
  std::string out;
  for (const Tuple& t : result.tuples) {
    out += t.ToString();
    out += '\n';
  }
  return out;
}

/// The workload: group-bys over every aggregate (AVG decomposes into
/// SUM+COUNT partials), a filtered group-by that can leave fragments
/// empty, and distributed sorts whose trailing key (unique id) pins the
/// order of ties across partitioning strategies.
const char* kQueries[] = {
    "SELECT region, COUNT(*) AS n, SUM(amount) AS total FROM sales "
    "GROUP BY region ORDER BY region",
    "SELECT region, AVG(amount) AS mean, MIN(qty) AS lo, MAX(qty) AS hi "
    "FROM sales GROUP BY region ORDER BY region",
    "SELECT id, amount FROM sales ORDER BY amount, id",
    "SELECT id, amount, qty FROM sales WHERE qty >= 3 "
    "ORDER BY qty DESC, id",
    "SELECT region, SUM(qty) AS q FROM sales WHERE amount < 200 "
    "GROUP BY region ORDER BY region",
};

/// Runs the whole workload on one machine configuration.
std::vector<std::string> RunWorkload(const std::vector<SalesRow>& sales,
                                     int fragments, exec::ExecMode mode) {
  MachineConfig config;
  config.pes = 8;
  config.exec_mode = mode;
  PrismaDb db(config);
  if (fragments > 1) {
    MustExecute(db, StrFormat("CREATE TABLE sales (id INT, region STRING, "
                              "amount INT, qty INT) FRAGMENTED BY HASH(id) "
                              "INTO %d FRAGMENTS",
                              fragments));
  } else {
    MustExecute(db,
                "CREATE TABLE sales (id INT, region STRING, amount INT, "
                "qty INT)");
  }
  MustExecute(db, SalesInsert(sales));
  std::vector<std::string> results;
  for (const char* sql : kQueries) {
    results.push_back(Rendered(MustExecute(db, sql)));
  }
  return results;
}

void CheckSeed(uint64_t seed) {
  const std::vector<SalesRow> sales = RandomSales(seed);
  const std::vector<std::string> reference =
      RunWorkload(sales, /*fragments=*/1, exec::ExecMode::kRow);
  for (const int fragments : {1, 3, 7}) {
    for (const exec::ExecMode mode :
         {exec::ExecMode::kRow, exec::ExecMode::kVectorized}) {
      SCOPED_TRACE(StrFormat(
          "fragments=%d mode=%s", fragments,
          mode == exec::ExecMode::kRow ? "row" : "vectorized"));
      const std::vector<std::string> got = RunWorkload(sales, fragments, mode);
      ASSERT_EQ(reference.size(), got.size());
      for (size_t q = 0; q < reference.size(); ++q) {
        SCOPED_TRACE(StrFormat("query=%zu: %s", q, kQueries[q]));
        EXPECT_EQ(reference[q], got[q]);
      }
    }
  }
}

TEST(OlapDiffTest, SeededWorkloadsLow) {
  for (const uint64_t seed : SoakSeeds(1, 17)) {
    PRISMA_SEED_REPRO("OlapDiffTest.SeededWorkloadsLow", seed);
    CheckSeed(seed);
  }
}

TEST(OlapDiffTest, SeededWorkloadsMid) {
  for (const uint64_t seed : SoakSeeds(18, 34)) {
    PRISMA_SEED_REPRO("OlapDiffTest.SeededWorkloadsMid", seed);
    CheckSeed(seed);
  }
}

TEST(OlapDiffTest, SeededWorkloadsHigh) {
  for (const uint64_t seed : SoakSeeds(35, 50)) {
    PRISMA_SEED_REPRO("OlapDiffTest.SeededWorkloadsHigh", seed);
    CheckSeed(seed);
  }
}

// -------------------------------------------------- Acceptance criteria

/// Loads the canonical emp table: 60 rows over 3 departments, 4
/// fragments (4 distinct merge consumers).
void LoadEmp(PrismaDb& db) {
  MustExecute(db, "CREATE TABLE emp (id INT, dept STRING, salary INT) "
                  "FRAGMENTED BY HASH(id) INTO 4 FRAGMENTS");
  const char* depts[] = {"eng", "hr", "sales"};
  std::string insert = "INSERT INTO emp VALUES ";
  for (int i = 0; i < 60; ++i) {
    if (i > 0) insert += ", ";
    insert += StrFormat("(%d, '%s', %d)", i, depts[i % 3], 1000 + i);
  }
  MustExecute(db, insert);
}

constexpr const char* kCanonicalQuery =
    "SELECT dept, SUM(salary) AS total FROM emp GROUP BY dept ORDER BY dept";

/// The ISSUE's canonical acceptance check: the distributed group-by
/// gathers only final groups (zero base tuples at the coordinator), and
/// its total wire cost — shuffle plus final gather — is strictly below
/// the bits a base-tuple gather of the same query puts on the wire.
TEST(OlapDiffTest, CanonicalGroupByShipsNoBaseTuples) {
  // Distributed-OLAP machine.
  MachineConfig olap_config;
  olap_config.pes = 8;
  PrismaDb olap_db(olap_config);
  LoadEmp(olap_db);
  const QueryResult dist = MustExecute(olap_db, kCanonicalQuery);
  ASSERT_EQ(dist.tuples.size(), 3u);

  // EXPLAIN names the stage structure.
  const QueryResult plan =
      MustExecute(olap_db, std::string("EXPLAIN ") + kCanonicalQuery);
  std::string text;
  for (const Tuple& t : plan.tuples) text += t.ToString() + "\n";
  EXPECT_NE(text.find("olap group-by over emp"), std::string::npos) << text;
  EXPECT_NE(text.find("pre-aggregate + shuffle-by-key"), std::string::npos)
      << text;
  EXPECT_NE(text.find("Exchange hash("), std::string::npos) << text;

  // Zero base tuples at the coordinator: only the 3 final groups arrive
  // (one gather counter tick per group; EXPLAIN executes nothing).
  EXPECT_EQ(olap_db.metrics().CounterTotal("query.tuples_gathered"), 3u);
  EXPECT_EQ(olap_db.metrics().CounterTotal("olap.parts"), 1u);
  const uint64_t shuffle_bits =
      olap_db.metrics().CounterTotal("olap.shuffle_bits");
  const uint64_t gather_bits =
      olap_db.metrics().CounterTotal("olap.gather_bits");
  EXPECT_GT(shuffle_bits, 0u);
  EXPECT_GT(gather_bits, 0u);

  // Gather baseline: same machine shape, OLAP lowering and aggregate
  // pushdown off — the coordinator pulls all 60 base tuples.
  MachineConfig base_config;
  base_config.pes = 8;
  base_config.rules.distributed_olap = false;
  base_config.rules.aggregate_pushdown = false;
  PrismaDb base_db(base_config);
  LoadEmp(base_db);
  const QueryResult gathered = MustExecute(base_db, kCanonicalQuery);
  EXPECT_EQ(Rendered(dist), Rendered(gathered));
  EXPECT_EQ(base_db.metrics().CounterTotal("query.tuples_gathered"), 60u);
  const uint64_t baseline_bits = static_cast<uint64_t>(
      base_db.metrics().GaugeValue("query.last_gather_bits"));
  ASSERT_GT(baseline_bits, 0u);
  EXPECT_LT(shuffle_bits + gather_bits, baseline_bits);
}

/// Both shipping strategies of the distributed group-by return identical
/// answers, and EXPLAIN names the strategy in force.
TEST(OlapDiffTest, AggStrategiesAgreeAndExplainNamesThem) {
  using Strategy = gdh::OptimizerRules::OlapAggStrategy;
  const struct {
    Strategy strategy;
    const char* expect;
  } kCases[] = {
      {Strategy::kPreAggregate, "pre-aggregate + shuffle-by-key"},
      {Strategy::kDirect, "direct + shuffle-by-key"},
  };
  std::string reference;
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.expect);
    MachineConfig config;
    config.pes = 8;
    config.rules.olap_agg_strategy = c.strategy;
    PrismaDb db(config);
    LoadEmp(db);
    const QueryResult result = MustExecute(db, kCanonicalQuery);
    if (reference.empty()) {
      reference = Rendered(result);
    } else {
      EXPECT_EQ(reference, Rendered(result));
    }
    const QueryResult plan =
        MustExecute(db, std::string("EXPLAIN ") + kCanonicalQuery);
    std::string text;
    for (const Tuple& t : plan.tuples) text += t.ToString() + "\n";
    EXPECT_NE(text.find(c.expect), std::string::npos) << text;
  }
}

/// Distributed sort: EXPLAIN names the sample-based range partitioning
/// and the sampled quantile rows are accounted in olap.sample_rows.
TEST(OlapDiffTest, DistributedSortSamplesRanges) {
  MachineConfig config;
  config.pes = 8;
  PrismaDb db(config);
  LoadEmp(db);
  const QueryResult plan = MustExecute(
      db, "EXPLAIN SELECT id, salary FROM emp ORDER BY salary DESC, id");
  std::string text;
  for (const Tuple& t : plan.tuples) text += t.ToString() + "\n";
  EXPECT_NE(text.find("olap sort over emp"), std::string::npos) << text;
  EXPECT_NE(text.find("sample-based range partition"), std::string::npos)
      << text;
  EXPECT_NE(text.find("Exchange range("), std::string::npos) << text;

  const QueryResult sorted =
      MustExecute(db, "SELECT id, salary FROM emp ORDER BY salary DESC, id");
  ASSERT_EQ(sorted.tuples.size(), 60u);
  for (size_t i = 1; i < sorted.tuples.size(); ++i) {
    EXPECT_GE(sorted.tuples[i - 1].at(1).int_value(),
              sorted.tuples[i].at(1).int_value());
  }
  // 4 fragments each sampled at min(fragment rows, quantile budget).
  const uint64_t sampled = db.metrics().CounterTotal("olap.sample_rows");
  EXPECT_GT(sampled, 0u);
  EXPECT_LE(sampled, 4 * config.rules.olap_sample_rows);
}

/// Disabling the lowering removes every olap part and metric — the knob
/// is a true ablation switch (E14's baseline column).
TEST(OlapDiffTest, DisablingLoweringRestoresGatherPlan) {
  MachineConfig config;
  config.pes = 8;
  config.rules.distributed_olap = false;
  PrismaDb db(config);
  LoadEmp(db);
  const QueryResult plan =
      MustExecute(db, std::string("EXPLAIN ") + kCanonicalQuery);
  std::string text;
  for (const Tuple& t : plan.tuples) text += t.ToString() + "\n";
  EXPECT_EQ(text.find("olap group-by"), std::string::npos) << text;
  MustExecute(db, kCanonicalQuery);
  EXPECT_EQ(db.metrics().CounterTotal("olap.parts"), 0u);
  EXPECT_EQ(db.metrics().CounterTotal("olap.shuffle_bits"), 0u);
}

}  // namespace
}  // namespace prisma::core
