#include <gtest/gtest.h>

#include <string>

#include "net/network.h"
#include "net/topology.h"
#include "net/traffic.h"
#include "sim/simulator.h"

namespace prisma::net {
namespace {

// -------------------------------------------------------------- Topology

TEST(TopologyTest, MeshShape) {
  Topology t = Topology::Mesh(8, 8);
  EXPECT_EQ(t.num_nodes(), 64);
  EXPECT_EQ(t.max_degree(), 4);   // Paper: 4 links per PE.
  // Corner node 0 has 2 neighbours, edge nodes 3, interior 4.
  EXPECT_EQ(t.neighbors(0).size(), 2u);
  EXPECT_EQ(t.neighbors(1).size(), 3u);
  EXPECT_EQ(t.neighbors(9).size(), 4u);
  EXPECT_EQ(t.Diameter(), 14);    // (8-1) + (8-1).
}

TEST(TopologyTest, TorusShape) {
  Topology t = Topology::Torus(8, 8);
  EXPECT_EQ(t.num_nodes(), 64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(t.neighbors(i).size(), 4u);
  EXPECT_EQ(t.Diameter(), 8);     // 4 + 4.
}

TEST(TopologyTest, RingShape) {
  Topology t = Topology::Ring(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t.neighbors(i).size(), 2u);
  EXPECT_EQ(t.Diameter(), 5);
  EXPECT_EQ(t.Distance(0, 5), 5);
  EXPECT_EQ(t.Distance(0, 9), 1);
}

TEST(TopologyTest, ChordalRingHasDegreeFourAndShortcuts) {
  Topology t = Topology::ChordalRing(64, 8);
  EXPECT_EQ(t.num_nodes(), 64);
  EXPECT_EQ(t.max_degree(), 4);   // Paper's chordal-ring variant.
  // Chords shorten long paths well below the plain ring's diameter (32).
  EXPECT_LT(t.Diameter(), 12);
  EXPECT_EQ(t.Distance(0, 8), 1);  // Direct chord.
}

TEST(TopologyTest, FullyConnectedDiameterOne) {
  Topology t = Topology::FullyConnected(8);
  EXPECT_EQ(t.Diameter(), 1);
  EXPECT_DOUBLE_EQ(t.AverageDistance(), 1.0);
}

TEST(TopologyTest, NextHopWalksShortestPath) {
  Topology t = Topology::Mesh(4, 4);
  for (int src = 0; src < 16; ++src) {
    for (int dst = 0; dst < 16; ++dst) {
      int node = src;
      int hops = 0;
      while (node != dst) {
        node = t.NextHop(node, dst);
        ++hops;
        ASSERT_LE(hops, 16) << "routing loop " << src << "->" << dst;
      }
      EXPECT_EQ(hops, t.Distance(src, dst)) << src << "->" << dst;
    }
  }
}

TEST(TopologyTest, DistanceSymmetricOnUndirectedGraphs) {
  Topology t = Topology::ChordalRing(32, 5);
  for (int a = 0; a < 32; ++a) {
    for (int b = 0; b < 32; ++b) {
      EXPECT_EQ(t.Distance(a, b), t.Distance(b, a));
    }
  }
}

TEST(TopologyTest, AverageDistanceOrderingAcrossTopologies) {
  // More connectivity => shorter average paths.
  const double full = Topology::FullyConnected(64).AverageDistance();
  const double torus = Topology::Torus(8, 8).AverageDistance();
  const double mesh = Topology::Mesh(8, 8).AverageDistance();
  const double ring = Topology::Ring(64).AverageDistance();
  EXPECT_LT(full, torus);
  EXPECT_LT(torus, mesh);
  EXPECT_LT(mesh, ring);
}

// -------------------------------------------------------------- Network

TEST(NetworkTest, DeliversWithSerializationAndPropagationDelay) {
  sim::Simulator sim;
  LinkParams params;
  params.bandwidth_bps = 10'000'000;
  params.propagation_ns = 1'000;
  Network net(&sim, Topology::Mesh(2, 2), params);

  sim::SimTime delivered_at = -1;
  net.SetReceiver(1, [&](const Message& m) {
    delivered_at = sim.now();
    EXPECT_EQ(m.src, 0);
    EXPECT_EQ(m.dst, 1);
  });
  net.SendPacket(0, 1);
  sim.Run();
  // 256 bits / 10 Mbit/s = 25.6 us -> 25600 ns, + 1000 ns propagation.
  EXPECT_EQ(delivered_at, 26'600);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
  EXPECT_EQ(net.stats().total_latency_ns, 26'600);
}

TEST(NetworkTest, MultiHopLatencyScalesWithDistance) {
  auto latency_to = [](NodeId dst) {
    sim::Simulator sim;
    Network net(&sim, Topology::Ring(8), LinkParams());
    sim::SimTime t = -1;
    net.SetReceiver(dst, [&](const Message&) { t = sim.now(); });
    net.SendPacket(0, dst);
    sim.Run();
    return t;
  };
  const sim::SimTime t1 = latency_to(1);
  const sim::SimTime t4 = latency_to(4);
  ASSERT_GT(t1, 0);
  ASSERT_GT(t4, 0);
  // 4 hops vs 1 hop: the distant delivery takes exactly 4x as long under
  // store-and-forward with no contention.
  EXPECT_NEAR(static_cast<double>(t4) / t1, 4.0, 0.01);
}

TEST(NetworkTest, LinkContentionSerializesMessages) {
  sim::Simulator sim;
  Network net(&sim, Topology::Ring(4), LinkParams());
  std::vector<sim::SimTime> deliveries;
  net.SetReceiver(1, [&](const Message&) { deliveries.push_back(sim.now()); });
  // Two packets queued on the same link back to back.
  net.SendPacket(0, 1);
  net.SendPacket(0, 1);
  sim.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  // Second waits for the first's serialization (25.6us), not propagation.
  EXPECT_EQ(deliveries[1] - deliveries[0], 25'600);
  EXPECT_GE(net.stats().max_link_backlog, 2);
}

TEST(NetworkTest, LocalDeliveryBypassesLinks) {
  sim::Simulator sim;
  Network net(&sim, Topology::Mesh(2, 2), LinkParams());
  bool got = false;
  net.SetReceiver(2, [&](const Message&) { got = true; });
  net.Send(2, 2, 1024, std::any());
  sim.Run();
  EXPECT_TRUE(got);
  EXPECT_EQ(net.stats().link_bits, 0);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
}

TEST(NetworkTest, LargeMessageOccupiesLinkLonger) {
  sim::Simulator sim;
  Network net(&sim, Topology::Ring(4), LinkParams());
  sim::SimTime small_t = -1, big_t = -1;
  {
    net.SetReceiver(1, [&](const Message& m) {
      if (m.size_bits == 256) small_t = sim.now() - m.sent_at;
      else big_t = sim.now() - m.sent_at;
    });
  }
  net.Send(0, 1, 256, std::any());
  sim.Run();
  net.Send(0, 1, 256 * 100, std::any());
  sim.Run();
  EXPECT_GT(big_t, small_t * 50);
}

TEST(NetworkTest, LinkBitsCountsEveryHop) {
  sim::Simulator sim;
  Network net(&sim, Topology::Ring(8), LinkParams());
  net.SendPacket(0, 4);  // 4 hops.
  sim.Run();
  EXPECT_EQ(net.stats().link_bits, 4 * 256);
}

// -------------------------------------------------------------- Traffic

TEST(TrafficTest, DeterministicForSeed) {
  Topology topo = Topology::Mesh(4, 4);
  TrafficConfig cfg;
  cfg.offered_packets_per_sec_per_pe = 5'000;
  cfg.warmup_ns = 5 * sim::kNanosPerMilli;
  cfg.measure_ns = 20 * sim::kNanosPerMilli;
  cfg.seed = 3;
  TrafficResult a = RunSyntheticTraffic(topo, LinkParams(), cfg);
  TrafficResult b = RunSyntheticTraffic(topo, LinkParams(), cfg);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_DOUBLE_EQ(a.average_latency_us, b.average_latency_us);
  EXPECT_GT(a.packets_delivered, 0u);
}

TEST(TrafficTest, LightLoadDeliversOffered) {
  TrafficConfig cfg;
  cfg.offered_packets_per_sec_per_pe = 2'000;
  cfg.warmup_ns = 10 * sim::kNanosPerMilli;
  cfg.measure_ns = 50 * sim::kNanosPerMilli;
  TrafficResult r =
      RunSyntheticTraffic(Topology::Mesh(8, 8), LinkParams(), cfg);
  // Under light load the network delivers what is offered (within Poisson
  // noise over the measurement window).
  EXPECT_NEAR(r.delivered_packets_per_sec_per_pe, 2'000, 200);
  EXPECT_GT(r.average_latency_us, 0);
}

TEST(TrafficTest, SaturationCapsThroughput) {
  TrafficConfig low;
  low.offered_packets_per_sec_per_pe = 5'000;
  TrafficConfig high = low;
  high.offered_packets_per_sec_per_pe = 200'000;
  const Topology topo = Topology::Mesh(8, 8);
  TrafficResult rl = RunSyntheticTraffic(topo, LinkParams(), low);
  TrafficResult rh = RunSyntheticTraffic(topo, LinkParams(), high);
  // Delivered throughput saturates far below the absurd offered load, and
  // latency explodes past saturation.
  EXPECT_LT(rh.delivered_packets_per_sec_per_pe, 100'000);
  EXPECT_GT(rh.average_latency_us, 10 * rl.average_latency_us);
  EXPECT_GT(rh.peak_link_utilization, 0.95);
}

TEST(TrafficTest, NeighborPatternOutperformsTranspose) {
  TrafficConfig cfg;
  cfg.offered_packets_per_sec_per_pe = 20'000;
  TrafficConfig nb = cfg;
  nb.pattern = TrafficPattern::kNeighbor;
  TrafficConfig tr = cfg;
  tr.pattern = TrafficPattern::kTranspose;
  const Topology topo = Topology::Mesh(8, 8);
  TrafficResult rn = RunSyntheticTraffic(topo, LinkParams(), nb);
  TrafficResult rt = RunSyntheticTraffic(topo, LinkParams(), tr);
  // Single-hop traffic sustains the load; transpose saturates the bisection.
  EXPECT_GT(rn.delivered_packets_per_sec_per_pe,
            rt.delivered_packets_per_sec_per_pe);
}

TEST(TrafficTest, HotspotCongestsAroundTarget) {
  TrafficConfig cfg;
  cfg.pattern = TrafficPattern::kHotspot;
  cfg.hotspot_fraction = 0.5;
  cfg.offered_packets_per_sec_per_pe = 20'000;
  TrafficConfig uni = cfg;
  uni.pattern = TrafficPattern::kUniform;
  const Topology topo = Topology::Mesh(8, 8);
  TrafficResult rh = RunSyntheticTraffic(topo, LinkParams(), cfg);
  TrafficResult ru = RunSyntheticTraffic(topo, LinkParams(), uni);
  EXPECT_LT(rh.delivered_packets_per_sec_per_pe,
            ru.delivered_packets_per_sec_per_pe);
}

// ---------------------------------------------------------------- Faults

TEST(FaultTest, DropProbabilityOneLosesEveryMessage) {
  sim::Simulator sim;
  Network net(&sim, Topology::FullyConnected(2));
  FaultPlan plan;
  plan.link.drop_probability = 1.0;
  net.SetFaultPlan(plan);
  int delivered = 0;
  net.SetReceiver(1, [&](const Message&) { ++delivered; });
  for (int i = 0; i < 10; ++i) net.SendPacket(0, 1);
  sim.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().dropped, 10u);
  EXPECT_EQ(net.stats().messages_delivered, 0u);
}

TEST(FaultTest, LoopbackIsNeverFaulted) {
  sim::Simulator sim;
  Network net(&sim, Topology::FullyConnected(2));
  FaultPlan plan;
  plan.link.drop_probability = 1.0;
  net.SetFaultPlan(plan);
  int delivered = 0;
  net.SetReceiver(0, [&](const Message&) { ++delivered; });
  net.SendPacket(0, 0);  // A PE's internal bus cannot lose messages.
  sim.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.stats().dropped, 0u);
}

TEST(FaultTest, DuplicatesInjectExtraDeliveries) {
  sim::Simulator sim;
  Network net(&sim, Topology::FullyConnected(2));
  FaultPlan plan;
  plan.seed = 11;
  plan.link.duplicate_probability = 0.5;
  net.SetFaultPlan(plan);
  int delivered = 0;
  net.SetReceiver(1, [&](const Message&) { ++delivered; });
  for (int i = 0; i < 100; ++i) net.SendPacket(0, 1);
  sim.Run();
  // On a single hop with no drops, every copy arrives: deliveries are the
  // originals plus exactly the injected duplicates.
  EXPECT_GT(net.stats().duplicated, 0u);
  EXPECT_EQ(static_cast<uint64_t>(delivered), 100 + net.stats().duplicated);
}

TEST(FaultTest, JitterAddsExactlyTheDrawnDelay) {
  auto total_latency = [](const FaultPlan* plan, sim::SimTime* delayed) {
    sim::Simulator sim;
    Network net(&sim, Topology::FullyConnected(2));
    if (plan != nullptr) net.SetFaultPlan(*plan);
    net.SetReceiver(1, [](const Message&) {});
    for (int i = 0; i < 8; ++i) net.SendPacket(0, 1);
    sim.Run();
    *delayed = net.stats().delayed_ns;
    return net.stats().total_latency_ns;
  };
  sim::SimTime baseline_jitter = 0;
  const sim::SimTime baseline = total_latency(nullptr, &baseline_jitter);
  EXPECT_EQ(baseline_jitter, 0);

  FaultPlan plan;
  plan.seed = 5;
  plan.link.max_extra_delay_ns = 40'000;
  sim::SimTime jitter = 0;
  const sim::SimTime jittered = total_latency(&plan, &jitter);
  // Jitter stretches arrivals without occupying the link, so the latency
  // sum grows by exactly the drawn extra delay.
  EXPECT_GT(jitter, 0);
  EXPECT_EQ(jittered, baseline + jitter);
}

TEST(FaultTest, DownWindowDropsEverythingInside) {
  sim::Simulator sim;
  Network net(&sim, Topology::FullyConnected(2));
  FaultPlan plan;
  LinkDownWindow window;
  window.a = 0;
  window.b = 1;
  window.from_ns = 0;
  window.until_ns = sim::kNanosPerMilli;
  plan.down_windows.push_back(window);
  net.SetFaultPlan(plan);
  int delivered = 0;
  net.SetReceiver(0, [&](const Message&) { ++delivered; });
  net.SetReceiver(1, [&](const Message&) { ++delivered; });
  net.SendPacket(0, 1);                  // Inside the outage.
  net.SendPacket(1, 0);                  // Windows are bidirectional.
  sim.Schedule(2 * sim::kNanosPerMilli, [&] { net.SendPacket(0, 1); });
  sim.Run();
  EXPECT_EQ(delivered, 1);  // Only the post-outage send arrives.
  EXPECT_EQ(net.stats().dropped, 2u);
}

TEST(FaultTest, ExemptMessagesBypassFaultInjection) {
  sim::Simulator sim;
  Network net(&sim, Topology::FullyConnected(2));
  FaultPlan plan;
  plan.link.drop_probability = 1.0;
  net.SetFaultPlan(plan);
  net.SetFaultExempt([](const Message&) { return true; });
  int delivered = 0;
  net.SetReceiver(1, [&](const Message&) { ++delivered; });
  net.SendPacket(0, 1);
  sim.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.stats().dropped, 0u);
}

TEST(FaultTest, SameSeedSameOutcomeDifferentSeedDiverges) {
  struct Outcome {
    uint64_t delivered, dropped, duplicated;
    sim::SimTime delayed_ns, total_latency_ns;
    bool operator==(const Outcome& o) const {
      return delivered == o.delivered && dropped == o.dropped &&
             duplicated == o.duplicated && delayed_ns == o.delayed_ns &&
             total_latency_ns == o.total_latency_ns;
    }
  };
  auto run = [](uint64_t seed) {
    sim::Simulator sim;
    Network net(&sim, Topology::Mesh(2, 2));
    FaultPlan plan;
    plan.seed = seed;
    plan.link.drop_probability = 0.3;
    plan.link.duplicate_probability = 0.2;
    plan.link.max_extra_delay_ns = 20'000;
    net.SetFaultPlan(plan);
    for (int node = 0; node < 4; ++node) {
      net.SetReceiver(node, [](const Message&) {});
    }
    for (int i = 0; i < 100; ++i) net.SendPacket(i % 4, (i + 3) % 4);
    sim.Run();
    const Network::Stats& s = net.stats();
    return Outcome{s.messages_delivered, s.dropped, s.duplicated,
                   s.delayed_ns, s.total_latency_ns};
  };
  EXPECT_TRUE(run(42) == run(42));
  EXPECT_FALSE(run(42) == run(43));
}

TEST(NetworkTest, BacklogWatermarkCountsBackpressure) {
  sim::Simulator sim;
  LinkParams params;
  params.max_link_backlog = 2;
  Network net(&sim, Topology::FullyConnected(2), params);
  int delivered = 0;
  net.SetReceiver(1, [&](const Message&) { ++delivered; });
  for (int i = 0; i < 10; ++i) net.SendPacket(0, 1);
  sim.Run();
  // The first two sends fit under the watermark; the other eight trip it
  // but are still queued (shedding is opt-in).
  EXPECT_EQ(net.stats().backpressure, 8u);
  EXPECT_EQ(delivered, 10);
}

TEST(NetworkTest, BacklogWatermarkCanShedLoad) {
  sim::Simulator sim;
  LinkParams params;
  params.max_link_backlog = 2;
  params.drop_on_backlog = true;
  Network net(&sim, Topology::FullyConnected(2), params);
  int delivered = 0;
  net.SetReceiver(1, [&](const Message&) { ++delivered; });
  for (int i = 0; i < 10; ++i) net.SendPacket(0, 1);
  sim.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.stats().backpressure, 8u);
  EXPECT_EQ(net.stats().dropped, 8u);
}

TEST(NetworkTest, MissingReceiverIsCountedNotSilent) {
  sim::Simulator sim;
  Network net(&sim, Topology::FullyConnected(2));
  net.SendPacket(0, 1);  // Nobody installed a receiver at node 1.
  sim.Run();
  EXPECT_EQ(net.stats().no_receiver, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 0u);
}

}  // namespace
}  // namespace prisma::net
