file(REMOVE_RECURSE
  "CMakeFiles/genealogy.dir/genealogy.cpp.o"
  "CMakeFiles/genealogy.dir/genealogy.cpp.o.d"
  "genealogy"
  "genealogy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genealogy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
