
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/prisma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gdh/CMakeFiles/prisma_gdh.dir/DependInfo.cmake"
  "/root/repo/build/src/prismalog/CMakeFiles/prisma_prismalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/prisma_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/prisma_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/prisma_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/pool/CMakeFiles/prisma_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prisma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prisma_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prisma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prisma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
