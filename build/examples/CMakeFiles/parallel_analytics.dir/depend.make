# Empty dependencies file for parallel_analytics.
# This may be replaced when dependencies are built.
