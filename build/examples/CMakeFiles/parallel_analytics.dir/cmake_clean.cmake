file(REMOVE_RECURSE
  "CMakeFiles/parallel_analytics.dir/parallel_analytics.cpp.o"
  "CMakeFiles/parallel_analytics.dir/parallel_analytics.cpp.o.d"
  "parallel_analytics"
  "parallel_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
