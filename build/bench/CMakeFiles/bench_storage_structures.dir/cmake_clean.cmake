file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_structures.dir/bench_storage_structures.cc.o"
  "CMakeFiles/bench_storage_structures.dir/bench_storage_structures.cc.o.d"
  "bench_storage_structures"
  "bench_storage_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
