# Empty compiler generated dependencies file for bench_storage_structures.
# This may be replaced when dependencies are built.
