file(REMOVE_RECURSE
  "CMakeFiles/bench_main_memory.dir/bench_main_memory.cc.o"
  "CMakeFiles/bench_main_memory.dir/bench_main_memory.cc.o.d"
  "bench_main_memory"
  "bench_main_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_main_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
