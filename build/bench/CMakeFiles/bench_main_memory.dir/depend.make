# Empty dependencies file for bench_main_memory.
# This may be replaced when dependencies are built.
