file(REMOVE_RECURSE
  "CMakeFiles/bench_expression.dir/bench_expression.cc.o"
  "CMakeFiles/bench_expression.dir/bench_expression.cc.o.d"
  "bench_expression"
  "bench_expression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
