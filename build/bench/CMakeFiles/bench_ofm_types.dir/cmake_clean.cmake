file(REMOVE_RECURSE
  "CMakeFiles/bench_ofm_types.dir/bench_ofm_types.cc.o"
  "CMakeFiles/bench_ofm_types.dir/bench_ofm_types.cc.o.d"
  "bench_ofm_types"
  "bench_ofm_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ofm_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
