# Empty dependencies file for bench_ofm_types.
# This may be replaced when dependencies are built.
