# Empty compiler generated dependencies file for ofm_test.
# This may be replaced when dependencies are built.
