file(REMOVE_RECURSE
  "CMakeFiles/ofm_test.dir/ofm_test.cc.o"
  "CMakeFiles/ofm_test.dir/ofm_test.cc.o.d"
  "ofm_test"
  "ofm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
