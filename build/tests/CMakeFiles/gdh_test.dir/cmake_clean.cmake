file(REMOVE_RECURSE
  "CMakeFiles/gdh_test.dir/gdh_test.cc.o"
  "CMakeFiles/gdh_test.dir/gdh_test.cc.o.d"
  "gdh_test"
  "gdh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
