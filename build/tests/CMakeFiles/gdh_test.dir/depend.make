# Empty dependencies file for gdh_test.
# This may be replaced when dependencies are built.
