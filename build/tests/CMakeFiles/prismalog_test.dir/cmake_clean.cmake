file(REMOVE_RECURSE
  "CMakeFiles/prismalog_test.dir/prismalog_test.cc.o"
  "CMakeFiles/prismalog_test.dir/prismalog_test.cc.o.d"
  "prismalog_test"
  "prismalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prismalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
