# Empty compiler generated dependencies file for prismalog_test.
# This may be replaced when dependencies are built.
