# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;prisma_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;prisma_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;prisma_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pool_test "/root/repo/build/tests/pool_test")
set_tests_properties(pool_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;prisma_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;prisma_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(expr_test "/root/repo/build/tests/expr_test")
set_tests_properties(expr_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;prisma_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(exec_test "/root/repo/build/tests/exec_test")
set_tests_properties(exec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;prisma_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ofm_test "/root/repo/build/tests/ofm_test")
set_tests_properties(ofm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;prisma_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sql_test "/root/repo/build/tests/sql_test")
set_tests_properties(sql_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;prisma_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(prismalog_test "/root/repo/build/tests/prismalog_test")
set_tests_properties(prismalog_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;prisma_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;prisma_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gdh_test "/root/repo/build/tests/gdh_test")
set_tests_properties(gdh_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;prisma_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(algebra_test "/root/repo/build/tests/algebra_test")
set_tests_properties(algebra_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;prisma_test;/root/repo/tests/CMakeLists.txt;0;")
