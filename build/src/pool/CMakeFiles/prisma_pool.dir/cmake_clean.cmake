file(REMOVE_RECURSE
  "CMakeFiles/prisma_pool.dir/runtime.cc.o"
  "CMakeFiles/prisma_pool.dir/runtime.cc.o.d"
  "libprisma_pool.a"
  "libprisma_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
