file(REMOVE_RECURSE
  "libprisma_pool.a"
)
