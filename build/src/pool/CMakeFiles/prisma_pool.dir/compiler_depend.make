# Empty compiler generated dependencies file for prisma_pool.
# This may be replaced when dependencies are built.
