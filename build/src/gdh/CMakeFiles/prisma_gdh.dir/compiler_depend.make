# Empty compiler generated dependencies file for prisma_gdh.
# This may be replaced when dependencies are built.
