file(REMOVE_RECURSE
  "libprisma_gdh.a"
)
