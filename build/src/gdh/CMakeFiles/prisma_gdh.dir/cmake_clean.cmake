file(REMOVE_RECURSE
  "CMakeFiles/prisma_gdh.dir/data_dictionary.cc.o"
  "CMakeFiles/prisma_gdh.dir/data_dictionary.cc.o.d"
  "CMakeFiles/prisma_gdh.dir/distributed_plan.cc.o"
  "CMakeFiles/prisma_gdh.dir/distributed_plan.cc.o.d"
  "CMakeFiles/prisma_gdh.dir/fragmentation.cc.o"
  "CMakeFiles/prisma_gdh.dir/fragmentation.cc.o.d"
  "CMakeFiles/prisma_gdh.dir/gdh_process.cc.o"
  "CMakeFiles/prisma_gdh.dir/gdh_process.cc.o.d"
  "CMakeFiles/prisma_gdh.dir/lock_manager.cc.o"
  "CMakeFiles/prisma_gdh.dir/lock_manager.cc.o.d"
  "CMakeFiles/prisma_gdh.dir/messages.cc.o"
  "CMakeFiles/prisma_gdh.dir/messages.cc.o.d"
  "CMakeFiles/prisma_gdh.dir/ofm_process.cc.o"
  "CMakeFiles/prisma_gdh.dir/ofm_process.cc.o.d"
  "CMakeFiles/prisma_gdh.dir/optimizer.cc.o"
  "CMakeFiles/prisma_gdh.dir/optimizer.cc.o.d"
  "CMakeFiles/prisma_gdh.dir/query_process.cc.o"
  "CMakeFiles/prisma_gdh.dir/query_process.cc.o.d"
  "libprisma_gdh.a"
  "libprisma_gdh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_gdh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
