
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gdh/data_dictionary.cc" "src/gdh/CMakeFiles/prisma_gdh.dir/data_dictionary.cc.o" "gcc" "src/gdh/CMakeFiles/prisma_gdh.dir/data_dictionary.cc.o.d"
  "/root/repo/src/gdh/distributed_plan.cc" "src/gdh/CMakeFiles/prisma_gdh.dir/distributed_plan.cc.o" "gcc" "src/gdh/CMakeFiles/prisma_gdh.dir/distributed_plan.cc.o.d"
  "/root/repo/src/gdh/fragmentation.cc" "src/gdh/CMakeFiles/prisma_gdh.dir/fragmentation.cc.o" "gcc" "src/gdh/CMakeFiles/prisma_gdh.dir/fragmentation.cc.o.d"
  "/root/repo/src/gdh/gdh_process.cc" "src/gdh/CMakeFiles/prisma_gdh.dir/gdh_process.cc.o" "gcc" "src/gdh/CMakeFiles/prisma_gdh.dir/gdh_process.cc.o.d"
  "/root/repo/src/gdh/lock_manager.cc" "src/gdh/CMakeFiles/prisma_gdh.dir/lock_manager.cc.o" "gcc" "src/gdh/CMakeFiles/prisma_gdh.dir/lock_manager.cc.o.d"
  "/root/repo/src/gdh/messages.cc" "src/gdh/CMakeFiles/prisma_gdh.dir/messages.cc.o" "gcc" "src/gdh/CMakeFiles/prisma_gdh.dir/messages.cc.o.d"
  "/root/repo/src/gdh/ofm_process.cc" "src/gdh/CMakeFiles/prisma_gdh.dir/ofm_process.cc.o" "gcc" "src/gdh/CMakeFiles/prisma_gdh.dir/ofm_process.cc.o.d"
  "/root/repo/src/gdh/optimizer.cc" "src/gdh/CMakeFiles/prisma_gdh.dir/optimizer.cc.o" "gcc" "src/gdh/CMakeFiles/prisma_gdh.dir/optimizer.cc.o.d"
  "/root/repo/src/gdh/query_process.cc" "src/gdh/CMakeFiles/prisma_gdh.dir/query_process.cc.o" "gcc" "src/gdh/CMakeFiles/prisma_gdh.dir/query_process.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebra/CMakeFiles/prisma_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prisma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/prisma_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prisma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pool/CMakeFiles/prisma_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/prismalog/CMakeFiles/prisma_prismalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/prisma_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prisma_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prisma_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
