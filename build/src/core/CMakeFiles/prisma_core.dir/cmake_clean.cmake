file(REMOVE_RECURSE
  "CMakeFiles/prisma_core.dir/prisma_db.cc.o"
  "CMakeFiles/prisma_core.dir/prisma_db.cc.o.d"
  "libprisma_core.a"
  "libprisma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
