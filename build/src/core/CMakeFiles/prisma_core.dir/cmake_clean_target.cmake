file(REMOVE_RECURSE
  "libprisma_core.a"
)
