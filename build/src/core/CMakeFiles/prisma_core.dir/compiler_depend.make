# Empty compiler generated dependencies file for prisma_core.
# This may be replaced when dependencies are built.
