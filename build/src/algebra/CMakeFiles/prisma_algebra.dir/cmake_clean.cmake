file(REMOVE_RECURSE
  "CMakeFiles/prisma_algebra.dir/expr.cc.o"
  "CMakeFiles/prisma_algebra.dir/expr.cc.o.d"
  "CMakeFiles/prisma_algebra.dir/plan.cc.o"
  "CMakeFiles/prisma_algebra.dir/plan.cc.o.d"
  "libprisma_algebra.a"
  "libprisma_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
