# Empty compiler generated dependencies file for prisma_algebra.
# This may be replaced when dependencies are built.
