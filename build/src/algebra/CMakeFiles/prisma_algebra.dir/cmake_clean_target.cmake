file(REMOVE_RECURSE
  "libprisma_algebra.a"
)
