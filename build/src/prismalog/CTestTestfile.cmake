# CMake generated Testfile for 
# Source directory: /root/repo/src/prismalog
# Build directory: /root/repo/build/src/prismalog
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
