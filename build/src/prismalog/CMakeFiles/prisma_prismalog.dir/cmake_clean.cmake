file(REMOVE_RECURSE
  "CMakeFiles/prisma_prismalog.dir/ast.cc.o"
  "CMakeFiles/prisma_prismalog.dir/ast.cc.o.d"
  "CMakeFiles/prisma_prismalog.dir/engine.cc.o"
  "CMakeFiles/prisma_prismalog.dir/engine.cc.o.d"
  "CMakeFiles/prisma_prismalog.dir/parser.cc.o"
  "CMakeFiles/prisma_prismalog.dir/parser.cc.o.d"
  "libprisma_prismalog.a"
  "libprisma_prismalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_prismalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
