file(REMOVE_RECURSE
  "libprisma_prismalog.a"
)
