# Empty compiler generated dependencies file for prisma_prismalog.
# This may be replaced when dependencies are built.
