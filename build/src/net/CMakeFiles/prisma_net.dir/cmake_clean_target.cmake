file(REMOVE_RECURSE
  "libprisma_net.a"
)
