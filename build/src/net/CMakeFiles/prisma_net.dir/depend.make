# Empty dependencies file for prisma_net.
# This may be replaced when dependencies are built.
