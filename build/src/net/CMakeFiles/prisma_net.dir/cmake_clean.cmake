file(REMOVE_RECURSE
  "CMakeFiles/prisma_net.dir/network.cc.o"
  "CMakeFiles/prisma_net.dir/network.cc.o.d"
  "CMakeFiles/prisma_net.dir/topology.cc.o"
  "CMakeFiles/prisma_net.dir/topology.cc.o.d"
  "CMakeFiles/prisma_net.dir/traffic.cc.o"
  "CMakeFiles/prisma_net.dir/traffic.cc.o.d"
  "libprisma_net.a"
  "libprisma_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
