file(REMOVE_RECURSE
  "libprisma_sim.a"
)
