file(REMOVE_RECURSE
  "CMakeFiles/prisma_sim.dir/simulator.cc.o"
  "CMakeFiles/prisma_sim.dir/simulator.cc.o.d"
  "libprisma_sim.a"
  "libprisma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
