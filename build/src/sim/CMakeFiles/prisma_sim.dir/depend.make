# Empty dependencies file for prisma_sim.
# This may be replaced when dependencies are built.
