
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/prisma_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/prisma_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/expr_compiler.cc" "src/exec/CMakeFiles/prisma_exec.dir/expr_compiler.cc.o" "gcc" "src/exec/CMakeFiles/prisma_exec.dir/expr_compiler.cc.o.d"
  "/root/repo/src/exec/expr_eval.cc" "src/exec/CMakeFiles/prisma_exec.dir/expr_eval.cc.o" "gcc" "src/exec/CMakeFiles/prisma_exec.dir/expr_eval.cc.o.d"
  "/root/repo/src/exec/join.cc" "src/exec/CMakeFiles/prisma_exec.dir/join.cc.o" "gcc" "src/exec/CMakeFiles/prisma_exec.dir/join.cc.o.d"
  "/root/repo/src/exec/ofm.cc" "src/exec/CMakeFiles/prisma_exec.dir/ofm.cc.o" "gcc" "src/exec/CMakeFiles/prisma_exec.dir/ofm.cc.o.d"
  "/root/repo/src/exec/transitive_closure.cc" "src/exec/CMakeFiles/prisma_exec.dir/transitive_closure.cc.o" "gcc" "src/exec/CMakeFiles/prisma_exec.dir/transitive_closure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebra/CMakeFiles/prisma_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prisma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pool/CMakeFiles/prisma_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prisma_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prisma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prisma_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
