# Empty dependencies file for prisma_exec.
# This may be replaced when dependencies are built.
