file(REMOVE_RECURSE
  "CMakeFiles/prisma_exec.dir/executor.cc.o"
  "CMakeFiles/prisma_exec.dir/executor.cc.o.d"
  "CMakeFiles/prisma_exec.dir/expr_compiler.cc.o"
  "CMakeFiles/prisma_exec.dir/expr_compiler.cc.o.d"
  "CMakeFiles/prisma_exec.dir/expr_eval.cc.o"
  "CMakeFiles/prisma_exec.dir/expr_eval.cc.o.d"
  "CMakeFiles/prisma_exec.dir/join.cc.o"
  "CMakeFiles/prisma_exec.dir/join.cc.o.d"
  "CMakeFiles/prisma_exec.dir/ofm.cc.o"
  "CMakeFiles/prisma_exec.dir/ofm.cc.o.d"
  "CMakeFiles/prisma_exec.dir/transitive_closure.cc.o"
  "CMakeFiles/prisma_exec.dir/transitive_closure.cc.o.d"
  "libprisma_exec.a"
  "libprisma_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
