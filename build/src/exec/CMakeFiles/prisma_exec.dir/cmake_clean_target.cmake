file(REMOVE_RECURSE
  "libprisma_exec.a"
)
