file(REMOVE_RECURSE
  "libprisma_storage.a"
)
