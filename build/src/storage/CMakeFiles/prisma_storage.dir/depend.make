# Empty dependencies file for prisma_storage.
# This may be replaced when dependencies are built.
