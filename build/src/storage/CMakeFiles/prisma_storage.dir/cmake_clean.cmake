file(REMOVE_RECURSE
  "CMakeFiles/prisma_storage.dir/btree_index.cc.o"
  "CMakeFiles/prisma_storage.dir/btree_index.cc.o.d"
  "CMakeFiles/prisma_storage.dir/hash_index.cc.o"
  "CMakeFiles/prisma_storage.dir/hash_index.cc.o.d"
  "CMakeFiles/prisma_storage.dir/memory_tracker.cc.o"
  "CMakeFiles/prisma_storage.dir/memory_tracker.cc.o.d"
  "CMakeFiles/prisma_storage.dir/relation.cc.o"
  "CMakeFiles/prisma_storage.dir/relation.cc.o.d"
  "CMakeFiles/prisma_storage.dir/stable_store.cc.o"
  "CMakeFiles/prisma_storage.dir/stable_store.cc.o.d"
  "libprisma_storage.a"
  "libprisma_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
