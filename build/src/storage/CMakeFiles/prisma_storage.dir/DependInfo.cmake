
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/btree_index.cc" "src/storage/CMakeFiles/prisma_storage.dir/btree_index.cc.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/btree_index.cc.o.d"
  "/root/repo/src/storage/hash_index.cc" "src/storage/CMakeFiles/prisma_storage.dir/hash_index.cc.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/hash_index.cc.o.d"
  "/root/repo/src/storage/memory_tracker.cc" "src/storage/CMakeFiles/prisma_storage.dir/memory_tracker.cc.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/memory_tracker.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/storage/CMakeFiles/prisma_storage.dir/relation.cc.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/relation.cc.o.d"
  "/root/repo/src/storage/stable_store.cc" "src/storage/CMakeFiles/prisma_storage.dir/stable_store.cc.o" "gcc" "src/storage/CMakeFiles/prisma_storage.dir/stable_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prisma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prisma_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
