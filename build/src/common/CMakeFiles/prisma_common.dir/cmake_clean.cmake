file(REMOVE_RECURSE
  "CMakeFiles/prisma_common.dir/schema.cc.o"
  "CMakeFiles/prisma_common.dir/schema.cc.o.d"
  "CMakeFiles/prisma_common.dir/serialize.cc.o"
  "CMakeFiles/prisma_common.dir/serialize.cc.o.d"
  "CMakeFiles/prisma_common.dir/status.cc.o"
  "CMakeFiles/prisma_common.dir/status.cc.o.d"
  "CMakeFiles/prisma_common.dir/str_util.cc.o"
  "CMakeFiles/prisma_common.dir/str_util.cc.o.d"
  "CMakeFiles/prisma_common.dir/tuple.cc.o"
  "CMakeFiles/prisma_common.dir/tuple.cc.o.d"
  "CMakeFiles/prisma_common.dir/value.cc.o"
  "CMakeFiles/prisma_common.dir/value.cc.o.d"
  "libprisma_common.a"
  "libprisma_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
