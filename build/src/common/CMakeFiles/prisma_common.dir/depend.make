# Empty dependencies file for prisma_common.
# This may be replaced when dependencies are built.
