file(REMOVE_RECURSE
  "CMakeFiles/prisma_sql.dir/ast.cc.o"
  "CMakeFiles/prisma_sql.dir/ast.cc.o.d"
  "CMakeFiles/prisma_sql.dir/binder.cc.o"
  "CMakeFiles/prisma_sql.dir/binder.cc.o.d"
  "CMakeFiles/prisma_sql.dir/lexer.cc.o"
  "CMakeFiles/prisma_sql.dir/lexer.cc.o.d"
  "CMakeFiles/prisma_sql.dir/parser.cc.o"
  "CMakeFiles/prisma_sql.dir/parser.cc.o.d"
  "libprisma_sql.a"
  "libprisma_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prisma_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
