# Empty compiler generated dependencies file for prisma_sql.
# This may be replaced when dependencies are built.
