file(REMOVE_RECURSE
  "libprisma_sql.a"
)
