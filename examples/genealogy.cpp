// Genealogy: PRISMAlog — the machine's logic-programming interface
// (paper §2.3). Recursive rules are translated to the extended relational
// algebra; the classic linear-recursion pair is detected and evaluated
// with the One-Fragment Managers' transitive-closure operator (§2.5).
//
//   $ ./examples/genealogy

#include <cstdio>

#include "common/str_util.h"
#include "core/prisma_db.h"

using prisma::StrFormat;
using prisma::core::MachineConfig;
using prisma::core::PrismaDb;

int main() {
  MachineConfig config;
  config.pes = 16;
  PrismaDb db(config);

  auto run = [&](const std::string& text, bool prismalog) {
    auto result =
        prismalog ? db.ExecutePrismalog(text) : db.Execute(text);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n  in: %s\n",
                   result.status().ToString().c_str(), text.c_str());
      std::exit(1);
    }
    return std::move(result).value();
  };

  run("CREATE TABLE parent (parent STRING, child STRING) "
      "FRAGMENTED BY HASH(parent) INTO 4 FRAGMENTS",
      false);
  // Three generations.
  const char* edges[] = {
      "('wilhelmina','juliana')", "('juliana','beatrix')",
      "('juliana','margriet')",   "('beatrix','alexander')",
      "('beatrix','friso')",      "('margriet','maurits')",
  };
  for (const char* edge : edges) {
    run(std::string("INSERT INTO parent VALUES ") + edge, false);
  }

  std::printf("== all descendants of juliana (recursive query) ==\n");
  auto descendants = run(
      "descendant(X, Y) :- parent(X, Y).\n"
      "descendant(X, Z) :- parent(X, Y), descendant(Y, Z).\n"
      "? descendant(juliana, D).",
      true);
  for (const auto& t : descendants.tuples) {
    std::printf("  %s\n", t.at(0).string_value().c_str());
  }
  std::printf("(evaluated in %.2f simulated ms via the TC operator)\n\n",
              static_cast<double>(descendants.response_time_ns) / 1e6);

  std::printf("== grandparents (non-recursive rule) ==\n");
  auto grandparents = run(
      "grandparent(G, C) :- parent(G, P), parent(P, C).\n"
      "? grandparent(G, C).",
      true);
  for (const auto& t : grandparents.tuples) {
    std::printf("  %s -> %s\n", t.at(0).string_value().c_str(),
                t.at(1).string_value().c_str());
  }

  std::printf("\n== leaves: people with no children (stratified negation) ==\n");
  auto leaves = run(
      "has_child(X) :- parent(X, Y).\n"
      "leaf(X) :- parent(Y, X), not has_child(X).\n"
      "? leaf(X).",
      true);
  for (const auto& t : leaves.tuples) {
    std::printf("  %s\n", t.at(0).string_value().c_str());
  }

  std::printf("\n== is friso a descendant of wilhelmina? (ground query) ==\n");
  auto ground = run(
      "descendant(X, Y) :- parent(X, Y).\n"
      "descendant(X, Z) :- parent(X, Y), descendant(Y, Z).\n"
      "? descendant(wilhelmina, friso).",
      true);
  std::printf("  %s\n", ground.tuples.front().at(0).ToString().c_str());
  return 0;
}
