// Bank: distributed transactions on the PRISMA machine — explicit
// BEGIN/COMMIT, two-phase commit across fragments, concurrent conflicting
// clients serialized by the GDH's lock manager, and crash recovery of a
// fragment from its write-ahead log.
//
//   $ ./examples/bank

#include <cstdio>

#include "common/str_util.h"
#include "core/prisma_db.h"

using prisma::StrFormat;
using prisma::core::MachineConfig;
using prisma::core::PrismaDb;

namespace {

void Check(const prisma::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

int64_t TotalBalance(PrismaDb& db) {
  auto result = db.Execute("SELECT SUM(balance) FROM account");
  Check(result.status(), "sum");
  return result->tuples.front().at(0).int_value();
}

}  // namespace

int main() {
  MachineConfig config;
  config.pes = 16;
  PrismaDb db(config);

  Check(db.Execute("CREATE TABLE account (id INT, owner STRING, balance INT) "
                   "FRAGMENTED BY HASH(id) INTO 8 FRAGMENTS")
            .status(),
        "create");
  for (int i = 0; i < 20; ++i) {
    Check(db.Execute(StrFormat(
                         "INSERT INTO account VALUES (%d, 'cust%d', 1000)", i,
                         i))
              .status(),
          "insert");
  }
  std::printf("opened 20 accounts, total balance %lld\n",
              static_cast<long long>(TotalBalance(db)));

  // --- A transfer as an explicit transaction (atomic across fragments).
  auto session = db.OpenSession();
  Check(session.Execute("BEGIN").status(), "begin");
  Check(session.Execute("UPDATE account SET balance = balance - 250 "
                        "WHERE id = 3")
            .status(),
        "debit");
  Check(session.Execute("UPDATE account SET balance = balance + 250 "
                        "WHERE id = 11")
            .status(),
        "credit");
  Check(session.Execute("COMMIT").status(), "commit");
  std::printf("transferred 250 from account 3 to 11; total still %lld\n",
              static_cast<long long>(TotalBalance(db)));

  // --- An aborted transfer leaves no trace.
  Check(session.Execute("BEGIN").status(), "begin2");
  Check(session.Execute("UPDATE account SET balance = balance - 9999 "
                        "WHERE id = 5")
            .status(),
        "debit2");
  Check(session.Execute("ABORT").status(), "abort");
  std::printf("aborted transfer rolled back; total still %lld\n",
              static_cast<long long>(TotalBalance(db)));

  // --- 50 concurrent conflicting deposits, serialized by fragment locks.
  int done = 0;
  int failed = 0;
  for (int i = 0; i < 50; ++i) {
    db.Submit(StrFormat("UPDATE account SET balance = balance + 1 "
                        "WHERE id = %d",
                        i % 4),
              /*prismalog=*/false, prisma::exec::kAutoCommit,
              [&](const prisma::gdh::ClientReply& reply, prisma::sim::SimTime) {
                reply.status.ok() ? ++done : ++failed;
              },
              /*delay=*/i * 1000);
  }
  db.Run();
  std::printf("50 racing deposits: %d committed, %d failed; total %lld\n",
              done, failed, static_cast<long long>(TotalBalance(db)));

  // --- Crash a fragment and recover it from its WAL.
  Check(db.CrashFragment("account", 0), "crash");
  std::printf("fragment account#0 crashed: queries now time out...\n");
  auto while_down = db.Execute("SELECT COUNT(*) FROM account");
  std::printf("  query during outage -> %s\n",
              while_down.status().ToString().c_str());
  Check(db.RecoverFragment("account", 0), "recover");
  db.Run();
  std::printf("fragment recovered from its write-ahead log; total %lld\n",
              static_cast<long long>(TotalBalance(db)));
  return 0;
}
