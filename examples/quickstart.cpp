// Quickstart: boot a PRISMA database machine, create a fragmented table,
// load rows, and run SQL — all in a deterministic simulation of the
// paper's 64-PE multi-computer.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/prisma_db.h"

using prisma::core::MachineConfig;
using prisma::core::PrismaDb;
using prisma::core::QueryResult;

int main() {
  // The default machine is the paper's prototype: 64 PEs on an 8x8 mesh,
  // 16 MB of main memory each, 10 Mbit/s links.
  PrismaDb db{MachineConfig()};

  auto check = [](const prisma::StatusOr<QueryResult>& result) {
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    return result.value();
  };

  check(db.Execute(
      "CREATE TABLE emp (id INT, name STRING, dept STRING, salary INT) "
      "FRAGMENTED BY HASH(id) INTO 8 FRAGMENTS"));

  const char* rows[] = {
      "(1, 'ann',   'eng',   5200)", "(2, 'bob',   'eng',   4800)",
      "(3, 'carol', 'sales', 4100)", "(4, 'dave',  'sales', 3900)",
      "(5, 'erin',  'hr',    3500)", "(6, 'frank', 'eng',   6100)",
  };
  for (const char* row : rows) {
    check(db.Execute(std::string("INSERT INTO emp VALUES ") + row));
  }

  QueryResult all = check(db.Execute("SELECT name, salary FROM emp "
                                     "WHERE salary >= 4000 ORDER BY salary "
                                     "DESC"));
  std::printf("well-paid employees (query took %.2f simulated ms):\n",
              static_cast<double>(all.response_time_ns) / 1e6);
  for (const auto& tuple : all.tuples) {
    std::printf("  %-8s %s\n", tuple.at(0).string_value().c_str(),
                tuple.at(1).ToString().c_str());
  }

  QueryResult agg = check(db.Execute(
      "SELECT dept, COUNT(*) AS n, AVG(salary) AS avg_salary "
      "FROM emp GROUP BY dept ORDER BY dept"));
  std::printf("\nper-department aggregates (computed *inside* the fragment "
              "OFMs, combined at the coordinator):\n");
  for (const auto& tuple : agg.tuples) {
    std::printf("  %-6s n=%s avg=%s\n", tuple.at(0).string_value().c_str(),
                tuple.at(1).ToString().c_str(), tuple.at(2).ToString().c_str());
  }
  return 0;
}
