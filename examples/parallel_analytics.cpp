// Parallel analytics: the paper's core performance claim (§2.1) in
// action — the same scan/aggregate workload over a 100k-row relation,
// fragmented over 1, 4, 16 and then 48 OFMs of a 64-PE machine. Response
// time (virtual) drops as fragments are added because each OFM scans its
// slice in parallel and ships only partial aggregates.
//
//   $ ./examples/parallel_analytics

#include <cstdio>
#include <vector>

#include "common/str_util.h"
#include "core/prisma_db.h"

using prisma::StrFormat;
using prisma::core::MachineConfig;
using prisma::core::PrismaDb;

namespace {

constexpr int kRows = 100'000;
constexpr int kBatch = 500;  // Rows per INSERT statement.

double RunWithFragments(int fragments) {
  MachineConfig config;  // 64 PEs, 8x8 mesh.
  PrismaDb db(config);
  auto must = [](auto&& result) {
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      std::exit(1);
    }
  };
  must(db.Execute(StrFormat(
      "CREATE TABLE sales (id INT, region INT, amount INT) "
      "FRAGMENTED BY HASH(id) INTO %d FRAGMENTS",
      fragments)));

  // Bulk-load in batches.
  for (int base = 0; base < kRows; base += kBatch) {
    std::string sql = "INSERT INTO sales VALUES ";
    for (int i = 0; i < kBatch; ++i) {
      const int id = base + i;
      if (i > 0) sql += ", ";
      sql += StrFormat("(%d, %d, %d)", id, id % 10, (id * 37) % 1000);
    }
    must(db.Execute(sql));
  }

  auto result = db.Execute(
      "SELECT region, COUNT(*) AS n, SUM(amount) AS total "
      "FROM sales WHERE amount >= 500 GROUP BY region");
  must(result);
  return static_cast<double>(result->response_time_ns) / 1e6;
}

}  // namespace

int main() {
  std::printf("scan+filter+aggregate over %d rows on a 64-PE machine\n",
              kRows);
  std::printf("%-10s %16s %10s\n", "fragments", "response (ms)", "speedup");
  double base = 0;
  for (const int fragments : {1, 4, 16, 48}) {
    const double ms = RunWithFragments(fragments);
    if (base == 0) base = ms;
    std::printf("%-10d %16.2f %9.1fx\n", fragments, ms, base / ms);
  }
  std::printf(
      "\nparallelism + main-memory storage is the paper's performance "
      "thesis (§2.1);\nsee bench_parallel_scaling for the full sweep.\n");
  return 0;
}
